//! # ode-merge — byte-range three-way merge over `ode-delta` diffs
//!
//! Reconciles two divergent states of one object against their common
//! base (the version-graph LCA, computed by `ode-version`): the
//! base→ours and base→theirs deltas are lowered to monotonic **edit
//! hunks** over the base, non-overlapping hunks from the two sides are
//! interleaved, and overlapping ones become structured
//! [`MergeConflict`]s resolved by a pluggable [`MergePolicy`].
//!
//! The overlap rule (documented in DESIGN.md §13): two non-empty base
//! spans conflict iff they strictly overlap (`s1 < e2 && s2 < e1`); a
//! pure insertion conflicts only when it lands *strictly inside* the
//! other side's span, or when both sides insert different bytes at the
//! same point. Identical hunks from both sides apply once. Everything
//! is byte-precise: hunks are trimmed to the minimal differing range,
//! so edits that touch disjoint bytes always merge cleanly.
//!
//! ```
//! use ode_merge::{merge, MergePolicy};
//!
//! let base = b"the quick brown fox jumps over the lazy dog".to_vec();
//! let ours = b"the quick RED fox jumps over the lazy dog".to_vec();
//! let theirs = b"the quick brown fox jumps over the SLEEPY dog".to_vec();
//! let out = merge(&base, &ours, &theirs, MergePolicy::Fail);
//! assert!(out.conflicts.is_empty());
//! assert_eq!(
//!     out.merged.unwrap(),
//!     b"the quick RED fox jumps over the SLEEPY dog"
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ode_codec::impl_persist_struct;
use ode_delta::{Delta, DeltaOp};

/// One edit against the base: replace `base[base_start..base_end]`
/// with `replacement`. `base_start == base_end` is a pure insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hunk {
    /// First base byte the edit covers.
    pub base_start: u64,
    /// One past the last base byte the edit covers.
    pub base_end: u64,
    /// Bytes that take the span's place.
    pub replacement: Vec<u8>,
}

impl Hunk {
    fn is_insertion(&self) -> bool {
        self.base_start == self.base_end
    }
}

/// What to do when the two sides edited overlapping byte ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Report the conflicts and produce no merged state.
    #[default]
    Fail,
    /// Take the first side's bytes for every conflicted range (the
    /// conflicts are still reported).
    Ours,
    /// Take the second side's bytes for every conflicted range (the
    /// conflicts are still reported).
    Theirs,
}

impl MergePolicy {
    /// Stable single-byte encoding (wire and CLI use).
    pub fn as_u8(self) -> u8 {
        match self {
            MergePolicy::Fail => 0,
            MergePolicy::Ours => 1,
            MergePolicy::Theirs => 2,
        }
    }

    /// Decode [`MergePolicy::as_u8`].
    pub fn from_u8(b: u8) -> Option<MergePolicy> {
        match b {
            0 => Some(MergePolicy::Fail),
            1 => Some(MergePolicy::Ours),
            2 => Some(MergePolicy::Theirs),
            _ => None,
        }
    }

    /// Lower-case policy name (`fail` / `ours` / `theirs`).
    pub fn name(self) -> &'static str {
        match self {
            MergePolicy::Fail => "fail",
            MergePolicy::Ours => "ours",
            MergePolicy::Theirs => "theirs",
        }
    }

    /// Parse [`MergePolicy::name`].
    pub fn from_name(s: &str) -> Option<MergePolicy> {
        match s {
            "fail" => Some(MergePolicy::Fail),
            "ours" => Some(MergePolicy::Ours),
            "theirs" => Some(MergePolicy::Theirs),
            _ => None,
        }
    }
}

/// One conflicted base range: both sides edited `[base_start,
/// base_end)` and want different bytes there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeConflict {
    /// First base byte of the conflicted range.
    pub base_start: u64,
    /// One past the last base byte of the conflicted range.
    pub base_end: u64,
    /// Bytes the first side wants in the range.
    pub ours: Vec<u8>,
    /// Bytes the second side wants in the range.
    pub theirs: Vec<u8>,
}

impl_persist_struct!(MergeConflict {
    base_start,
    base_end,
    ours,
    theirs,
});

/// Result of a three-way merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeOutcome {
    /// The reconciled state. `None` iff there were conflicts and the
    /// policy was [`MergePolicy::Fail`].
    pub merged: Option<Vec<u8>>,
    /// Every conflicted range, in base order — reported even when the
    /// policy resolved them.
    pub conflicts: Vec<MergeConflict>,
}

// ----------------------------------------------------------------------
// Delta → hunks
// ----------------------------------------------------------------------

/// Lower a base→target delta to monotonic edit hunks over the base.
///
/// Copies at or past the cursor are alignments (the skipped base bytes
/// were replaced by whatever literals accumulated); backward copies
/// and inserts contribute replacement bytes. Each hunk is then trimmed
/// to the minimal differing byte range, so the spans are exact however
/// coarse the diff's block granularity was. Applying the hunks in
/// order reconstructs the target byte-for-byte.
pub fn hunks_of_delta(base: &[u8], delta: &Delta) -> Vec<Hunk> {
    let mut out: Vec<Hunk> = Vec::new();
    let mut cur: usize = 0; // base cursor
    let mut pending: Vec<u8> = Vec::new();
    for op in &delta.ops {
        match op {
            DeltaOp::Copy { offset, len } => {
                let (offset, len) = (*offset as usize, *len as usize);
                // On repetitive content the block matcher may align a
                // copy at a *later* equivalent occurrence, which would
                // read as a spurious wide deletion; re-point it to the
                // earliest equivalent occurrence at or after the
                // cursor so spans stay minimal.
                let offset = if offset > cur {
                    earliest_equivalent(base, cur, offset, len)
                } else {
                    offset
                };
                if offset >= cur {
                    // Alignment: base[cur..offset] was replaced by the
                    // pending literals.
                    if offset > cur || !pending.is_empty() {
                        push_trimmed(&mut out, base, cur, offset, std::mem::take(&mut pending));
                    }
                    cur = offset + len;
                } else {
                    // Backward copy: out-of-order reuse of base bytes
                    // is replacement content, not an alignment.
                    pending.extend_from_slice(&base[offset..offset + len]);
                }
            }
            DeltaOp::Insert(bytes) => pending.extend_from_slice(bytes),
        }
    }
    if cur < base.len() || !pending.is_empty() {
        push_trimmed(&mut out, base, cur, base.len(), pending);
    }
    out
}

/// The edit hunks turning `base` into `target` (diff + lowering).
///
/// The whole-buffer common prefix and suffix are stripped before
/// diffing, so on repetitive content the edits stay pinned to where
/// they actually happened instead of drifting to an equivalent repeat
/// — essential for merging, where hunk *positions* carry meaning.
pub fn hunks(base: &[u8], target: &[u8]) -> Vec<Hunk> {
    let prefix = base
        .iter()
        .zip(target.iter())
        .take_while(|(a, b)| a == b)
        .count();
    let max_suffix = base.len().min(target.len()) - prefix;
    let suffix = base[prefix..]
        .iter()
        .rev()
        .zip(target[prefix..].iter().rev())
        .take_while(|(a, b)| a == b)
        .count()
        .min(max_suffix);
    let base_mid = &base[prefix..base.len() - suffix];
    let target_mid = &target[prefix..target.len() - suffix];
    let coarse = hunks_of_delta(base_mid, &ode_delta::diff(base_mid, target_mid));
    // The block matcher can fuse nearby edits into one hunk that
    // swallows the clean bytes between them (anything closer than a
    // block); split such hunks at their exact byte positions with a
    // bounded minimal-edit-script pass.
    let mut out = Vec::with_capacity(coarse.len());
    for h in coarse {
        refine(base_mid, h, &mut out);
    }
    for h in &mut out {
        h.base_start += prefix as u64;
        h.base_end += prefix as u64;
    }
    out
}

/// Effort bound for exact refinement: hunks needing more edit steps
/// than this stay as-is (they are one dense edit anyway).
const REFINE_MAX_D: usize = 256;

/// Shortest surviving-byte run that counts as a split point between
/// two edits. Anything shorter is treated as part of one dense edit:
/// byte-level minimal scripts otherwise align on accidental one-byte
/// coincidences and shred a rewrite into nonsense fragments.
const REFINE_MIN_SPLIT: u64 = 3;

/// Re-derive a coarse hunk as its exact minimal edit script, splitting
/// it wherever a run of base bytes actually survived. Falls back to
/// the coarse hunk when it is already minimal or too dense to bound.
fn refine(base: &[u8], h: Hunk, out: &mut Vec<Hunk>) {
    let span = &base[h.base_start as usize..h.base_end as usize];
    if span.is_empty() || h.replacement.is_empty() {
        out.push(h);
        return;
    }
    // Break large fused hunks with the block matcher at its finest
    // granularity first, so the exact pass below only ever sees pieces
    // small enough for its effort bound.
    let pieces = hunks_of_delta(span, &ode_delta::diff_with_block(span, &h.replacement, 4));
    for mut p in pieces {
        let pspan = &span[p.base_start as usize..p.base_end as usize];
        let exact = if pspan.is_empty() || p.replacement.is_empty() {
            None
        } else {
            myers_hunks(pspan, &p.replacement, REFINE_MAX_D)
        };
        match exact {
            Some(subs) => {
                for mut s in subs {
                    s.base_start += h.base_start + p.base_start;
                    s.base_end += h.base_start + p.base_start;
                    out.push(s);
                }
            }
            None => {
                p.base_start += h.base_start;
                p.base_end += h.base_start;
                out.push(p);
            }
        }
    }
}

/// Myers O(ND) minimal edit script between `a` and `b`, grouped into
/// hunks over `a`. `None` when more than `max_d` edit steps would be
/// needed.
fn myers_hunks(a: &[u8], b: &[u8], max_d: usize) -> Option<Vec<Hunk>> {
    let n = a.len() as isize;
    let m = b.len() as isize;
    let max_d = max_d.min((n + m) as usize) as isize;
    let offset = max_d;
    let width = (2 * max_d + 1) as usize;
    let mut v = vec![0isize; width];
    let mut trace: Vec<Vec<isize>> = Vec::new();
    let mut found_d = None;
    'search: for d in 0..=max_d {
        trace.push(v.clone());
        let mut k = -d;
        while k <= d {
            let idx = (k + offset) as usize;
            let mut x = if k == -d || (k != d && v[idx - 1] < v[idx + 1]) {
                v[idx + 1]
            } else {
                v[idx - 1] + 1
            };
            let mut y = x - k;
            while x < n && y < m && a[x as usize] == b[y as usize] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                found_d = Some(d);
                break 'search;
            }
            k += 2;
        }
    }
    let mut d = found_d?;
    // Backtrack, collecting single-byte edits (descending positions).
    let (mut x, mut y) = (n, m);
    let mut dels: Vec<(isize, isize)> = Vec::new(); // (a_pos, b_pos)
    let mut inss: Vec<(isize, isize)> = Vec::new();
    while d > 0 {
        let vd = &trace[d as usize];
        let k = x - y;
        let idx = (k + offset) as usize;
        let go_down = k == -d || (k != d && vd[idx - 1] < vd[idx + 1]);
        let prev_k = if go_down { k + 1 } else { k - 1 };
        let prev_x = vd[(prev_k + offset) as usize];
        let prev_y = prev_x - prev_k;
        if go_down {
            inss.push((prev_x, prev_y)); // b[prev_y] inserted at a-pos prev_x
        } else {
            dels.push((prev_x, prev_y)); // a[prev_x] deleted
        }
        x = prev_x;
        y = prev_y;
        d -= 1;
    }
    // Merge the two edit streams ascending and group contiguous runs
    // into (a-range, b-range) groups.
    dels.reverse();
    inss.reverse();
    let mut groups: Vec<(isize, isize, isize, isize)> = Vec::new(); // (as, ae, bs, be)
    let (mut di, mut ii) = (0usize, 0usize);
    while di < dels.len() || ii < inss.len() {
        // Deletions and insertions interleave in (a_pos, b_pos) order.
        let take_del = match (dels.get(di), inss.get(ii)) {
            (Some(&d0), Some(&i0)) => d0 <= i0,
            (Some(_), None) => true,
            _ => false,
        };
        let (a_pos, b_pos) = if take_del { dels[di] } else { inss[ii] };
        match groups.last_mut() {
            Some(g) if g.1 == a_pos && g.3 == b_pos => {}
            _ => groups.push((a_pos, a_pos, b_pos, b_pos)),
        }
        let g = groups.last_mut().expect("just pushed");
        if take_del {
            g.1 += 1;
            di += 1;
        } else {
            g.3 += 1;
            ii += 1;
        }
    }
    // Accidental short matches between random content are alignment
    // noise, not surviving bytes: coalesce groups whose separating
    // matched run is shorter than REFINE_MIN_SPLIT.
    let mut coalesced: Vec<(isize, isize, isize, isize)> = Vec::new();
    for g in groups {
        match coalesced.last_mut() {
            Some(prev) if (g.0 - prev.1) < REFINE_MIN_SPLIT as isize => {
                prev.1 = g.1;
                prev.3 = g.3;
            }
            _ => coalesced.push(g),
        }
    }
    Some(
        coalesced
            .into_iter()
            .map(|(a_s, a_e, b_s, b_e)| Hunk {
                base_start: a_s as u64,
                base_end: a_e as u64,
                replacement: b[b_s as usize..b_e as usize].to_vec(),
            })
            .collect(),
    )
}

/// Smallest `o` in `[from, offset]` with `base[o..o + len] ==
/// base[offset..offset + len]` — the earliest occurrence of a copied
/// slice. Rabin–Karp over a bounded pattern prefix, with full
/// verification on hash hits.
fn earliest_equivalent(base: &[u8], from: usize, offset: usize, len: usize) -> usize {
    if len == 0 || from >= offset {
        return offset;
    }
    let pat = &base[offset..offset + len];
    let k = len.min(48);
    const B: u64 = 257;
    let mut pow: u64 = 1;
    for _ in 1..k {
        pow = pow.wrapping_mul(B);
    }
    let hash = |s: &[u8]| {
        s.iter()
            .fold(0u64, |h, &b| h.wrapping_mul(B).wrapping_add(b as u64))
    };
    let want = hash(&pat[..k]);
    let mut h = hash(&base[from..from + k]);
    for o in from..=offset {
        if h == want && base[o..o + len] == *pat {
            return o;
        }
        if o + k < base.len() {
            h = h
                .wrapping_sub((base[o] as u64).wrapping_mul(pow))
                .wrapping_mul(B)
                .wrapping_add(base[o + k] as u64);
        }
    }
    offset
}

/// Trim the common prefix and suffix of `base[start..end]` vs
/// `replacement`, then push the hunk unless it trimmed to nothing.
fn push_trimmed(out: &mut Vec<Hunk>, base: &[u8], start: usize, end: usize, repl: Vec<u8>) {
    let span = &base[start..end];
    let prefix = span
        .iter()
        .zip(repl.iter())
        .take_while(|(a, b)| a == b)
        .count();
    let suffix = span[prefix..]
        .iter()
        .rev()
        .zip(repl[prefix..].iter().rev())
        .take_while(|(a, b)| a == b)
        .count();
    let start = start + prefix;
    let end = end - suffix;
    let repl = repl[prefix..repl.len() - suffix].to_vec();
    if start == end && repl.is_empty() {
        return;
    }
    out.push(Hunk {
        base_start: start as u64,
        base_end: end as u64,
        replacement: repl,
    });
}

/// Apply base-ordered, non-overlapping hunks to the base.
pub fn apply_hunks(base: &[u8], hunks: &[Hunk]) -> Vec<u8> {
    let mut out = Vec::with_capacity(base.len());
    let mut cur = 0usize;
    for h in hunks {
        out.extend_from_slice(&base[cur..h.base_start as usize]);
        out.extend_from_slice(&h.replacement);
        cur = h.base_end as usize;
    }
    out.extend_from_slice(&base[cur..]);
    out
}

// ----------------------------------------------------------------------
// Three-way merge
// ----------------------------------------------------------------------

/// Whether two hunks (one from each side) edit overlapping bytes.
/// Identical hunks never conflict — both sides made the same edit.
fn conflicting(x: &Hunk, y: &Hunk) -> bool {
    if x == y {
        return false;
    }
    match (x.is_insertion(), y.is_insertion()) {
        // Differing insertions conflict only at the same point.
        (true, true) => x.base_start == y.base_start,
        // An insertion conflicts when strictly inside the other span;
        // at the span's boundary the order is well defined (before a
        // replacement that starts there, after one that ends there).
        (true, false) => y.base_start < x.base_start && x.base_start < y.base_end,
        (false, true) => x.base_start < y.base_start && y.base_start < x.base_end,
        // Non-empty spans conflict iff they strictly overlap.
        (false, false) => x.base_start < y.base_end && y.base_start < x.base_end,
    }
}

/// Whether a hunk belongs to a conflict cluster spanning `[cs, ce)`.
fn joins_cluster(h: &Hunk, cs: u64, ce: u64) -> bool {
    if h.is_insertion() {
        // An insertion joins only when strictly inside, or when the
        // cluster is itself a single insertion point it collides with.
        (cs < h.base_start && h.base_start < ce) || (cs == ce && h.base_start == cs)
    } else {
        h.base_start < ce && cs < h.base_end
    }
}

/// A side's proposed bytes for the cluster range `[cs, ce)`: the base
/// with that side's cluster hunks applied, restricted to the range.
fn side_bytes(base: &[u8], hunks: &[&Hunk], cs: u64, ce: u64) -> Vec<u8> {
    let mut out = Vec::new();
    let mut cur = cs as usize;
    for h in hunks {
        out.extend_from_slice(&base[cur..h.base_start as usize]);
        out.extend_from_slice(&h.replacement);
        cur = h.base_end as usize;
    }
    out.extend_from_slice(&base[cur..ce as usize]);
    out
}

/// Three-way merge of two hunk lists against a shared base.
///
/// Returns the merged hunk list (conflicted clusters resolved per
/// policy; empty under [`MergePolicy::Fail`] with conflicts) plus the
/// conflict report.
pub fn merge_hunks(
    base: &[u8],
    ours: &[Hunk],
    theirs: &[Hunk],
    policy: MergePolicy,
) -> (Vec<Hunk>, Vec<MergeConflict>) {
    let mut merged: Vec<Hunk> = Vec::new();
    let mut conflicts: Vec<MergeConflict> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ours.len() && j < theirs.len() {
        let (ha, hb) = (&ours[i], &theirs[j]);
        if ha == hb {
            // Both sides made the same edit: apply once.
            merged.push(ha.clone());
            i += 1;
            j += 1;
            continue;
        }
        if !conflicting(ha, hb) {
            let a_first = (ha.base_start, ha.base_end) <= (hb.base_start, hb.base_end);
            if a_first {
                merged.push(ha.clone());
                i += 1;
            } else {
                merged.push(hb.clone());
                j += 1;
            }
            continue;
        }
        // Conflict: grow the cluster until neither side's next hunk
        // touches its range (a wide edit can chain several of the
        // other side's hunks into one cluster).
        let mut cs = ha.base_start.min(hb.base_start);
        let mut ce = ha.base_end.max(hb.base_end);
        let mut ca: Vec<&Hunk> = vec![ha];
        let mut cb: Vec<&Hunk> = vec![hb];
        i += 1;
        j += 1;
        loop {
            if i < ours.len() && joins_cluster(&ours[i], cs, ce) {
                cs = cs.min(ours[i].base_start);
                ce = ce.max(ours[i].base_end);
                ca.push(&ours[i]);
                i += 1;
                continue;
            }
            if j < theirs.len() && joins_cluster(&theirs[j], cs, ce) {
                cs = cs.min(theirs[j].base_start);
                ce = ce.max(theirs[j].base_end);
                cb.push(&theirs[j]);
                j += 1;
                continue;
            }
            break;
        }
        let ours_bytes = side_bytes(base, &ca, cs, ce);
        let theirs_bytes = side_bytes(base, &cb, cs, ce);
        let resolved = match policy {
            MergePolicy::Fail => None,
            MergePolicy::Ours => Some(ours_bytes.clone()),
            MergePolicy::Theirs => Some(theirs_bytes.clone()),
        };
        conflicts.push(MergeConflict {
            base_start: cs,
            base_end: ce,
            ours: ours_bytes,
            theirs: theirs_bytes,
        });
        if let Some(replacement) = resolved {
            merged.push(Hunk {
                base_start: cs,
                base_end: ce,
                replacement,
            });
        }
    }
    merged.extend(ours[i..].iter().cloned());
    merged.extend(theirs[j..].iter().cloned());
    if policy == MergePolicy::Fail && !conflicts.is_empty() {
        return (Vec::new(), conflicts);
    }
    (merged, conflicts)
}

/// Three-way merge: reconcile `ours` and `theirs` against their common
/// `base`. Non-overlapping edits combine; overlapping ones are
/// reported as [`MergeConflict`]s and resolved per `policy`
/// ([`MergePolicy::Fail`] produces no merged state).
pub fn merge(base: &[u8], ours: &[u8], theirs: &[u8], policy: MergePolicy) -> MergeOutcome {
    // Trivial reconciliations first: unchanged sides and identical
    // edits need no hunk work.
    if ours == theirs {
        return MergeOutcome {
            merged: Some(ours.to_vec()),
            conflicts: Vec::new(),
        };
    }
    if ours == base {
        return MergeOutcome {
            merged: Some(theirs.to_vec()),
            conflicts: Vec::new(),
        };
    }
    if theirs == base {
        return MergeOutcome {
            merged: Some(ours.to_vec()),
            conflicts: Vec::new(),
        };
    }
    let ha = hunks(base, ours);
    let hb = hunks(base, theirs);
    let (merged, conflicts) = merge_hunks(base, &ha, &hb, policy);
    let merged = if policy == MergePolicy::Fail && !conflicts.is_empty() {
        None
    } else {
        Some(apply_hunks(base, &merged))
    };
    MergeOutcome { merged, conflicts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hunks_round_trip_the_diff() {
        let base = b"the quick brown fox jumps over the lazy dog".repeat(20);
        let mut target = base.clone();
        target[40] = b'X';
        target.splice(200..230, b"replaced!".iter().copied());
        target.extend_from_slice(b"tail");
        let hs = hunks(&base, &target);
        assert_eq!(apply_hunks(&base, &hs), target);
        // Hunks are sorted and non-overlapping.
        for w in hs.windows(2) {
            assert!(w[0].base_end <= w[1].base_start);
        }
    }

    #[test]
    fn hunks_are_byte_precise() {
        let base: Vec<u8> = (0..2000).map(|i| (i % 251) as u8).collect();
        let mut target = base.clone();
        target[1000] ^= 0xFF;
        let hs = hunks(&base, &target);
        assert_eq!(hs.len(), 1);
        assert_eq!((hs[0].base_start, hs[0].base_end), (1000, 1001));
    }

    #[test]
    fn disjoint_edits_merge_cleanly() {
        let base: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        let mut ours = base.clone();
        ours[100] = 0xAA;
        ours.splice(900..910, [0xBB; 4]);
        let mut theirs = base.clone();
        theirs[2000] = 0xCC;
        theirs.extend_from_slice(&[0xDD; 8]);
        let out = merge(&base, &ours, &theirs, MergePolicy::Fail);
        assert!(out.conflicts.is_empty());
        // Oracle: both edit scripts applied to the base in base
        // coordinates.
        let mut expect = Vec::new();
        expect.extend_from_slice(&base[..100]);
        expect.push(0xAA);
        expect.extend_from_slice(&base[101..900]);
        expect.extend_from_slice(&[0xBB; 4]);
        expect.extend_from_slice(&base[910..2000]);
        expect.push(0xCC);
        expect.extend_from_slice(&base[2001..]);
        expect.extend_from_slice(&[0xDD; 8]);
        assert_eq!(out.merged.unwrap(), expect);
    }

    #[test]
    fn overlapping_edits_conflict_with_exact_ranges() {
        let base: Vec<u8> = (0..2048).map(|i| (i % 251) as u8).collect();
        let mut ours = base.clone();
        for b in &mut ours[500..520] {
            *b = 0xAA;
        }
        let mut theirs = base.clone();
        for b in &mut theirs[510..530] {
            *b = 0xBB;
        }
        let out = merge(&base, &ours, &theirs, MergePolicy::Fail);
        assert!(out.merged.is_none());
        assert_eq!(out.conflicts.len(), 1);
        let c = &out.conflicts[0];
        assert_eq!((c.base_start, c.base_end), (500, 530));
        assert_eq!(&c.ours[..20], &[0xAA; 20]);
        assert_eq!(&c.theirs[10..], &[0xBB; 20]);
    }

    #[test]
    fn policies_resolve_but_still_report() {
        let base = b"conflict target zone".repeat(10);
        let mut ours = base.clone();
        ours[5..15].copy_from_slice(b"OURS-BYTES");
        let mut theirs = base.clone();
        theirs[10..20].copy_from_slice(b"THEIRBYTES");
        for (policy, winner) in [(MergePolicy::Ours, &ours), (MergePolicy::Theirs, &theirs)] {
            let out = merge(&base, &ours, &theirs, policy);
            assert_eq!(out.conflicts.len(), 1);
            assert_eq!(out.merged.as_ref().unwrap(), winner);
        }
    }

    #[test]
    fn identical_edits_apply_once() {
        let base = b"shared shared shared shared shared!".repeat(8);
        let mut both = base.clone();
        both[17] = b'#';
        let out = merge(&base, &both, &both, MergePolicy::Fail);
        assert!(out.conflicts.is_empty());
        assert_eq!(out.merged.unwrap(), both);
    }

    #[test]
    fn unchanged_side_yields_the_other() {
        let base = b"some document body".repeat(16);
        let mut edited = base.clone();
        edited.splice(0..0, b"prefix ".iter().copied());
        let out = merge(&base, &base.clone(), &edited, MergePolicy::Fail);
        assert_eq!(out.merged.unwrap(), edited);
        let out = merge(&base, &edited, &base.clone(), MergePolicy::Fail);
        assert_eq!(out.merged.unwrap(), edited);
    }

    #[test]
    fn co_located_insertions_conflict() {
        let base = b"left|right".repeat(12);
        let mut ours = base.clone();
        ours.splice(24..24, b"AAAA".iter().copied());
        let mut theirs = base.clone();
        theirs.splice(24..24, b"BBBB".iter().copied());
        let out = merge(&base, &ours, &theirs, MergePolicy::Fail);
        assert!(out.merged.is_none());
        assert_eq!(out.conflicts.len(), 1);
        assert_eq!(out.conflicts[0].base_start, out.conflicts[0].base_end);
    }

    #[test]
    fn empty_base_both_sides_insert() {
        let out = merge(b"", b"alpha", b"beta", MergePolicy::Fail);
        assert!(out.merged.is_none());
        assert_eq!(out.conflicts.len(), 1);
        let out = merge(b"", b"alpha", b"alpha", MergePolicy::Fail);
        assert_eq!(out.merged.unwrap(), b"alpha");
        let out = merge(b"", b"", b"beta", MergePolicy::Theirs);
        assert_eq!(out.merged.unwrap(), b"beta");
    }

    #[test]
    fn wide_delete_vs_point_edits_clusters() {
        let base: Vec<u8> = (0..3000).map(|i| (i % 251) as u8).collect();
        // Ours deletes a wide range; theirs makes two point edits
        // inside it — one cluster, one conflict.
        let mut ours = base.clone();
        ours.drain(1000..2000);
        let mut theirs = base.clone();
        theirs[1200] ^= 0x55;
        theirs[1800] ^= 0x55;
        let out = merge(&base, &ours, &theirs, MergePolicy::Fail);
        assert!(out.merged.is_none());
        assert_eq!(out.conflicts.len(), 1);
        let c = &out.conflicts[0];
        assert!(c.base_start <= 1000 && c.base_end >= 2000);
        assert!(c.ours.is_empty());
    }

    #[test]
    fn policy_codec_round_trips() {
        for p in [MergePolicy::Fail, MergePolicy::Ours, MergePolicy::Theirs] {
            assert_eq!(MergePolicy::from_u8(p.as_u8()), Some(p));
            assert_eq!(MergePolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(MergePolicy::from_u8(3), None);
        assert_eq!(MergePolicy::from_name("merge"), None);
    }

    #[test]
    fn conflict_record_round_trips_codec() {
        let c = MergeConflict {
            base_start: 10,
            base_end: 20,
            ours: vec![1, 2, 3],
            theirs: vec![],
        };
        let bytes = ode_codec::to_bytes(&c);
        assert_eq!(ode_codec::from_bytes::<MergeConflict>(&bytes).unwrap(), c);
    }
}
