//! Equivalences: different views of one design entity.
//!
//! §7 cites Katz et al.'s framework of "version histories (instances
//! over time), configurations (compositions of specific versions …),
//! and **equivalences (different views of an object)**" and notes the
//! framework "can easily be implemented by using the facilities
//! provided in O++".  Configurations live in [`crate::config`]; this
//! module is the equivalences leg: a persistent set tying together the
//! objects that represent the *same* design entity in different views
//! (schematic vs. layout vs. behavioural model), with optional pinning
//! of the view to a specific version.

use std::collections::BTreeMap;

use ode::{ObjPtr, OdeType, Oid, Result, Txn, VRef, VersionPtr, Vid};
use ode_codec::{impl_persist_struct, impl_type_name};

/// Persistent state: view name → (object id, pinned version or 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceSet {
    /// The design entity's name (e.g. "alu-core").
    pub entity: String,
    /// View name → (oid, vid-or-0).
    pub views: BTreeMap<String, (u64, u64)>,
}

impl_persist_struct!(EquivalenceSet { entity, views });
impl_type_name!(EquivalenceSet = "ode-policies/EquivalenceSet");

/// A typed handle over a persistent [`EquivalenceSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivalenceHandle {
    ptr: ObjPtr<EquivalenceSet>,
}

impl EquivalenceHandle {
    /// Create an empty equivalence set for `entity`.
    pub fn create(txn: &mut Txn<'_>, entity: &str) -> Result<EquivalenceHandle> {
        let ptr = txn.pnew(&EquivalenceSet {
            entity: entity.to_string(),
            views: BTreeMap::new(),
        })?;
        Ok(EquivalenceHandle { ptr })
    }

    /// Re-attach to an existing set.
    pub fn attach(ptr: ObjPtr<EquivalenceSet>) -> EquivalenceHandle {
        EquivalenceHandle { ptr }
    }

    /// The underlying persistent object.
    pub fn ptr(&self) -> ObjPtr<EquivalenceSet> {
        self.ptr
    }

    /// Register `object` as the `view` of this entity (latest-tracking).
    pub fn add_view<T: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        view: &str,
        object: ObjPtr<T>,
    ) -> Result<()> {
        let view = view.to_string();
        txn.update(&self.ptr, |set| {
            set.views.insert(view, (object.oid().0, 0));
        })?;
        Ok(())
    }

    /// Pin a view to a specific version (e.g. the layout that was
    /// actually taped out).
    pub fn pin_view<T: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        view: &str,
        version: VersionPtr<T>,
    ) -> Result<()> {
        let oid = txn.object_of(&version)?.oid();
        let view = view.to_string();
        txn.update(&self.ptr, |set| {
            set.views.insert(view, (oid.0, version.vid().0));
        })?;
        Ok(())
    }

    /// Resolve a view: pinned version if set, else the object's latest.
    pub fn view<T: OdeType>(&self, txn: &mut Txn<'_>, view: &str) -> Result<VRef<T>> {
        let set = txn.deref(&self.ptr)?;
        let &(oid, vid) = set
            .views
            .get(view)
            .ok_or(ode::Error::UnknownObject(Oid::NULL))?;
        if vid != 0 {
            txn.deref_v(&VersionPtr::from_vid(Vid(vid)))
        } else {
            let p: ObjPtr<T> = ObjPtr::from_oid(Oid(oid));
            txn.deref(&p).map(|oref| {
                let version = oref.version();
                VRefShim {
                    value: oref.into_inner(),
                    version,
                }
                .into()
            })
        }
    }

    /// Names of the registered views, sorted.
    pub fn view_names(&self, txn: &mut Txn<'_>) -> Result<Vec<String>> {
        Ok(txn.deref(&self.ptr)?.views.keys().cloned().collect())
    }

    /// Whether two pointers are equivalent views of this entity.
    pub fn are_equivalent<A: OdeType, B: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        a: ObjPtr<A>,
        b: ObjPtr<B>,
    ) -> Result<bool> {
        let set = txn.deref(&self.ptr)?;
        let member = |oid: u64| set.views.values().any(|&(o, _)| o == oid);
        Ok(member(a.oid().0) && member(b.oid().0))
    }
}

/// Internal adapter turning an `ORef` into a `VRef` (both pin the
/// version they decoded; only the nominal pointer flavour differs).
struct VRefShim<T> {
    value: T,
    version: VersionPtr<T>,
}

impl<T> From<VRefShim<T>> for VRef<T> {
    fn from(shim: VRefShim<T>) -> VRef<T> {
        VRef::from_parts(shim.value, shim.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode::{Database, DatabaseOptions};

    #[derive(Debug, Clone, PartialEq)]
    struct Schematic {
        gates: u32,
    }
    impl_persist_struct!(Schematic { gates });
    impl_type_name!(Schematic = "equiv-test/Schematic");

    #[derive(Debug, Clone, PartialEq)]
    struct Layout {
        polygons: u32,
    }
    impl_persist_struct!(Layout { polygons });
    impl_type_name!(Layout = "equiv-test/Layout");

    fn temp_db(name: &str) -> (std::path::PathBuf, Database) {
        let mut path = std::env::temp_dir();
        path.push(format!("ode-equiv-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = path.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        (path, db)
    }

    fn cleanup(path: &std::path::Path) {
        let _ = std::fs::remove_file(path);
        let mut wal = path.to_path_buf().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }

    #[test]
    fn views_resolve_latest_until_pinned() {
        let (path, db) = temp_db("views");
        let mut txn = db.begin();
        let sch = txn.pnew(&Schematic { gates: 10 }).unwrap();
        let lay = txn.pnew(&Layout { polygons: 100 }).unwrap();
        let eq = EquivalenceHandle::create(&mut txn, "alu").unwrap();
        eq.add_view(&mut txn, "schematic", sch).unwrap();
        eq.add_view(&mut txn, "layout", lay).unwrap();
        assert_eq!(
            eq.view_names(&mut txn).unwrap(),
            vec!["layout", "schematic"]
        );

        // Latest-tracking view follows evolution.
        txn.newversion(&lay).unwrap();
        txn.update(&lay, |l| l.polygons = 250).unwrap();
        assert_eq!(eq.view::<Layout>(&mut txn, "layout").unwrap().polygons, 250);

        // Pin the layout view to the taped-out version.
        let taped_out = txn.version_history(&lay).unwrap()[0];
        eq.pin_view(&mut txn, "layout", taped_out).unwrap();
        assert_eq!(eq.view::<Layout>(&mut txn, "layout").unwrap().polygons, 100);
        // Further evolution is invisible through the pinned view.
        txn.newversion(&lay).unwrap();
        txn.update(&lay, |l| l.polygons = 999).unwrap();
        assert_eq!(eq.view::<Layout>(&mut txn, "layout").unwrap().polygons, 100);

        // Equivalence membership query.
        assert!(eq.are_equivalent(&mut txn, sch, lay).unwrap());
        let other = txn.pnew(&Layout { polygons: 1 }).unwrap();
        assert!(!eq.are_equivalent(&mut txn, sch, other).unwrap());
        txn.commit().unwrap();
        drop(db);
        cleanup(&path);
    }

    #[test]
    fn unknown_view_errors() {
        let (path, db) = temp_db("unknown");
        let mut txn = db.begin();
        let eq = EquivalenceHandle::create(&mut txn, "x").unwrap();
        assert!(eq.view::<Layout>(&mut txn, "nope").is_err());
        txn.commit().unwrap();
        drop(db);
        cleanup(&path);
    }
}
