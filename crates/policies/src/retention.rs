//! History retention: pruning old versions as a policy.
//!
//! The paper gives `pdelete` on version ids as the primitive; how many
//! versions to *keep* is an application decision.  A [`RetentionPolicy`]
//! expresses the common rule — keep the most recent `keep_last`
//! versions, never prune derivation branch points (their children would
//! be re-parented and history shape lost), and never prune versions an
//! [`environment::EnvHandle`](crate::environment::EnvHandle) holds frozen.

use ode::{ObjPtr, OdeType, Result, Txn, Vid};

use crate::environment::{EnvHandle, VersionState};

/// A pruning rule applied to one object's history.
#[derive(Debug, Clone, Copy)]
pub struct RetentionPolicy {
    /// Number of newest versions always kept (minimum 1).
    pub keep_last: usize,
    /// Keep versions with derivation children (default true). When
    /// false, branch points may be pruned and children re-parent.
    pub keep_branch_points: bool,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            keep_last: 8,
            keep_branch_points: true,
        }
    }
}

impl RetentionPolicy {
    /// Apply the rule to `ptr`'s history, honouring `frozen_in` (frozen
    /// versions are never pruned). Returns the pruned version ids.
    pub fn apply<T: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        ptr: &ObjPtr<T>,
        frozen_in: Option<&EnvHandle>,
    ) -> Result<Vec<Vid>> {
        let history = txn.version_history(ptr)?;
        let keep_last = self.keep_last.max(1);
        if history.len() <= keep_last {
            return Ok(Vec::new());
        }
        let cutoff = history.len() - keep_last;
        let mut pruned = Vec::new();
        for vp in &history[..cutoff] {
            if self.keep_branch_points && txn.dnext(vp)?.len() > 1 {
                continue;
            }
            if let Some(env) = frozen_in {
                if env.state_of(txn, *vp)? == Some(VersionState::Frozen) {
                    continue;
                }
            }
            txn.pdelete_version(*vp)?;
            pruned.push(vp.vid());
        }
        Ok(pruned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode::{Database, DatabaseOptions};
    use ode_codec::{impl_persist_struct, impl_type_name};

    #[derive(Debug, Clone, PartialEq)]
    struct Doc {
        rev: u32,
    }
    impl_persist_struct!(Doc { rev });
    impl_type_name!(Doc = "retention-test/Doc");

    fn temp_db(name: &str) -> (std::path::PathBuf, Database) {
        let mut path = std::env::temp_dir();
        path.push(format!("ode-retention-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = path.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        (path, db)
    }

    fn cleanup(path: &std::path::Path) {
        let _ = std::fs::remove_file(path);
        let mut wal = path.to_path_buf().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }

    #[test]
    fn keeps_last_n_versions() {
        let (path, db) = temp_db("keepn");
        let mut txn = db.begin();
        let p = txn.pnew(&Doc { rev: 0 }).unwrap();
        for i in 1..10 {
            txn.newversion(&p).unwrap();
            txn.update(&p, |d| d.rev = i).unwrap();
        }
        let policy = RetentionPolicy {
            keep_last: 3,
            keep_branch_points: true,
        };
        let pruned = policy.apply(&mut txn, &p, None).unwrap();
        assert_eq!(pruned.len(), 7);
        let history = txn.version_history(&p).unwrap();
        assert_eq!(history.len(), 3);
        // Newest states survive.
        assert_eq!(txn.deref(&p).unwrap().rev, 9);
        assert_eq!(txn.deref_v(&history[0]).unwrap().rev, 7);
        txn.check_object(&p).unwrap();
        txn.commit().unwrap();
        drop(db);
        cleanup(&path);
    }

    #[test]
    fn branch_points_survive() {
        let (path, db) = temp_db("branch");
        let mut txn = db.begin();
        let p = txn.pnew(&Doc { rev: 0 }).unwrap();
        let v0 = txn.current_version(&p).unwrap();
        // v0 gets two children: a branch point.
        txn.newversion_from(&v0).unwrap();
        txn.newversion_from(&v0).unwrap();
        for _ in 0..5 {
            txn.newversion(&p).unwrap();
        }
        let policy = RetentionPolicy {
            keep_last: 2,
            keep_branch_points: true,
        };
        policy.apply(&mut txn, &p, None).unwrap();
        // v0 (2 children at prune time) survives.
        assert!(txn.version_exists(&v0).unwrap());
        txn.check_object(&p).unwrap();
        txn.commit().unwrap();
        drop(db);
        cleanup(&path);
    }

    #[test]
    fn frozen_versions_survive() {
        let (path, db) = temp_db("frozen");
        let mut txn = db.begin();
        let p = txn.pnew(&Doc { rev: 0 }).unwrap();
        let v0 = txn.current_version(&p).unwrap();
        let env = EnvHandle::create(&mut txn, "rel").unwrap();
        env.track(&mut txn, v0).unwrap();
        env.transition(&mut txn, v0, VersionState::Valid).unwrap();
        env.transition(&mut txn, v0, VersionState::Frozen).unwrap();
        for _ in 0..6 {
            txn.newversion(&p).unwrap();
        }
        let policy = RetentionPolicy {
            keep_last: 2,
            keep_branch_points: false,
        };
        let pruned = policy.apply(&mut txn, &p, Some(&env)).unwrap();
        assert!(txn.version_exists(&v0).unwrap(), "frozen v0 kept");
        // Everything else old was pruned: 7 total - 2 kept - 1 frozen = 4.
        assert_eq!(pruned.len(), 4);
        txn.check_object(&p).unwrap();
        txn.commit().unwrap();
        drop(db);
        cleanup(&path);
    }

    #[test]
    fn short_histories_untouched() {
        let (path, db) = temp_db("short");
        let mut txn = db.begin();
        let p = txn.pnew(&Doc { rev: 0 }).unwrap();
        txn.newversion(&p).unwrap();
        let policy = RetentionPolicy::default();
        assert!(policy.apply(&mut txn, &p, None).unwrap().is_empty());
        assert_eq!(txn.version_count(&p).unwrap(), 2);
        txn.commit().unwrap();
        drop(db);
        cleanup(&path);
    }
}
