//! Change notification built on triggers.
//!
//! §2: "we decided against a built-in change notification facility
//! because users can implement such a facility using O++ triggers."
//! [`Notifier`] is that user implementation: it registers type- or
//! object-scoped triggers that append committed events to an in-memory
//! queue, which interested parties drain — and can persist into an
//! ordinary Ode object if they want a durable notification log.

use std::sync::Arc;

use ode::{Database, Event, ObjPtr, OdeType, Result, TriggerId, Txn};
use ode_codec::{impl_persist_struct, impl_type_name};
use parking_lot::Mutex;

/// A durable notification log: one entry per committed change.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChangeLog {
    /// (oid, vid-or-0, kind) triples; kind encodes the event variant.
    pub entries: Vec<(u64, u64, u8)>,
}

impl_persist_struct!(ChangeLog { entries });
impl_type_name!(ChangeLog = "ode-policies/ChangeLog");

fn encode_kind(ev: &Event) -> (u64, u64, u8) {
    match *ev {
        Event::Created { oid, vid, .. } => (oid.0, vid.0, 0),
        Event::Updated { oid, vid, .. } => (oid.0, vid.0, 1),
        Event::NewVersion { oid, vid, .. } => (oid.0, vid.0, 2),
        Event::VersionDeleted { oid, vid, .. } => (oid.0, vid.0, 3),
        Event::ObjectDeleted { oid, .. } => (oid.0, 0, 4),
        Event::Merged { oid, vid, .. } => (oid.0, vid.0, 5),
    }
}

/// Collects committed change events for later inspection or persistence.
pub struct Notifier {
    queue: Arc<Mutex<Vec<Event>>>,
    triggers: Vec<TriggerId>,
}

impl Notifier {
    /// Create a notifier with an empty queue and no subscriptions.
    pub fn new() -> Notifier {
        Notifier {
            queue: Arc::new(Mutex::new(Vec::new())),
            triggers: Vec::new(),
        }
    }

    /// Subscribe to every committed change to objects of type `T`.
    pub fn watch_type<T: OdeType>(&mut self, db: &Database) {
        let queue = Arc::clone(&self.queue);
        let id = db.on_type::<T>(move |ev| queue.lock().push(*ev));
        self.triggers.push(id);
    }

    /// Subscribe to one object.
    pub fn watch_object<T: OdeType>(&mut self, db: &Database, ptr: ObjPtr<T>) {
        let queue = Arc::clone(&self.queue);
        let id = db.on_object(ptr, move |ev| queue.lock().push(*ev));
        self.triggers.push(id);
    }

    /// Unsubscribe everything (queued events remain drainable).
    pub fn unwatch_all(&mut self, db: &Database) {
        for id in self.triggers.drain(..) {
            db.remove_trigger(id);
        }
    }

    /// Take all queued events.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.queue.lock())
    }

    /// Number of queued events.
    pub fn pending(&self) -> usize {
        self.queue.lock().len()
    }

    /// Drain the queue into a durable [`ChangeLog`] object.
    pub fn persist_into(&self, txn: &mut Txn<'_>, log: ObjPtr<ChangeLog>) -> Result<usize> {
        let events = self.drain();
        let count = events.len();
        if count > 0 {
            txn.update(&log, |l| {
                l.entries.extend(events.iter().map(encode_kind));
            })?;
        }
        Ok(count)
    }
}

impl Default for Notifier {
    fn default() -> Self {
        Notifier::new()
    }
}
