//! Version environments (Klahold, Schlageter, Wilkes — VLDB '86).
//!
//! §7: "A version environment offers mechanisms for ordering versions by
//! various relationships … and partitioning versions according to
//! specific properties (valid, invalid, in-progress, alternative,
//! effective, etc.)."  This module implements the state/partition half
//! as a policy: each tracked version carries a [`VersionState`], with a
//! transition relation enforced at the API, and frozen versions refuse
//! in-place mutation.

use std::collections::BTreeMap;

use ode::{ObjPtr, OdeType, Result, Txn, VersionPtr};
use ode_codec::{impl_persist_enum, impl_persist_struct, impl_type_name};

/// Lifecycle state of a tracked version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VersionState {
    /// Being worked on; freely mutable.
    InProgress,
    /// Validated; mutable, promotable to frozen.
    Valid,
    /// Failed validation; mutable (to fix), re-validatable.
    Invalid,
    /// Released; immutable under [`EnvHandle::update_guarded`].
    Frozen,
}

impl_persist_enum!(VersionState {
    InProgress,
    Valid,
    Invalid,
    Frozen,
});

impl VersionState {
    /// Whether `self → next` is a legal transition.
    ///
    /// ```text
    /// InProgress → Valid | Invalid
    /// Invalid    → InProgress | Valid
    /// Valid      → Invalid | Frozen
    /// Frozen     → (terminal)
    /// ```
    pub fn can_transition_to(self, next: VersionState) -> bool {
        use VersionState::*;
        matches!(
            (self, next),
            (InProgress, Valid)
                | (InProgress, Invalid)
                | (Invalid, InProgress)
                | (Invalid, Valid)
                | (Valid, Invalid)
                | (Valid, Frozen)
        )
    }
}

/// Persistent environment state: version id → state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Environment {
    /// Environment name.
    pub name: String,
    /// Tracked versions.
    pub states: BTreeMap<u64, VersionState>,
}

impl_persist_struct!(Environment { name, states });
impl_type_name!(Environment = "ode-policies/Environment");

/// A typed handle over a persistent [`Environment`] object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvHandle {
    ptr: ObjPtr<Environment>,
}

/// Error text used when a transition is refused (surfaced through
/// [`ode::Error::LastVersion`]-style typed errors is overkill here; the
/// policy reports refusals as `None`/`false` returns instead).
impl EnvHandle {
    /// Create a new, empty environment.
    pub fn create(txn: &mut Txn<'_>, name: &str) -> Result<EnvHandle> {
        let ptr = txn.pnew(&Environment {
            name: name.to_string(),
            states: BTreeMap::new(),
        })?;
        Ok(EnvHandle { ptr })
    }

    /// Re-attach to an existing environment object.
    pub fn attach(ptr: ObjPtr<Environment>) -> EnvHandle {
        EnvHandle { ptr }
    }

    /// The underlying persistent object.
    pub fn ptr(&self) -> ObjPtr<Environment> {
        self.ptr
    }

    /// Start tracking a version (initially
    /// [`VersionState::InProgress`]). Returns false if already tracked.
    pub fn track<T: OdeType>(&self, txn: &mut Txn<'_>, vp: VersionPtr<T>) -> Result<bool> {
        let mut inserted = false;
        txn.update(&self.ptr, |env| {
            inserted = env
                .states
                .insert(vp.vid().0, VersionState::InProgress)
                .is_none();
        })?;
        Ok(inserted)
    }

    /// The state of a tracked version.
    pub fn state_of<T: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        vp: VersionPtr<T>,
    ) -> Result<Option<VersionState>> {
        Ok(txn.deref(&self.ptr)?.states.get(&vp.vid().0).copied())
    }

    /// Attempt a state transition. Returns whether it was legal (and
    /// applied).
    pub fn transition<T: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        vp: VersionPtr<T>,
        next: VersionState,
    ) -> Result<bool> {
        let mut ok = false;
        txn.update(&self.ptr, |env| {
            if let Some(cur) = env.states.get(&vp.vid().0).copied() {
                if cur.can_transition_to(next) {
                    env.states.insert(vp.vid().0, next);
                    ok = true;
                }
            }
        })?;
        Ok(ok)
    }

    /// Versions currently in `state`, ascending by version id — the
    /// partition query of the version-environment model.
    pub fn partition(&self, txn: &mut Txn<'_>, state: VersionState) -> Result<Vec<u64>> {
        Ok(txn
            .deref(&self.ptr)?
            .states
            .iter()
            .filter(|(_, s)| **s == state)
            .map(|(vid, _)| *vid)
            .collect())
    }

    /// Mutate a version **only if** the environment does not hold it
    /// frozen. Returns whether the update ran.
    pub fn update_guarded<T: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        vp: VersionPtr<T>,
        f: impl FnOnce(&mut T),
    ) -> Result<bool> {
        if self.state_of(txn, vp)? == Some(VersionState::Frozen) {
            return Ok(false);
        }
        txn.update_version(&vp, f)?;
        Ok(true)
    }
}
