//! Checkout/checkin over a public/private database pair.
//!
//! §7 describes ORION's model: "Versions can be transient, working, or
//! released depending upon their location in public, project, or private
//! databases.  Versions can be created by checkout and checkin…".  The
//! paper's position is that this is a *policy*; here it is, composed
//! from `pnew`, `newversion`, and plain reads:
//!
//! * **checkout** copies the public object's latest state into a fresh
//!   object in the designer's private database and remembers the
//!   public↔private mapping (itself a persistent object in the private
//!   database);
//! * **checkin** derives a `newversion` of the public object and writes
//!   the private object's latest state into it;
//! * repeated checkin from the same checkout keeps deriving — the
//!   public history records each round.

use std::collections::BTreeMap;
use std::path::Path;

use ode::{Database, DatabaseOptions, ObjPtr, OdeType, Result, Txn, VersionPtr};
use ode_codec::{impl_persist_struct, impl_type_name};

/// The persistent private→public object mapping.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckoutTable {
    /// private oid → public oid.
    pub entries: BTreeMap<u64, u64>,
}

impl_persist_struct!(CheckoutTable { entries });
impl_type_name!(CheckoutTable = "ode-policies/CheckoutTable");

/// A designer's private workspace over a shared public database.
pub struct Workspace<'pubdb> {
    public: &'pubdb Database,
    private: Database,
    table: ObjPtr<CheckoutTable>,
}

impl<'pubdb> Workspace<'pubdb> {
    /// Create a fresh private workspace database at `private_path`.
    pub fn create(
        public: &'pubdb Database,
        private_path: impl AsRef<Path>,
    ) -> Result<Workspace<'pubdb>> {
        let private = Database::create(private_path, DatabaseOptions::default())?;
        let mut txn = private.begin();
        let table = txn.pnew(&CheckoutTable::default())?;
        txn.commit()?;
        Ok(Workspace {
            public,
            private,
            table,
        })
    }

    /// The private database (for direct edits between checkout and
    /// checkin).
    pub fn private(&self) -> &Database {
        &self.private
    }

    /// Check an object out of the public database: its latest state is
    /// copied into a fresh private object (a "working version").
    pub fn checkout<T: OdeType>(&self, public_ptr: ObjPtr<T>) -> Result<ObjPtr<T>> {
        let state: T = {
            let mut snap = self.public.snapshot();
            snap.deref(&public_ptr)?.into_inner()
        };
        let mut txn = self.private.begin();
        let private_ptr = txn.pnew(&state)?;
        txn.update(&self.table, |t| {
            t.entries.insert(private_ptr.oid().0, public_ptr.oid().0);
        })?;
        txn.commit()?;
        Ok(private_ptr)
    }

    /// Check a private object back in: the public object gains a
    /// `newversion` carrying the private latest state. Returns the new
    /// public version.
    pub fn checkin<T: OdeType>(&self, private_ptr: ObjPtr<T>) -> Result<VersionPtr<T>> {
        let public_ptr = self.public_counterpart(private_ptr)?;
        let state: T = {
            let mut snap = self.private.snapshot();
            snap.deref(&private_ptr)?.into_inner()
        };
        let mut txn = self.public.begin();
        let new_version = txn.newversion(&public_ptr)?;
        txn.put(&public_ptr, &state)?;
        txn.commit()?;
        Ok(new_version)
    }

    /// Release a checkout without checkin: the private object and its
    /// mapping entry are dropped.
    pub fn discard<T: OdeType>(&self, private_ptr: ObjPtr<T>) -> Result<()> {
        let mut txn = self.private.begin();
        txn.update(&self.table, |t| {
            t.entries.remove(&private_ptr.oid().0);
        })?;
        txn.pdelete(private_ptr)?;
        txn.commit()?;
        Ok(())
    }

    /// The public object a private checkout came from.
    pub fn public_counterpart<T: OdeType>(&self, private_ptr: ObjPtr<T>) -> Result<ObjPtr<T>> {
        let mut snap = self.private.snapshot();
        let table = snap.deref(&self.table)?;
        table
            .entries
            .get(&private_ptr.oid().0)
            .map(|&oid| ObjPtr::from_oid(ode::Oid(oid)))
            .ok_or(ode::Error::UnknownObject(private_ptr.oid()))
    }

    /// Number of live checkouts.
    pub fn checkout_count(&self) -> Result<usize> {
        let mut snap = self.private.snapshot();
        Ok(snap.deref(&self.table)?.entries.len())
    }

    /// Edit a checked-out private object in place (a "transient
    /// version" edit in ORION's terms).
    pub fn edit<T: OdeType>(&self, private_ptr: ObjPtr<T>, f: impl FnOnce(&mut T)) -> Result<()> {
        let mut txn: Txn<'_> = self.private.begin();
        txn.update(&private_ptr, f)?;
        txn.commit()?;
        Ok(())
    }
}
