//! Contexts: default-version maps.
//!
//! "In a similar manner, contexts may also be created to specify default
//! versions." (§5)  A context redirects *generic* references: resolving
//! an object through a context yields the context's pinned default
//! version when one is set, and the latest version otherwise.  Like
//! configurations, a context is an ordinary persistent object.

use std::collections::BTreeMap;

use ode::{ObjPtr, OdeType, Result, Txn, VRef, VersionPtr};
use ode_codec::{impl_persist_struct, impl_type_name};

/// Persistent state: object id → pinned default version id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    /// Context name (e.g. "release-1.0").
    pub name: String,
    /// Pinned defaults.
    pub defaults: BTreeMap<u64, u64>,
}

impl_persist_struct!(Context { name, defaults });
impl_type_name!(Context = "ode-policies/Context");

/// A typed handle over a persistent [`Context`] object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextHandle {
    ptr: ObjPtr<Context>,
}

impl ContextHandle {
    /// Create a new, empty context.
    pub fn create(txn: &mut Txn<'_>, name: &str) -> Result<ContextHandle> {
        let ptr = txn.pnew(&Context {
            name: name.to_string(),
            defaults: BTreeMap::new(),
        })?;
        Ok(ContextHandle { ptr })
    }

    /// Re-attach to an existing context object.
    pub fn attach(ptr: ObjPtr<Context>) -> ContextHandle {
        ContextHandle { ptr }
    }

    /// The underlying persistent object.
    pub fn ptr(&self) -> ObjPtr<Context> {
        self.ptr
    }

    /// Pin `object`'s default version in this context.
    pub fn set_default<T: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        object: ObjPtr<T>,
        version: VersionPtr<T>,
    ) -> Result<()> {
        txn.update(&self.ptr, |ctx| {
            ctx.defaults.insert(object.oid().0, version.vid().0);
        })?;
        Ok(())
    }

    /// Remove the pin for `object`; subsequent resolves see the latest
    /// version again. Returns whether a pin existed.
    pub fn clear_default<T: OdeType>(&self, txn: &mut Txn<'_>, object: ObjPtr<T>) -> Result<bool> {
        let mut removed = false;
        txn.update(&self.ptr, |ctx| {
            removed = ctx.defaults.remove(&object.oid().0).is_some();
        })?;
        Ok(removed)
    }

    /// The pinned version for `object`, if any.
    pub fn default_of<T: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        object: ObjPtr<T>,
    ) -> Result<Option<VersionPtr<T>>> {
        let ctx = txn.deref(&self.ptr)?;
        Ok(ctx
            .defaults
            .get(&object.oid().0)
            .map(|&vid| VersionPtr::from_vid(ode::Vid(vid))))
    }

    /// Resolve a generic reference *through the context*: the pinned
    /// default when set, otherwise the latest version.
    pub fn resolve<T: OdeType>(&self, txn: &mut Txn<'_>, object: ObjPtr<T>) -> Result<VRef<T>> {
        match self.default_of(txn, object)? {
            Some(vp) => txn.deref_v(&vp),
            None => {
                let latest = txn.current_version(&object)?;
                txn.deref_v(&latest)
            }
        }
    }

    /// Number of pinned objects.
    pub fn pinned_count(&self, txn: &mut Txn<'_>) -> Result<usize> {
        Ok(txn.deref(&self.ptr)?.defaults.len())
    }
}
