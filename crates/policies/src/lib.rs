//! # ode-policies — versioning policies built from Ode's primitives
//!
//! A central claim of the paper is its separation of *primitives* from
//! *policies*: "O++ culls out kernel features from these proposals and
//! provides primitives … for implementing a variety of versioning models
//! and application-specific systems."  This crate is the demonstration:
//! every module here is implemented **entirely against the public `ode`
//! API** — no storage internals — exactly as an O++ user would have
//! written them:
//!
//! * [`config`] — **configurations** (Katz et al.): named compositions
//!   binding component objects either *statically* (a pinned version) or
//!   *dynamically* (whatever is latest), with snapshot freezing;
//! * [`context`] — **contexts** (IRIS/ORION): default-version maps that
//!   redirect generic references;
//! * [`checkout`] — **checkout/checkin** (ORION's public/private
//!   architecture): a private workspace database whose edits return to
//!   the public database as new versions;
//! * [`environment`] — **version environments** (Klahold et al.):
//!   version states (in-progress / valid / invalid / frozen) with
//!   transition rules and state-based partitions;
//! * [`percolate`] — **version percolation** (ORION/PIE), the feature
//!   the paper deliberately *excluded* from the kernel ("creating a new
//!   version can lead to the automatic creation of a large number of
//!   versions of other objects") — implemented here as a policy so its
//!   cost can be measured (experiment E4);
//! * [`notify`] — **change notification** built on triggers, the
//!   mechanism the paper points users at instead of a built-in facility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkout;
pub mod config;
pub mod context;
pub mod environment;
pub mod equivalence;
pub mod notify;
pub mod percolate;
pub mod retention;

pub use checkout::Workspace;
pub use config::{Binding, ConfigHandle, Configuration};
pub use context::{Context, ContextHandle};
pub use environment::{EnvHandle, Environment, VersionState};
pub use equivalence::{EquivalenceHandle, EquivalenceSet};
pub use notify::Notifier;
pub use percolate::{CompositeRegistry, RegistryHandle};
pub use retention::RetentionPolicy;
