//! Configurations: compositions of specific versions of component
//! objects (Katz et al., and §5's representation objects).
//!
//! "Each representation can be thought of as a configuration."  A
//! configuration names its components and binds each one either
//! **statically** — to a pinned version id, early binding — or
//! **dynamically** — to the object id, so resolution late-binds to the
//! latest version.  Configurations are themselves persistent Ode
//! objects, so they version, persist, and trigger like anything else.

use std::collections::BTreeMap;

use ode::{ObjPtr, OdeType, Result, Snapshot, Txn, VRef, VersionPtr};
use ode::{Oid, Vid};
use ode_codec::{impl_persist_enum, impl_persist_struct, impl_type_name};

/// How one component of a configuration is bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// Early binding: a pinned version.
    Static {
        /// The component object.
        oid: Oid,
        /// The pinned version.
        vid: Vid,
    },
    /// Late binding: resolves to the object's latest version at each
    /// access.
    Dynamic {
        /// The component object.
        oid: Oid,
    },
}

impl_persist_enum!(Binding {
    Static { oid, vid },
    Dynamic { oid },
});

/// The persistent state of a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    /// Human-readable configuration name (e.g. "timing").
    pub name: String,
    /// Component name → binding.
    pub bindings: BTreeMap<String, Binding>,
}

impl_persist_struct!(Configuration { name, bindings });
impl_type_name!(Configuration = "ode-policies/Configuration");

/// A typed handle over a persistent [`Configuration`] object.
///
/// ```
/// use ode::{Database, DatabaseOptions};
/// use ode_codec::{impl_persist_struct, impl_type_name};
/// use ode_policies::config::ConfigHandle;
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct Part { rev: u32 }
/// impl_persist_struct!(Part { rev });
/// impl_type_name!(Part = "cfg-doc/Part");
///
/// # let path = std::env::temp_dir().join(format!("cfg-doc-{}", std::process::id()));
/// # let db = Database::create(&path, DatabaseOptions::default()).unwrap();
/// let mut txn = db.begin();
/// let part = txn.pnew(&Part { rev: 1 }).unwrap();
/// let cfg = ConfigHandle::create(&mut txn, "release").unwrap();
/// cfg.bind_dynamic(&mut txn, "part", part).unwrap();
/// cfg.freeze(&mut txn).unwrap();            // pin what "release" means
/// txn.newversion(&part).unwrap();
/// txn.update(&part, |p| p.rev = 2).unwrap();
/// // The frozen configuration still resolves the pinned state.
/// assert_eq!(cfg.resolve::<Part>(&mut txn, "part").unwrap().rev, 1);
/// txn.commit().unwrap();
/// # drop(db);
/// # let _ = std::fs::remove_file(&path);
/// # let mut w = path.into_os_string(); w.push(".wal");
/// # let _ = std::fs::remove_file(std::path::PathBuf::from(w));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigHandle {
    ptr: ObjPtr<Configuration>,
}

impl ConfigHandle {
    /// Create a new, empty configuration.
    pub fn create(txn: &mut Txn<'_>, name: &str) -> Result<ConfigHandle> {
        let ptr = txn.pnew(&Configuration {
            name: name.to_string(),
            bindings: BTreeMap::new(),
        })?;
        Ok(ConfigHandle { ptr })
    }

    /// Re-attach to an existing configuration object.
    pub fn attach(ptr: ObjPtr<Configuration>) -> ConfigHandle {
        ConfigHandle { ptr }
    }

    /// The underlying persistent object.
    pub fn ptr(&self) -> ObjPtr<Configuration> {
        self.ptr
    }

    /// Bind `component` statically to a specific version.
    pub fn bind_static<T: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        component: &str,
        version: VersionPtr<T>,
    ) -> Result<()> {
        let oid = txn.object_of(&version)?.oid();
        let component = component.to_string();
        txn.update(&self.ptr, |cfg| {
            cfg.bindings.insert(
                component,
                Binding::Static {
                    oid,
                    vid: version.vid(),
                },
            );
        })?;
        Ok(())
    }

    /// Bind `component` dynamically to an object (latest wins at each
    /// resolve).
    pub fn bind_dynamic<T: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        component: &str,
        object: ObjPtr<T>,
    ) -> Result<()> {
        let component = component.to_string();
        txn.update(&self.ptr, |cfg| {
            cfg.bindings
                .insert(component, Binding::Dynamic { oid: object.oid() });
        })?;
        Ok(())
    }

    /// Remove a component. Returns whether it was bound.
    pub fn unbind(&self, txn: &mut Txn<'_>, component: &str) -> Result<bool> {
        let component = component.to_string();
        let mut removed = false;
        txn.update(&self.ptr, |cfg| {
            removed = cfg.bindings.remove(&component).is_some();
        })?;
        Ok(removed)
    }

    /// Resolve a component to its bound state (type-checked decode).
    pub fn resolve<T: OdeType>(&self, txn: &mut Txn<'_>, component: &str) -> Result<VRef<T>> {
        let binding = self.binding(txn, component)?;
        resolve_binding(txn, binding)
    }

    /// Resolve against a read-only snapshot.
    pub fn resolve_in<T: OdeType>(
        &self,
        snap: &mut Snapshot<'_>,
        component: &str,
    ) -> Result<VRef<T>> {
        let cfg = snap.deref(&self.ptr)?;
        let binding = *cfg
            .bindings
            .get(component)
            .ok_or(ode::Error::UnknownObject(Oid::NULL))?;
        let vp: VersionPtr<T> = match binding {
            Binding::Static { vid, .. } => VersionPtr::from_vid(vid),
            Binding::Dynamic { oid } => {
                let p: ObjPtr<T> = ObjPtr::from_oid(oid);
                snap.current_version(&p)?
            }
        };
        snap.deref_v(&vp)
    }

    /// The binding of one component.
    pub fn binding(&self, txn: &mut Txn<'_>, component: &str) -> Result<Binding> {
        let cfg = txn.deref(&self.ptr)?;
        cfg.bindings
            .get(component)
            .copied()
            .ok_or(ode::Error::UnknownObject(Oid::NULL))
    }

    /// All component names, sorted.
    pub fn components(&self, txn: &mut Txn<'_>) -> Result<Vec<String>> {
        Ok(txn.deref(&self.ptr)?.bindings.keys().cloned().collect())
    }

    /// Snapshot-freeze: every dynamic binding becomes a static binding
    /// to the component's *current* latest version.  This is how §5's
    /// released representations pin their parts.
    pub fn freeze(&self, txn: &mut Txn<'_>) -> Result<()> {
        let bindings = txn.deref(&self.ptr)?.bindings.clone();
        let mut frozen = BTreeMap::new();
        for (name, binding) in bindings {
            let pinned = match binding {
                Binding::Static { .. } => binding,
                Binding::Dynamic { oid } => Binding::Static {
                    oid,
                    vid: txn.latest_raw(oid)?,
                },
            };
            frozen.insert(name, pinned);
        }
        txn.update(&self.ptr, |cfg| cfg.bindings = frozen)?;
        Ok(())
    }
}

fn resolve_binding<T: OdeType>(txn: &mut Txn<'_>, binding: Binding) -> Result<VRef<T>> {
    let vp: VersionPtr<T> = match binding {
        Binding::Static { vid, .. } => VersionPtr::from_vid(vid),
        Binding::Dynamic { oid } => {
            let p: ObjPtr<T> = ObjPtr::from_oid(oid);
            txn.current_version(&p)?
        }
    };
    txn.deref_v(&vp)
}
