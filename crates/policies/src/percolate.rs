//! Version percolation — the policy the paper refused to make a
//! primitive.
//!
//! §2: "we do not provide version percolation because creating a new
//! version can lead to the automatic creation of a large number of
//! versions of other objects.  Users may implement version percolation
//! as a policy by using other O++ facilities."  This module is that user
//! implementation: a persistent registry of composite (child → parents)
//! edges, and a percolate operation that, given a changed child, derives
//! a new version of every transitive ancestor.
//!
//! Experiment E4 measures exactly the fan-out cost the paper warns
//! about.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ode::{ObjPtr, OdeType, Result, Txn};
use ode::{Oid, Vid};
use ode_codec::{impl_persist_struct, impl_type_name};

/// Persistent composite structure: child oid → parent oids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompositeRegistry {
    /// Upward edges of the composition DAG.
    pub parents: BTreeMap<u64, Vec<u64>>,
}

impl_persist_struct!(CompositeRegistry { parents });
impl_type_name!(CompositeRegistry = "ode-policies/CompositeRegistry");

/// A typed handle over a persistent [`CompositeRegistry`] object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryHandle {
    ptr: ObjPtr<CompositeRegistry>,
}

impl RegistryHandle {
    /// Create a new, empty registry.
    pub fn create(txn: &mut Txn<'_>) -> Result<RegistryHandle> {
        let ptr = txn.pnew(&CompositeRegistry::default())?;
        Ok(RegistryHandle { ptr })
    }

    /// Re-attach to an existing registry object.
    pub fn attach(ptr: ObjPtr<CompositeRegistry>) -> RegistryHandle {
        RegistryHandle { ptr }
    }

    /// The underlying persistent object.
    pub fn ptr(&self) -> ObjPtr<CompositeRegistry> {
        self.ptr
    }

    /// Record that `child` is a component of `parent`.
    pub fn add_edge<C: OdeType, P: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        parent: ObjPtr<P>,
        child: ObjPtr<C>,
    ) -> Result<()> {
        txn.update(&self.ptr, |reg| {
            let entry = reg.parents.entry(child.oid().0).or_default();
            if !entry.contains(&parent.oid().0) {
                entry.push(parent.oid().0);
            }
        })?;
        Ok(())
    }

    /// The transitive ancestors of `child`, breadth-first, deduplicated.
    pub fn ancestors<C: OdeType>(&self, txn: &mut Txn<'_>, child: ObjPtr<C>) -> Result<Vec<Oid>> {
        let reg = txn.deref(&self.ptr)?;
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut queue: VecDeque<u64> = VecDeque::new();
        queue.push_back(child.oid().0);
        let mut out = Vec::new();
        while let Some(cur) = queue.pop_front() {
            if let Some(parents) = reg.parents.get(&cur) {
                for &p in parents {
                    if seen.insert(p) {
                        out.push(Oid(p));
                        queue.push_back(p);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Percolate: derive a new version of **every transitive ancestor**
    /// of `child` (the child itself is assumed already versioned by the
    /// caller).  Returns the (ancestor, new version) pairs — whose
    /// length is the fan-out cost the paper warns about.
    pub fn percolate<C: OdeType>(
        &self,
        txn: &mut Txn<'_>,
        child: ObjPtr<C>,
    ) -> Result<Vec<(Oid, Vid)>> {
        let ancestors = self.ancestors(txn, child)?;
        let mut created = Vec::with_capacity(ancestors.len());
        for oid in ancestors {
            let vid = txn.newversion_raw(oid)?;
            created.push((oid, vid));
        }
        Ok(created)
    }

    /// Number of registered edges.
    pub fn edge_count(&self, txn: &mut Txn<'_>) -> Result<usize> {
        Ok(txn.deref(&self.ptr)?.parents.values().map(Vec::len).sum())
    }
}
