//! Behavioural tests for every policy module, each exercising only the
//! public `ode` API — mirroring how an O++ user would compose them.

use ode::{Database, DatabaseOptions};
use ode_codec::{impl_persist_struct, impl_type_name};
use ode_policies::{
    checkout::Workspace,
    config::{Binding, ConfigHandle},
    context::ContextHandle,
    environment::{EnvHandle, VersionState},
    notify::{ChangeLog, Notifier},
    percolate::RegistryHandle,
};

#[derive(Debug, Clone, PartialEq)]
struct Cell {
    name: String,
    area: u32,
}
impl_persist_struct!(Cell { name, area });
impl_type_name!(Cell = "policy-test/Cell");

#[derive(Debug, Clone, PartialEq)]
struct Net {
    wires: Vec<u32>,
}
impl_persist_struct!(Net { wires });
impl_type_name!(Net = "policy-test/Net");

struct TempDb {
    path: std::path::PathBuf,
}

impl TempDb {
    fn new(name: &str) -> TempDb {
        let mut path = std::env::temp_dir();
        path.push(format!("ode-policy-{name}-{}", std::process::id()));
        TempDb::wipe(&path);
        TempDb { path }
    }

    fn wipe(path: &std::path::Path) {
        let _ = std::fs::remove_file(path);
        let mut wal = path.to_path_buf().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }

    fn create(&self) -> Database {
        Database::create(&self.path, DatabaseOptions::default()).unwrap()
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        TempDb::wipe(&self.path);
    }
}

fn cell(name: &str, area: u32) -> Cell {
    Cell {
        name: name.into(),
        area,
    }
}

// ---------------------------------------------------------------------------
// Configurations
// ---------------------------------------------------------------------------

#[test]
fn configuration_static_vs_dynamic_binding() {
    let tmp = TempDb::new("config");
    let db = tmp.create();
    let mut txn = db.begin();
    let alu = txn.pnew(&cell("alu", 100)).unwrap();
    let v0 = txn.current_version(&alu).unwrap();

    let cfg = ConfigHandle::create(&mut txn, "timing").unwrap();
    cfg.bind_static(&mut txn, "pinned-alu", v0).unwrap();
    cfg.bind_dynamic(&mut txn, "live-alu", alu).unwrap();

    // Evolve the component.
    txn.newversion(&alu).unwrap();
    txn.update(&alu, |c| c.area = 200).unwrap();

    // Static binding still sees v0; dynamic sees the latest.
    assert_eq!(
        cfg.resolve::<Cell>(&mut txn, "pinned-alu").unwrap().area,
        100
    );
    assert_eq!(cfg.resolve::<Cell>(&mut txn, "live-alu").unwrap().area, 200);
    txn.commit().unwrap();
}

#[test]
fn configuration_freeze_pins_dynamics() {
    let tmp = TempDb::new("freeze");
    let db = tmp.create();
    let mut txn = db.begin();
    let alu = txn.pnew(&cell("alu", 1)).unwrap();
    let cfg = ConfigHandle::create(&mut txn, "release").unwrap();
    cfg.bind_dynamic(&mut txn, "alu", alu).unwrap();

    cfg.freeze(&mut txn).unwrap();
    // Post-freeze evolution is invisible through the configuration.
    txn.newversion(&alu).unwrap();
    txn.update(&alu, |c| c.area = 99).unwrap();
    assert_eq!(cfg.resolve::<Cell>(&mut txn, "alu").unwrap().area, 1);
    assert!(matches!(
        cfg.binding(&mut txn, "alu").unwrap(),
        Binding::Static { .. }
    ));
    txn.commit().unwrap();
}

#[test]
fn configuration_persists_and_unbinds() {
    let tmp = TempDb::new("cfgpersist");
    let cfg_ptr;
    {
        let db = tmp.create();
        let mut txn = db.begin();
        let alu = txn.pnew(&cell("alu", 5)).unwrap();
        let cfg = ConfigHandle::create(&mut txn, "c").unwrap();
        cfg.bind_dynamic(&mut txn, "alu", alu).unwrap();
        cfg_ptr = cfg.ptr();
        txn.commit().unwrap();
    }
    let db = Database::open(&tmp.path, DatabaseOptions::default()).unwrap();
    let mut txn = db.begin();
    let cfg = ConfigHandle::attach(cfg_ptr);
    assert_eq!(cfg.components(&mut txn).unwrap(), vec!["alu"]);
    assert_eq!(cfg.resolve::<Cell>(&mut txn, "alu").unwrap().area, 5);
    assert!(cfg.unbind(&mut txn, "alu").unwrap());
    assert!(!cfg.unbind(&mut txn, "alu").unwrap());
    assert!(cfg.resolve::<Cell>(&mut txn, "alu").is_err());
    txn.commit().unwrap();
}

// ---------------------------------------------------------------------------
// Contexts
// ---------------------------------------------------------------------------

#[test]
fn context_redirects_generic_references() {
    let tmp = TempDb::new("context");
    let db = tmp.create();
    let mut txn = db.begin();
    let alu = txn.pnew(&cell("alu", 10)).unwrap();
    let v0 = txn.current_version(&alu).unwrap();
    txn.newversion(&alu).unwrap();
    txn.update(&alu, |c| c.area = 20).unwrap();

    let ctx = ContextHandle::create(&mut txn, "release-1.0").unwrap();
    // Unpinned: context resolves to latest.
    assert_eq!(ctx.resolve(&mut txn, alu).unwrap().area, 20);
    // Pinned: context resolves to the default version.
    ctx.set_default(&mut txn, alu, v0).unwrap();
    assert_eq!(ctx.resolve(&mut txn, alu).unwrap().area, 10);
    assert_eq!(ctx.default_of(&mut txn, alu).unwrap(), Some(v0));
    assert_eq!(ctx.pinned_count(&mut txn).unwrap(), 1);
    // Cleared: back to latest.
    assert!(ctx.clear_default(&mut txn, alu).unwrap());
    assert_eq!(ctx.resolve(&mut txn, alu).unwrap().area, 20);
    txn.commit().unwrap();
}

// ---------------------------------------------------------------------------
// Checkout / checkin
// ---------------------------------------------------------------------------

#[test]
fn checkout_edit_checkin_round_trip() {
    let tmp = TempDb::new("public");
    let public = tmp.create();
    let alu = {
        let mut txn = public.begin();
        let p = txn.pnew(&cell("alu", 100)).unwrap();
        txn.commit().unwrap();
        p
    };

    let mut priv_path = std::env::temp_dir();
    priv_path.push(format!("ode-policy-private-{}", std::process::id()));
    TempDb::wipe(&priv_path);
    let ws = Workspace::create(&public, &priv_path).unwrap();

    // Checkout copies the latest public state.
    let working = ws.checkout(alu).unwrap();
    assert_eq!(ws.checkout_count().unwrap(), 1);
    ws.edit(working, |c: &mut Cell| c.area = 250).unwrap();

    // Public is untouched until checkin.
    {
        let mut snap = public.snapshot();
        assert_eq!(snap.deref(&alu).unwrap().area, 100);
        assert_eq!(snap.version_count(&alu).unwrap(), 1);
    }

    // Checkin derives a new public version carrying the edit.
    let v1 = ws.checkin(working).unwrap();
    {
        let mut snap = public.snapshot();
        assert_eq!(snap.deref(&alu).unwrap().area, 250);
        assert_eq!(snap.version_count(&alu).unwrap(), 2);
        // The pre-checkout state survives as the old version.
        let history = snap.version_history(&alu).unwrap();
        assert_eq!(snap.deref_v(&history[0]).unwrap().area, 100);
        assert_eq!(history[1], v1);
    }

    // A second edit/checkin round extends the public history.
    ws.edit(working, |c: &mut Cell| c.area = 300).unwrap();
    ws.checkin(working).unwrap();
    {
        let mut snap = public.snapshot();
        assert_eq!(snap.version_count(&alu).unwrap(), 3);
        assert_eq!(snap.deref(&alu).unwrap().area, 300);
    }

    TempDb::wipe(&priv_path);
}

#[test]
fn two_designers_interleave_checkins() {
    let tmp = TempDb::new("twodesigners");
    let public = tmp.create();
    let alu = {
        let mut txn = public.begin();
        let p = txn.pnew(&cell("alu", 100)).unwrap();
        txn.commit().unwrap();
        p
    };
    let mut p1 = std::env::temp_dir();
    p1.push(format!("ode-policy-designer1-{}", std::process::id()));
    let mut p2 = std::env::temp_dir();
    p2.push(format!("ode-policy-designer2-{}", std::process::id()));
    TempDb::wipe(&p1);
    TempDb::wipe(&p2);

    let ws1 = Workspace::create(&public, &p1).unwrap();
    let ws2 = Workspace::create(&public, &p2).unwrap();

    // Both check out the same public part concurrently.
    let w1 = ws1.checkout(alu).unwrap();
    let w2 = ws2.checkout(alu).unwrap();
    ws1.edit(w1, |c: &mut Cell| c.area = 111).unwrap();
    ws2.edit(w2, |c: &mut Cell| c.area = 222).unwrap();

    // Interleaved checkins: each lands as its own public version; the
    // later one becomes the latest (last-writer-wins on the generic
    // reference, with both states preserved in the history).
    let v1 = ws1.checkin(w1).unwrap();
    let v2 = ws2.checkin(w2).unwrap();
    let mut snap = public.snapshot();
    assert_eq!(snap.version_count(&alu).unwrap(), 3);
    assert_eq!(snap.deref(&alu).unwrap().area, 222);
    assert_eq!(snap.deref_v(&v1).unwrap().area, 111);
    assert_eq!(snap.deref_v(&v2).unwrap().area, 222);
    // Full audit trail: 100 → 111 → 222.
    let areas: Vec<u32> = snap
        .version_history(&alu)
        .unwrap()
        .iter()
        .map(|v| snap.deref_v(v).unwrap().area)
        .collect();
    assert_eq!(areas, vec![100, 111, 222]);
    drop(snap);

    TempDb::wipe(&p1);
    TempDb::wipe(&p2);
}

#[test]
fn checkout_discard_leaves_public_untouched() {
    let tmp = TempDb::new("discardpub");
    let public = tmp.create();
    let alu = {
        let mut txn = public.begin();
        let p = txn.pnew(&cell("alu", 1)).unwrap();
        txn.commit().unwrap();
        p
    };
    let mut priv_path = std::env::temp_dir();
    priv_path.push(format!("ode-policy-private-d-{}", std::process::id()));
    TempDb::wipe(&priv_path);
    let ws = Workspace::create(&public, &priv_path).unwrap();
    let working = ws.checkout(alu).unwrap();
    ws.edit(working, |c: &mut Cell| c.area = 999).unwrap();
    ws.discard(working).unwrap();
    assert_eq!(ws.checkout_count().unwrap(), 0);
    assert!(ws.checkin(working).is_err(), "mapping gone after discard");
    let mut snap = public.snapshot();
    assert_eq!(snap.deref(&alu).unwrap().area, 1);
    assert_eq!(snap.version_count(&alu).unwrap(), 1);
    drop(snap);
    TempDb::wipe(&priv_path);
}

// ---------------------------------------------------------------------------
// Version environments
// ---------------------------------------------------------------------------

#[test]
fn environment_states_and_partitions() {
    let tmp = TempDb::new("env");
    let db = tmp.create();
    let mut txn = db.begin();
    let alu = txn.pnew(&cell("alu", 1)).unwrap();
    let v0 = txn.current_version(&alu).unwrap();
    let v1 = txn.newversion(&alu).unwrap();

    let env = EnvHandle::create(&mut txn, "project-x").unwrap();
    assert!(env.track(&mut txn, v0).unwrap());
    assert!(!env.track(&mut txn, v0).unwrap(), "double track refused");
    env.track(&mut txn, v1).unwrap();

    // Legal chain: InProgress → Valid → Frozen.
    assert!(env.transition(&mut txn, v0, VersionState::Valid).unwrap());
    assert!(env.transition(&mut txn, v0, VersionState::Frozen).unwrap());
    // Illegal: InProgress → Frozen directly.
    assert!(!env.transition(&mut txn, v1, VersionState::Frozen).unwrap());
    // Illegal: leaving Frozen.
    assert!(!env.transition(&mut txn, v0, VersionState::Valid).unwrap());

    assert_eq!(
        env.partition(&mut txn, VersionState::Frozen).unwrap(),
        vec![v0.vid().0]
    );
    assert_eq!(
        env.partition(&mut txn, VersionState::InProgress).unwrap(),
        vec![v1.vid().0]
    );

    // Frozen versions refuse guarded mutation; in-progress ones accept.
    assert!(!env.update_guarded(&mut txn, v0, |c| c.area = 7).unwrap());
    assert!(env.update_guarded(&mut txn, v1, |c| c.area = 7).unwrap());
    assert_eq!(txn.deref_v(&v0).unwrap().area, 1);
    assert_eq!(txn.deref_v(&v1).unwrap().area, 7);
    txn.commit().unwrap();
}

#[test]
fn environment_invalid_rework_cycle() {
    let tmp = TempDb::new("envcycle");
    let db = tmp.create();
    let mut txn = db.begin();
    let alu = txn.pnew(&cell("alu", 1)).unwrap();
    let v0 = txn.current_version(&alu).unwrap();
    let env = EnvHandle::create(&mut txn, "qa").unwrap();
    env.track(&mut txn, v0).unwrap();
    assert!(env.transition(&mut txn, v0, VersionState::Invalid).unwrap());
    assert!(env
        .transition(&mut txn, v0, VersionState::InProgress)
        .unwrap());
    assert!(env.transition(&mut txn, v0, VersionState::Valid).unwrap());
    assert!(env.transition(&mut txn, v0, VersionState::Invalid).unwrap());
    assert!(env.transition(&mut txn, v0, VersionState::Valid).unwrap());
    assert!(env.transition(&mut txn, v0, VersionState::Frozen).unwrap());
    txn.commit().unwrap();
}

// ---------------------------------------------------------------------------
// Percolation
// ---------------------------------------------------------------------------

#[test]
fn percolation_versions_all_ancestors() {
    let tmp = TempDb::new("percolate");
    let db = tmp.create();
    let mut txn = db.begin();
    // board ← module ← cell (child → parent edges point up).
    let cellp = txn.pnew(&cell("nand", 1)).unwrap();
    let module = txn.pnew(&Net { wires: vec![1] }).unwrap();
    let board = txn.pnew(&Net { wires: vec![2] }).unwrap();

    let reg = RegistryHandle::create(&mut txn).unwrap();
    reg.add_edge(&mut txn, module, cellp).unwrap();
    reg.add_edge(&mut txn, board, module).unwrap();
    assert_eq!(reg.edge_count(&mut txn).unwrap(), 2);

    // The designer versions the cell, then percolates.
    txn.newversion(&cellp).unwrap();
    let created = reg.percolate(&mut txn, cellp).unwrap();
    // Both ancestors got a new version — the fan-out the paper warns of.
    assert_eq!(created.len(), 2);
    assert_eq!(txn.version_count(&module).unwrap(), 2);
    assert_eq!(txn.version_count(&board).unwrap(), 2);
    assert_eq!(txn.version_count(&cellp).unwrap(), 2);
    txn.commit().unwrap();
}

#[test]
fn percolation_handles_diamonds_once() {
    let tmp = TempDb::new("diamond");
    let db = tmp.create();
    let mut txn = db.begin();
    let child = txn.pnew(&cell("c", 1)).unwrap();
    let left = txn.pnew(&Net { wires: vec![] }).unwrap();
    let right = txn.pnew(&Net { wires: vec![] }).unwrap();
    let top = txn.pnew(&Net { wires: vec![] }).unwrap();
    let reg = RegistryHandle::create(&mut txn).unwrap();
    reg.add_edge(&mut txn, left, child).unwrap();
    reg.add_edge(&mut txn, right, child).unwrap();
    reg.add_edge(&mut txn, top, left).unwrap();
    reg.add_edge(&mut txn, top, right).unwrap();
    let created = reg.percolate(&mut txn, child).unwrap();
    // top is reached twice but versioned once.
    assert_eq!(created.len(), 3);
    assert_eq!(txn.version_count(&top).unwrap(), 2);
    txn.commit().unwrap();
}

// ---------------------------------------------------------------------------
// Notification
// ---------------------------------------------------------------------------

#[test]
fn notifier_collects_committed_changes_only() {
    let tmp = TempDb::new("notify");
    let db = tmp.create();
    let mut notifier = Notifier::new();
    notifier.watch_type::<Cell>(&db);

    let alu = {
        let mut txn = db.begin();
        let p = txn.pnew(&cell("alu", 1)).unwrap();
        txn.commit().unwrap();
        p
    };
    assert_eq!(notifier.pending(), 1); // Created

    {
        // Aborted: no notification.
        let mut txn = db.begin();
        txn.update(&alu, |c| c.area = 9).unwrap();
    }
    assert_eq!(notifier.pending(), 1);

    {
        let mut txn = db.begin();
        txn.newversion(&alu).unwrap();
        txn.update(&alu, |c| c.area = 9).unwrap();
        txn.commit().unwrap();
    }
    assert_eq!(notifier.pending(), 3); // + NewVersion + Updated

    let events = notifier.drain();
    assert_eq!(events.len(), 3);
    assert_eq!(notifier.pending(), 0);

    notifier.unwatch_all(&db);
    {
        let mut txn = db.begin();
        txn.update(&alu, |c| c.area = 10).unwrap();
        txn.commit().unwrap();
    }
    assert_eq!(notifier.pending(), 0);
}

#[test]
fn notifier_persists_durable_changelog() {
    let tmp = TempDb::new("changelog");
    let db = tmp.create();
    let log = {
        let mut txn = db.begin();
        let log = txn.pnew(&ChangeLog::default()).unwrap();
        txn.commit().unwrap();
        log
    };
    let mut notifier = Notifier::new();
    notifier.watch_type::<Cell>(&db);
    let alu = {
        let mut txn = db.begin();
        let p = txn.pnew(&cell("alu", 1)).unwrap();
        txn.commit().unwrap();
        p
    };
    {
        let mut txn = db.begin();
        txn.newversion(&alu).unwrap();
        txn.commit().unwrap();
    }
    {
        let mut txn = db.begin();
        let persisted = notifier.persist_into(&mut txn, log).unwrap();
        assert_eq!(persisted, 2);
        txn.commit().unwrap();
    }
    let mut snap = db.snapshot();
    let entries = snap.deref(&log).unwrap().entries.clone();
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].2, 0, "created");
    assert_eq!(entries[1].2, 2, "newversion");
}
