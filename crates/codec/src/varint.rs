//! LEB128 varint primitives shared by the reader and writer.

use crate::DecodeError;

/// Maximum encoded width of a u64 varint: ceil(64 / 7) = 10 bytes.
pub const MAX_VARINT_LEN: usize = 10;

/// Append a LEB128-encoded u64 to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a LEB128 u64 from the front of `input`, returning the value and
/// the number of bytes consumed.
pub fn read_u64(input: &[u8]) -> Result<(u64, usize), DecodeError> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(DecodeError::VarintOverflow);
        }
        let payload = (byte & 0x7F) as u64;
        // The 10th byte may only contribute the final single bit.
        if shift == 63 && payload > 1 {
            return Err(DecodeError::VarintOverflow);
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(DecodeError::UnexpectedEof {
        needed: 1,
        remaining: 0,
    })
}

/// Zigzag-encode a signed integer so small magnitudes stay small.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Reverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let (back, used) = read_u64(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_width_is_minimal() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), MAX_VARINT_LEN);
    }

    #[test]
    fn varint_rejects_overflow() {
        // 11 continuation bytes cannot be a valid u64.
        let buf = [0xFFu8; 11];
        assert_eq!(read_u64(&buf), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn varint_rejects_overwide_final_byte() {
        // 9 continuation bytes then a byte with more than the low bit set.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert_eq!(read_u64(&buf), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn varint_eof() {
        let buf = [0x80u8]; // continuation bit set, nothing follows
        assert!(matches!(
            read_u64(&buf),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123_456_789] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_small_codes() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }
}
