//! Encoding sink.

use crate::varint;

/// An append-only byte sink used by [`Persist::encode`](crate::Persist::encode).
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Create a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Clear the buffer, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Write a single raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Write an unsigned varint.
    pub fn put_varint(&mut self, v: u64) {
        varint::write_u64(&mut self.buf, v);
    }

    /// Write a signed varint (zigzag-coded).
    pub fn put_varint_signed(&mut self, v: i64) {
        varint::write_u64(&mut self.buf, varint::zigzag_encode(v));
    }

    /// Write a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.put_raw(bytes);
    }

    /// Write a little-endian fixed-width u32 (used where fixed offsets
    /// matter, e.g. page headers).
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian fixed-width u64.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_accumulates() {
        let mut w = Writer::new();
        assert!(w.is_empty());
        w.put_u8(1);
        w.put_raw(&[2, 3]);
        w.put_varint(300);
        assert_eq!(w.len(), 5);
        assert_eq!(w.as_bytes()[..3], [1, 2, 3]);
    }

    #[test]
    fn put_bytes_is_length_prefixed() {
        let mut w = Writer::new();
        w.put_bytes(b"abc");
        assert_eq!(w.into_bytes(), vec![3, b'a', b'b', b'c']);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut w = Writer::with_capacity(64);
        w.put_raw(&[0; 32]);
        w.clear();
        assert!(w.is_empty());
    }
}
