//! Decoding error type.

use std::fmt;

/// An error produced while decoding a [`Persist`](crate::Persist) value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was fully decoded.
    UnexpectedEof {
        /// Bytes that were needed to make progress.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A varint ran past its maximum encoded width (corrupt input).
    VarintOverflow,
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A `char` scalar value was out of range.
    InvalidChar(u32),
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// An enum discriminant did not match any known variant.
    InvalidDiscriminant {
        /// Name of the enum being decoded.
        type_name: &'static str,
        /// The unrecognized discriminant value.
        discriminant: u64,
    },
    /// A declared length exceeded the bytes available (corruption guard:
    /// prevents huge bogus allocations from corrupt length prefixes).
    LengthTooLarge {
        /// Declared element or byte count.
        declared: u64,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// The decoded value violated a type-specific invariant.
    Invalid(&'static str),
    /// Extra bytes remained after a whole-buffer decode.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            DecodeError::VarintOverflow => write!(f, "varint exceeded maximum width"),
            DecodeError::InvalidBool(b) => write!(f, "invalid boolean byte {b:#04x}"),
            DecodeError::InvalidChar(c) => write!(f, "invalid char scalar {c:#x}"),
            DecodeError::InvalidUtf8 => write!(f, "string is not valid UTF-8"),
            DecodeError::InvalidDiscriminant {
                type_name,
                discriminant,
            } => write!(
                f,
                "invalid discriminant {discriminant} for enum {type_name}"
            ),
            DecodeError::LengthTooLarge {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} exceeds {remaining} remaining bytes"
            ),
            DecodeError::Invalid(msg) => write!(f, "invalid value: {msg}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for DecodeError {}
