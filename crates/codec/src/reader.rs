//! Decoding source.

use crate::{varint, DecodeError};

/// A cursor over an input byte slice used by
/// [`Persist::decode`](crate::Persist::decode).
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    input: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(input: &'a [u8]) -> Self {
        Reader { input }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }

    fn advance(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.input.len() {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining: self.input.len(),
            });
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    /// Read one raw byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.advance(1)?[0])
    }

    /// Read `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.advance(n)
    }

    /// Read an unsigned varint.
    pub fn get_varint(&mut self) -> Result<u64, DecodeError> {
        let (value, used) = varint::read_u64(self.input)?;
        self.input = &self.input[used..];
        Ok(value)
    }

    /// Read a signed (zigzag) varint.
    pub fn get_varint_signed(&mut self) -> Result<i64, DecodeError> {
        Ok(varint::zigzag_decode(self.get_varint()?))
    }

    /// Read a varint length prefix, validating it against the remaining
    /// input so corrupt prefixes cannot trigger huge allocations.
    pub fn get_len(&mut self) -> Result<usize, DecodeError> {
        let declared = self.get_varint()?;
        if declared > self.input.len() as u64 {
            return Err(DecodeError::LengthTooLarge {
                declared,
                remaining: self.input.len(),
            });
        }
        Ok(declared as usize)
    }

    /// Read a varint *element count*, validating against a minimum of one
    /// byte per element.
    pub fn get_count(&mut self) -> Result<usize, DecodeError> {
        // Every element encodes to at least one byte, so a count larger
        // than the remaining byte count is necessarily corrupt.
        self.get_len()
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.get_len()?;
        self.get_raw(len)
    }

    /// Read a little-endian fixed-width u32.
    pub fn get_u32_le(&mut self) -> Result<u32, DecodeError> {
        let raw = self.advance(4)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4-byte slice")))
    }

    /// Read a little-endian fixed-width u64.
    pub fn get_u64_le(&mut self) -> Result<u64, DecodeError> {
        let raw = self.advance(8)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8-byte slice")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_consumes_in_order() {
        let data = [1u8, 2, 3, 4];
        let mut r = Reader::new(&data);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_raw(2).unwrap(), &[2, 3]);
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    fn eof_is_reported_with_counts() {
        let data = [1u8];
        let mut r = Reader::new(&data);
        let err = r.get_raw(3).unwrap_err();
        assert_eq!(
            err,
            DecodeError::UnexpectedEof {
                needed: 3,
                remaining: 1
            }
        );
    }

    #[test]
    fn corrupt_length_prefix_rejected() {
        // Declares a 1000-byte string but provides none.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 1000);
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.get_bytes(),
            Err(DecodeError::LengthTooLarge { declared: 1000, .. })
        ));
    }

    #[test]
    fn fixed_width_round_trip() {
        let mut w = crate::Writer::new();
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u32_le().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(r.is_empty());
    }
}
