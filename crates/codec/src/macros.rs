//! Declarative-macro "derive" for [`Persist`](crate::Persist).
//!
//! O++ got object layout for free from the compiler; plain Rust libraries
//! normally reach for a proc-macro derive.  To stay dependency-free we
//! provide `macro_rules!` equivalents that cover structs and enums with
//! struct/tuple/unit variants.

/// Implement [`Persist`](crate::Persist) for a struct by listing its fields.
///
/// ```
/// use ode_codec::{impl_persist_struct, from_bytes, to_bytes};
///
/// #[derive(Debug, PartialEq)]
/// struct Part {
///     name: String,
///     weight: u32,
/// }
/// impl_persist_struct!(Part { name, weight });
///
/// let p = Part { name: "alu".into(), weight: 7 };
/// let back: Part = from_bytes(&to_bytes(&p)).unwrap();
/// assert_eq!(p, back);
/// ```
#[macro_export]
macro_rules! impl_persist_struct {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Persist for $ty {
            #[allow(unused_variables)]
            fn encode(&self, w: &mut $crate::Writer) {
                $( $crate::Persist::encode(&self.$field, w); )*
            }
            #[allow(unused_variables)]
            fn decode(r: &mut $crate::Reader<'_>) -> ::std::result::Result<Self, $crate::DecodeError> {
                Ok($ty {
                    $( $field: $crate::Persist::decode(r)?, )*
                })
            }
        }
    };
    // Generic structs: impl_persist_struct!(<T> Pair<T> { a, b });
    (<$($gen:ident),+> $ty:ident<$($use_gen:ident),+> { $($field:ident),* $(,)? }) => {
        impl<$($gen: $crate::Persist),+> $crate::Persist for $ty<$($use_gen),+> {
            #[allow(unused_variables)]
            fn encode(&self, w: &mut $crate::Writer) {
                $( $crate::Persist::encode(&self.$field, w); )*
            }
            #[allow(unused_variables)]
            fn decode(r: &mut $crate::Reader<'_>) -> ::std::result::Result<Self, $crate::DecodeError> {
                Ok($ty {
                    $( $field: $crate::Persist::decode(r)?, )*
                })
            }
        }
    };
}

/// Implement [`Persist`](crate::Persist) for an enum.
///
/// Variants are encoded as a varint discriminant (their listing order)
/// followed by their fields.  Struct-like, tuple-like, and unit variants
/// are supported:
///
/// ```
/// use ode_codec::{impl_persist_enum, from_bytes, to_bytes};
///
/// #[derive(Debug, PartialEq)]
/// enum Status {
///     InProgress,
///     Valid { by: String },
///     Frozen(u64),
/// }
/// impl_persist_enum!(Status {
///     InProgress,
///     Valid { by },
///     Frozen(f0),
/// });
///
/// let s = Status::Valid { by: "dk".into() };
/// let back: Status = from_bytes(&to_bytes(&s)).unwrap();
/// assert_eq!(s, back);
/// ```
#[macro_export]
macro_rules! impl_persist_enum {
    ($ty:ident { $( $variant:ident $( { $($field:ident),* $(,)? } )? $( ( $($tfield:ident),* $(,)? ) )? ),* $(,)? }) => {
        impl $crate::Persist for $ty {
            fn encode(&self, w: &mut $crate::Writer) {
                $crate::__persist_enum_encode!(self, w, $ty, 0u64; $( $variant $( { $($field),* } )? $( ( $($tfield),* ) )? ),*);
            }
            fn decode(r: &mut $crate::Reader<'_>) -> ::std::result::Result<Self, $crate::DecodeError> {
                let disc = r.get_varint()?;
                $crate::__persist_enum_decode!(disc, r, $ty, 0u64; $( $variant $( { $($field),* } )? $( ( $($tfield),* ) )? ),*);
                Err($crate::DecodeError::InvalidDiscriminant {
                    type_name: stringify!($ty),
                    discriminant: disc,
                })
            }
        }
    };
}

/// Internal helper for [`impl_persist_enum!`]: encode arm expansion.
#[doc(hidden)]
#[macro_export]
macro_rules! __persist_enum_encode {
    ($self:ident, $w:ident, $ty:ident, $idx:expr;) => {};
    ($self:ident, $w:ident, $ty:ident, $idx:expr; $variant:ident { $($field:ident),* } $(, $($rest:tt)*)?) => {
        if let $ty::$variant { $($field),* } = $self {
            $w.put_varint($idx);
            $( $crate::Persist::encode($field, $w); )*
            return;
        }
        $crate::__persist_enum_encode!($self, $w, $ty, $idx + 1u64; $($($rest)*)?);
    };
    ($self:ident, $w:ident, $ty:ident, $idx:expr; $variant:ident ( $($tfield:ident),* ) $(, $($rest:tt)*)?) => {
        if let $ty::$variant( $($tfield),* ) = $self {
            $w.put_varint($idx);
            $( $crate::Persist::encode($tfield, $w); )*
            return;
        }
        $crate::__persist_enum_encode!($self, $w, $ty, $idx + 1u64; $($($rest)*)?);
    };
    ($self:ident, $w:ident, $ty:ident, $idx:expr; $variant:ident $(, $($rest:tt)*)?) => {
        if let $ty::$variant = $self {
            $w.put_varint($idx);
            return;
        }
        $crate::__persist_enum_encode!($self, $w, $ty, $idx + 1u64; $($($rest)*)?);
    };
}

/// Internal helper for [`impl_persist_enum!`]: decode arm expansion.
#[doc(hidden)]
#[macro_export]
macro_rules! __persist_enum_decode {
    ($disc:ident, $r:ident, $ty:ident, $idx:expr;) => {};
    ($disc:ident, $r:ident, $ty:ident, $idx:expr; $variant:ident { $($field:ident),* } $(, $($rest:tt)*)?) => {
        if $disc == $idx {
            return Ok($ty::$variant {
                $( $field: $crate::Persist::decode($r)?, )*
            });
        }
        $crate::__persist_enum_decode!($disc, $r, $ty, $idx + 1u64; $($($rest)*)?);
    };
    ($disc:ident, $r:ident, $ty:ident, $idx:expr; $variant:ident ( $($tfield:ident),* ) $(, $($rest:tt)*)?) => {
        if $disc == $idx {
            return Ok($ty::$variant(
                $( { let $tfield = $crate::Persist::decode($r)?; $tfield }, )*
            ));
        }
        $crate::__persist_enum_decode!($disc, $r, $ty, $idx + 1u64; $($($rest)*)?);
    };
    ($disc:ident, $r:ident, $ty:ident, $idx:expr; $variant:ident $(, $($rest:tt)*)?) => {
        if $disc == $idx {
            return Ok($ty::$variant);
        }
        $crate::__persist_enum_decode!($disc, $r, $ty, $idx + 1u64; $($($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use crate::{from_bytes, to_bytes, DecodeError};

    #[derive(Debug, PartialEq)]
    struct Inner {
        a: u32,
        b: String,
    }
    impl_persist_struct!(Inner { a, b });

    #[derive(Debug, PartialEq)]
    struct Outer {
        inner: Inner,
        list: Vec<Inner>,
        opt: Option<u64>,
    }
    impl_persist_struct!(Outer { inner, list, opt });

    #[derive(Debug, PartialEq)]
    struct Empty {}
    impl_persist_struct!(Empty {});

    #[derive(Debug, PartialEq)]
    struct Pair<T> {
        a: T,
        b: T,
    }
    impl_persist_struct!(<T> Pair<T> { a, b });

    #[derive(Debug, PartialEq)]
    enum Mixed {
        Unit,
        Tuple(u32, String),
        Struct { x: i64, y: Vec<u8> },
    }
    impl_persist_enum!(Mixed {
        Unit,
        Tuple(t0, t1),
        Struct { x, y },
    });

    #[test]
    fn struct_round_trip() {
        let v = Outer {
            inner: Inner {
                a: 7,
                b: "hi".into(),
            },
            list: vec![Inner {
                a: 1,
                b: "x".into(),
            }],
            opt: Some(9),
        };
        let back: Outer = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn empty_struct_round_trip() {
        let back: Empty = from_bytes(&to_bytes(&Empty {})).unwrap();
        assert_eq!(back, Empty {});
    }

    #[test]
    fn generic_struct_round_trip() {
        let v = Pair {
            a: "l".to_string(),
            b: "r".to_string(),
        };
        let back: Pair<String> = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn enum_variants_round_trip() {
        for v in [
            Mixed::Unit,
            Mixed::Tuple(42, "t".into()),
            Mixed::Struct {
                x: -5,
                y: vec![1, 2],
            },
        ] {
            let back: Mixed = from_bytes(&to_bytes(&v)).unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn enum_discriminants_are_listing_order() {
        assert_eq!(to_bytes(&Mixed::Unit)[0], 0);
        assert_eq!(to_bytes(&Mixed::Tuple(0, String::new()))[0], 1);
        assert_eq!(to_bytes(&Mixed::Struct { x: 0, y: vec![] })[0], 2);
    }

    #[test]
    fn unknown_discriminant_rejected() {
        let err = from_bytes::<Mixed>(&[9]).unwrap_err();
        assert_eq!(
            err,
            DecodeError::InvalidDiscriminant {
                type_name: "Mixed",
                discriminant: 9
            }
        );
    }
}
