//! Stable type identity across program runs.
//!
//! Ode clusters persistent objects by type ("one cluster per type") and an
//! `ObjPtr<T>` is typed.  Rust's `TypeId` is not stable across builds, so
//! persistent type identity is a 64-bit FNV-1a hash of a user-chosen type
//! name, declared via the [`TypeName`] trait.

use crate::{DecodeError, Persist, Reader, Writer};

/// A stable 64-bit identifier for a persistent type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeTag(pub u64);

impl TypeTag {
    /// Compute the tag for a type name. FNV-1a, 64-bit.
    pub const fn from_name(name: &str) -> TypeTag {
        let bytes = name.as_bytes();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
            i += 1;
        }
        TypeTag(hash)
    }

    /// Tag for a [`TypeName`] implementor.
    pub fn of<T: TypeName>() -> TypeTag {
        TypeTag::from_name(T::TYPE_NAME)
    }
}

impl Persist for TypeTag {
    fn encode(&self, w: &mut Writer) {
        w.put_u64_le(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TypeTag(r.get_u64_le()?))
    }
}

/// Declares the stable, persistent name of a type.
///
/// The name — not the Rust path — is hashed into the [`TypeTag`] stored on
/// disk, so renaming the Rust type without changing `TYPE_NAME` keeps old
/// databases readable.
pub trait TypeName {
    /// The stable persistent name. Convention: `"crate/Type"`.
    const TYPE_NAME: &'static str;
}

/// Declare [`TypeName`] for a type.
///
/// ```
/// use ode_codec::{impl_type_name, type_tag::{TypeName, TypeTag}};
/// struct Chip;
/// impl_type_name!(Chip = "dms/Chip");
/// assert_eq!(TypeTag::of::<Chip>(), TypeTag::from_name("dms/Chip"));
/// ```
#[macro_export]
macro_rules! impl_type_name {
    ($ty:ty = $name:expr) => {
        impl $crate::type_tag::TypeName for $ty {
            const TYPE_NAME: &'static str = $name;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vector() {
        // FNV-1a 64 of empty input is the offset basis.
        assert_eq!(TypeTag::from_name("").0, 0xcbf2_9ce4_8422_2325);
        // Known vector: fnv1a_64("a") = 0xaf63dc4c8601ec8c
        assert_eq!(TypeTag::from_name("a").0, 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn distinct_names_distinct_tags() {
        assert_ne!(
            TypeTag::from_name("dms/Chip"),
            TypeTag::from_name("dms/Net")
        );
    }

    #[test]
    fn tag_round_trips() {
        let tag = TypeTag::from_name("x/Y");
        let back: TypeTag = crate::from_bytes(&crate::to_bytes(&tag)).unwrap();
        assert_eq!(tag, back);
    }

    #[test]
    fn const_evaluable() {
        const TAG: TypeTag = TypeTag::from_name("k");
        assert_eq!(TAG, TypeTag::from_name("k"));
    }
}
