//! `Persist` implementations for standard library types.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};
use std::time::Duration;

use crate::{DecodeError, Persist, Reader, Writer};

// ---------------------------------------------------------------------------
// Integers
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Persist for $t {
            fn encode(&self, w: &mut Writer) {
                w.put_varint(u64::from(*self));
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let v = r.get_varint()?;
                <$t>::try_from(v).map_err(|_| DecodeError::Invalid(concat!(
                    "value out of range for ", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Persist for $t {
            fn encode(&self, w: &mut Writer) {
                w.put_varint_signed(i64::from(*self));
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let v = r.get_varint_signed()?;
                <$t>::try_from(v).map_err(|_| DecodeError::Invalid(concat!(
                    "value out of range for ", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Persist for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = r.get_varint()?;
        usize::try_from(v).map_err(|_| DecodeError::Invalid("value out of range for usize"))
    }
}

impl Persist for isize {
    fn encode(&self, w: &mut Writer) {
        w.put_varint_signed(*self as i64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = r.get_varint_signed()?;
        isize::try_from(v).map_err(|_| DecodeError::Invalid("value out of range for isize"))
    }
}

impl Persist for u128 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
        w.put_varint((*self >> 64) as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let lo = r.get_varint()? as u128;
        let hi = r.get_varint()? as u128;
        Ok(lo | (hi << 64))
    }
}

impl Persist for i128 {
    fn encode(&self, w: &mut Writer) {
        (*self as u128).encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(u128::decode(r)? as i128)
    }
}

// ---------------------------------------------------------------------------
// Other scalars
// ---------------------------------------------------------------------------

impl Persist for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::InvalidBool(other)),
        }
    }
}

impl Persist for f32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32_le(self.to_bits());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(f32::from_bits(r.get_u32_le()?))
    }
}

impl Persist for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64_le(self.to_bits());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(r.get_u64_le()?))
    }
}

impl Persist for char {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(u64::from(u32::from(*self)));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let scalar = u32::decode(r)?;
        char::from_u32(scalar).ok_or(DecodeError::InvalidChar(scalar))
    }
}

impl Persist for () {
    fn encode(&self, _w: &mut Writer) {}
    fn decode(_r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

impl Persist for String {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bytes = r.get_bytes()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| DecodeError::InvalidUtf8)
    }
}

impl Persist for Duration {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.as_secs());
        w.put_varint(u64::from(self.subsec_nanos()));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let secs = r.get_varint()?;
        let nanos = u32::decode(r)?;
        if nanos >= 1_000_000_000 {
            return Err(DecodeError::Invalid("Duration nanos >= 1e9"));
        }
        Ok(Duration::new(secs, nanos))
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(DecodeError::InvalidBool(other)),
        }
    }
}

impl<T: Persist> Persist for Box<T> {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = r.get_count()?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = r.get_count()?;
        let mut out = VecDeque::with_capacity(count);
        for _ in 0..count {
            out.push_back(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist, const N: usize> Persist for [T; N] {
    fn encode(&self, w: &mut Writer) {
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::decode(r)?);
        }
        items
            .try_into()
            .map_err(|_| DecodeError::Invalid("array length mismatch"))
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = r.get_count()?;
        let mut out = BTreeMap::new();
        for _ in 0..count {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Persist + Ord> Persist for BTreeSet<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = r.get_count()?;
        let mut out = BTreeSet::new();
        for _ in 0..count {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K, V, S> Persist for HashMap<K, V, S>
where
    K: Persist + Eq + Hash + Ord,
    V: Persist,
    S: BuildHasher + Default,
{
    fn encode(&self, w: &mut Writer) {
        // Sort keys so equal maps always encode identically (needed for
        // content-hash based deduplication in the delta layer).
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.put_varint(entries.len() as u64);
        for (k, v) in entries {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = r.get_count()?;
        let mut out = HashMap::with_capacity_and_hasher(count, S::default());
        for _ in 0..count {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T, S> Persist for HashSet<T, S>
where
    T: Persist + Eq + Hash + Ord,
    S: BuildHasher + Default,
{
    fn encode(&self, w: &mut Writer) {
        let mut entries: Vec<&T> = self.iter().collect();
        entries.sort();
        w.put_varint(entries.len() as u64);
        for item in entries {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = r.get_count()?;
        let mut out = HashSet::with_capacity_and_hasher(count, S::default());
        for _ in 0..count {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Persist),+> Persist for ($($name,)+) {
            fn encode(&self, w: &mut Writer) {
                $(self.$idx.encode(w);)+
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    fn rt<T: Persist + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn scalars_round_trip() {
        rt(0u8);
        rt(255u8);
        rt(u16::MAX);
        rt(u32::MAX);
        rt(u64::MAX);
        rt(i8::MIN);
        rt(i16::MIN);
        rt(i32::MIN);
        rt(i64::MIN);
        rt(usize::MAX);
        rt(isize::MIN);
        rt(u128::MAX);
        rt(i128::MIN);
        rt(true);
        rt(false);
        rt('ß');
        rt('\u{10FFFF}');
        rt(());
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        for v in [0.0f64, -0.0, 1.5, f64::MIN_POSITIVE, f64::INFINITY] {
            let bytes = to_bytes(&v);
            let back: f64 = from_bytes(&bytes).unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
        let nan = f32::NAN;
        let back: f32 = from_bytes(&to_bytes(&nan)).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn strings_round_trip() {
        rt(String::new());
        rt("hello Ode".to_string());
        rt("snowman ☃ and friends 🦀".to_string());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let err = from_bytes::<String>(&w.into_bytes()).unwrap_err();
        assert_eq!(err, DecodeError::InvalidUtf8);
    }

    #[test]
    fn containers_round_trip() {
        rt(Some(42u32));
        rt(Option::<u32>::None);
        rt(Box::new("boxed".to_string()));
        rt(vec![1u64, 2, 3]);
        rt(Vec::<String>::new());
        rt([1u8, 2, 3]);
        rt(VecDeque::from(vec![1i32, -2, 3]));
        rt(BTreeMap::from([
            (1u32, "a".to_string()),
            (2, "b".to_string()),
        ]));
        rt(BTreeSet::from([3u8, 1, 2]));
        rt(HashMap::from([(1u32, 2u32), (3, 4)]));
        rt(HashSet::from([9i64, -8, 7]));
        rt(Duration::new(5, 999_999_999));
    }

    #[test]
    fn hashmap_encoding_is_deterministic() {
        let a: HashMap<u32, u32> = (0..64).map(|i| (i, i * 2)).collect();
        let b: HashMap<u32, u32> = (0..64).rev().map(|i| (i, i * 2)).collect();
        assert_eq!(to_bytes(&a), to_bytes(&b));
    }

    #[test]
    fn tuples_round_trip() {
        rt((1u8,));
        rt((1u8, "x".to_string()));
        rt((1u8, 2u16, 3u32, 4u64, 5i8, 6i16, 7i32, 8i64));
    }

    #[test]
    fn nested_containers() {
        rt(vec![Some(vec![(1u8, "a".to_string())]), None]);
    }

    #[test]
    fn bad_duration_rejected() {
        let mut w = Writer::new();
        w.put_varint(1);
        w.put_varint(1_000_000_000); // nanos out of range
        assert!(from_bytes::<Duration>(&w.into_bytes()).is_err());
    }

    #[test]
    fn range_narrowing_rejected() {
        // Encode a u64 too large for u8.
        let bytes = to_bytes(&300u64);
        assert!(from_bytes::<u8>(&bytes).is_err());
    }
}
