//! # ode-codec — the binary serialization substrate of the Ode reproduction
//!
//! The original Ode system compiled O++ to C++ against an in-house
//! persistence library that defined its own binary object layout.  This
//! crate plays that role: it defines the [`Persist`] trait, a compact
//! varint-based binary encoding, and helper macros for deriving `Persist`
//! on user structs and enums without procedural macros.
//!
//! Design goals, in order:
//!
//! 1. **Round-trip fidelity** — `decode(encode(x)) == x` for every
//!    implementation, enforced by property tests.
//! 2. **Compactness** — integers are LEB128 varints (signed values are
//!    zigzag-coded), collections are length-prefixed, no per-field tags.
//! 3. **Self-containment** — no serde format crate is required; the
//!    encoding is fully specified by this crate.
//!
//! The encoding is *not* self-describing: readers must know the type they
//! are decoding, which mirrors the paper's model where an object id is
//! typed (`ObjPtr<T>`).  Type identity across program runs is provided by
//! [`type_tag::TypeTag`], a stable hash of a user-chosen type name.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod impls;
#[macro_use]
mod macros;
mod reader;
pub mod type_tag;
pub mod varint;
mod writer;

pub use error::DecodeError;
pub use reader::Reader;
pub use type_tag::TypeTag;
pub use writer::Writer;

/// A value that can be stored in, and reconstructed from, the Ode
/// persistent store.
///
/// This is the Rust analogue of "a class compiled against the Ode
/// persistence library".  Implementations must guarantee that
/// [`Persist::decode`] reverses [`Persist::encode`] exactly.
///
/// Use [`impl_persist_struct!`](crate::impl_persist_struct) /
/// [`impl_persist_enum!`](crate::impl_persist_enum) to derive
/// implementations for your own types.
pub trait Persist: Sized {
    /// Serialize `self` onto the writer.
    fn encode(&self, w: &mut Writer);

    /// Deserialize a value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Encode a value to a fresh byte vector.
pub fn to_bytes<T: Persist>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decode a value from a byte slice, requiring that every byte be consumed.
///
/// Trailing garbage is an error: the store hands each object exactly its
/// own record, so leftover bytes always indicate corruption or a type
/// mismatch.
pub fn from_bytes<T: Persist>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(DecodeError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(value)
}

/// Decode a value from the front of a byte slice, returning the value and
/// the number of bytes consumed.
pub fn from_bytes_prefix<T: Persist>(bytes: &[u8]) -> Result<(T, usize), DecodeError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    let consumed = bytes.len() - r.remaining();
    Ok((value, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_to_bytes() {
        let v: Vec<u32> = vec![1, 2, 3, u32::MAX];
        let bytes = to_bytes(&v);
        let back: Vec<u32> = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u8);
        bytes.push(0xFF);
        let err = from_bytes::<u8>(&bytes).unwrap_err();
        assert!(matches!(err, DecodeError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn prefix_reports_consumed() {
        let mut bytes = to_bytes(&300u32);
        let len = bytes.len();
        bytes.extend_from_slice(&[1, 2, 3]);
        let (v, consumed) = from_bytes_prefix::<u32>(&bytes).unwrap();
        assert_eq!(v, 300);
        assert_eq!(consumed, len);
    }
}
