//! Property tests: every `Persist` implementation round-trips exactly and
//! the decoder never panics on arbitrary input.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ode_codec::{from_bytes, impl_persist_enum, impl_persist_struct, to_bytes, Persist};
use proptest::prelude::*;

fn check_rt<T: Persist + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = to_bytes(v);
    let back: T = from_bytes(&bytes).expect("round-trip decode");
    assert_eq!(*v, back);
}

proptest! {
    #[test]
    fn rt_u64(v: u64) { check_rt(&v); }

    #[test]
    fn rt_i64(v: i64) { check_rt(&v); }

    #[test]
    fn rt_u128(v: u128) { check_rt(&v); }

    #[test]
    fn rt_f64_bits(v: u64) {
        let f = f64::from_bits(v);
        let back: f64 = from_bytes(&to_bytes(&f)).unwrap();
        prop_assert_eq!(f.to_bits(), back.to_bits());
    }

    #[test]
    fn rt_string(v in ".*") { check_rt(&v.to_string()); }

    #[test]
    fn rt_vec_u32(v: Vec<u32>) { check_rt(&v); }

    #[test]
    fn rt_option_string(v: Option<String>) { check_rt(&v); }

    #[test]
    fn rt_btreemap(v: BTreeMap<u32, String>) { check_rt(&v); }

    #[test]
    fn rt_btreeset(v: BTreeSet<i32>) { check_rt(&v); }

    #[test]
    fn rt_hashmap(v: HashMap<u16, u16>) { check_rt(&v); }

    #[test]
    fn rt_nested(v: Vec<(u8, Option<Vec<String>>)>) { check_rt(&v); }

    /// The decoder must return an error — never panic, never allocate
    /// unboundedly — on arbitrary garbage input.
    #[test]
    fn decoder_never_panics(bytes: Vec<u8>) {
        let _ = from_bytes::<Vec<String>>(&bytes);
        let _ = from_bytes::<BTreeMap<u64, Vec<u8>>>(&bytes);
        let _ = from_bytes::<(u64, String, Option<i32>)>(&bytes);
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Design {
    name: String,
    cells: Vec<u32>,
    meta: BTreeMap<String, String>,
    state: State,
}
impl_persist_struct!(Design {
    name,
    cells,
    meta,
    state
});

#[derive(Debug, Clone, PartialEq)]
enum State {
    Draft,
    Review { by: String },
    Released(u64, bool),
}
impl_persist_enum!(State {
    Draft,
    Review { by },
    Released(t0, t1),
});

fn arb_state() -> impl Strategy<Value = State> {
    prop_oneof![
        Just(State::Draft),
        ".*".prop_map(|by| State::Review { by }),
        (any::<u64>(), any::<bool>()).prop_map(|(a, b)| State::Released(a, b)),
    ]
}

fn arb_design() -> impl Strategy<Value = Design> {
    (
        ".*",
        proptest::collection::vec(any::<u32>(), 0..32),
        proptest::collection::btree_map(".*", ".*", 0..8),
        arb_state(),
    )
        .prop_map(|(name, cells, meta, state)| Design {
            name,
            cells,
            meta,
            state,
        })
}

proptest! {
    #[test]
    fn rt_macro_derived(design in arb_design()) {
        check_rt(&design);
    }
}
