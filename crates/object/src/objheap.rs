//! Typed record storage: `Persist` values over the byte heap.
//!
//! An [`ObjectHeap`] is the storage home of every object version in a
//! database.  Like [`crate::table::KvTable`] it self-roots in a store
//! root slot, creating its underlying heap lazily.

use ode_codec::Persist;
use ode_storage::heap::{Heap, RecordId};
use ode_storage::{PageId, PageRead, PageWrite, Result};

/// A typed record store rooted in a store root slot.
#[derive(Debug, Clone, Copy)]
pub struct ObjectHeap {
    slot: usize,
}

impl ObjectHeap {
    /// Bind to root `slot`; the heap is created on first write.
    pub fn new(slot: usize) -> ObjectHeap {
        ObjectHeap { slot }
    }

    fn heap(&self, tx: &mut impl PageRead) -> Result<Option<Heap>> {
        let dir = tx.root(self.slot)?;
        Ok(if dir == 0 {
            None
        } else {
            Some(Heap::open(PageId(dir)))
        })
    }

    fn heap_mut(&self, tx: &mut impl PageWrite) -> Result<Heap> {
        match self.heap(tx)? {
            Some(h) => Ok(h),
            None => {
                let h = Heap::create(tx)?;
                tx.set_root(self.slot, h.dir.0)?;
                Ok(h)
            }
        }
    }

    /// Store a value, returning its record id.
    pub fn store<T: Persist>(&self, tx: &mut impl PageWrite, value: &T) -> Result<RecordId> {
        let bytes = ode_codec::to_bytes(value);
        let heap = self.heap_mut(tx)?;
        heap.insert(tx, &bytes)
    }

    /// Load a value by record id.
    pub fn load<T: Persist>(&self, tx: &mut impl PageRead, rid: RecordId) -> Result<T> {
        let heap = self
            .heap(tx)?
            .ok_or(ode_storage::StorageError::RecordNotFound {
                page: rid.page,
                slot: rid.slot,
            })?;
        let bytes = heap.get(tx, rid)?;
        Ok(ode_codec::from_bytes(&bytes)?)
    }

    /// Load the raw encoded bytes of a record (used by the delta layer,
    /// which diffs encodings rather than values).
    pub fn load_bytes(&self, tx: &mut impl PageRead, rid: RecordId) -> Result<Vec<u8>> {
        let heap = self
            .heap(tx)?
            .ok_or(ode_storage::StorageError::RecordNotFound {
                page: rid.page,
                slot: rid.slot,
            })?;
        heap.get(tx, rid)
    }

    /// Store raw bytes directly (callers that manage their own encoding).
    pub fn insert_raw(&self, tx: &mut impl PageWrite, bytes: &[u8]) -> Result<RecordId> {
        let heap = self.heap_mut(tx)?;
        heap.insert(tx, bytes)
    }

    /// Replace a record with raw bytes; the record id changes.
    pub fn replace_raw(
        &self,
        tx: &mut impl PageWrite,
        rid: RecordId,
        bytes: &[u8],
    ) -> Result<RecordId> {
        let heap = self.heap_mut(tx)?;
        heap.replace(tx, rid, bytes)
    }

    /// Replace a record with a new value; the record id changes.
    pub fn replace<T: Persist>(
        &self,
        tx: &mut impl PageWrite,
        rid: RecordId,
        value: &T,
    ) -> Result<RecordId> {
        let bytes = ode_codec::to_bytes(value);
        let heap = self.heap_mut(tx)?;
        heap.replace(tx, rid, &bytes)
    }

    /// Delete a record. Returns whether it existed.
    pub fn delete(&self, tx: &mut impl PageWrite, rid: RecordId) -> Result<bool> {
        let heap = match self.heap(tx)? {
            Some(h) => h,
            None => return Ok(false),
        };
        heap.delete(tx, rid)
    }

    /// Number of live records.
    pub fn len(&self, tx: &mut impl PageRead) -> Result<u64> {
        match self.heap(tx)? {
            Some(h) => h.len(tx),
            None => Ok(0),
        }
    }

    /// Whether no records exist.
    pub fn is_empty(&self, tx: &mut impl PageRead) -> Result<bool> {
        Ok(self.len(tx)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_codec::impl_persist_struct;
    use ode_storage::{Store, StoreOptions};

    #[derive(Debug, Clone, PartialEq)]
    struct Part {
        name: String,
        qty: u32,
        tags: Vec<String>,
    }
    impl_persist_struct!(Part { name, qty, tags });

    fn temp_store(name: &str) -> (std::path::PathBuf, Store) {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-objheap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let mut wal = p.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        let store = Store::create(&p, StoreOptions::default()).unwrap();
        (p, store)
    }

    fn cleanup(p: &std::path::Path) {
        let _ = std::fs::remove_file(p);
        let mut wal = p.to_path_buf().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }

    fn sample() -> Part {
        Part {
            name: "alu".into(),
            qty: 4,
            tags: vec!["cpu".into(), "v1".into()],
        }
    }

    #[test]
    fn store_load_round_trip() {
        let (path, store) = temp_store("rt");
        let oh = ObjectHeap::new(6);
        let mut tx = store.begin();
        let rid = oh.store(&mut tx, &sample()).unwrap();
        let back: Part = oh.load(&mut tx, rid).unwrap();
        assert_eq!(back, sample());
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn replace_and_delete() {
        let (path, store) = temp_store("replace");
        let oh = ObjectHeap::new(6);
        let mut tx = store.begin();
        let rid = oh.store(&mut tx, &sample()).unwrap();
        let mut v2 = sample();
        v2.qty = 9;
        let rid2 = oh.replace(&mut tx, rid, &v2).unwrap();
        assert_eq!(oh.load::<Part>(&mut tx, rid2).unwrap().qty, 9);
        assert!(oh.delete(&mut tx, rid2).unwrap());
        assert!(!oh.delete(&mut tx, rid2).unwrap());
        assert!(oh.is_empty(&mut tx).unwrap());
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn type_confusion_is_detected() {
        let (path, store) = temp_store("confusion");
        let oh = ObjectHeap::new(6);
        let mut tx = store.begin();
        let rid = oh.store(&mut tx, &"just a string".to_string()).unwrap();
        // Decoding as Part must error, not panic or succeed silently.
        assert!(oh.load::<Part>(&mut tx, rid).is_err());
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn load_from_unbound_heap_errors() {
        let (path, store) = temp_store("unbound");
        let oh = ObjectHeap::new(6);
        let mut r = store.read();
        let rid = RecordId {
            page: PageId(3),
            slot: 0,
        };
        assert!(oh.load::<Part>(&mut r, rid).is_err());
        drop(r);
        drop(store);
        cleanup(&path);
    }
}
