//! Self-rooting `u64 → u64` tables.
//!
//! A [`KvTable`] wraps a storage B+-tree and keeps its root page id in a
//! store root slot, transparently re-persisting the root when splits (or
//! root collapses) move it.  The object and version tables of the version
//! layer are `KvTable`s.

use ode_storage::btree::BTree;
use ode_storage::{PageId, PageRead, PageWrite, Result};

/// A persistent `u64 → u64` map rooted in a store root slot.
#[derive(Debug, Clone, Copy)]
pub struct KvTable {
    slot: usize,
}

impl KvTable {
    /// Bind a table to root `slot`. The underlying tree is created lazily
    /// on first mutation.
    pub fn new(slot: usize) -> KvTable {
        KvTable { slot }
    }

    fn tree(&self, tx: &mut impl PageRead) -> Result<Option<BTree>> {
        let root = tx.root(self.slot)?;
        Ok(if root == 0 {
            None
        } else {
            Some(BTree::open(PageId(root)))
        })
    }

    fn tree_mut(&self, tx: &mut impl PageWrite) -> Result<BTree> {
        match self.tree(tx)? {
            Some(t) => Ok(t),
            None => {
                let t = BTree::create(tx)?;
                tx.set_root(self.slot, t.root.0)?;
                Ok(t)
            }
        }
    }

    fn save_root(&self, tx: &mut impl PageWrite, tree: &BTree) -> Result<()> {
        if tx.root(self.slot)? != tree.root.0 {
            tx.set_root(self.slot, tree.root.0)?;
        }
        Ok(())
    }

    /// Look up a key.
    pub fn get(&self, tx: &mut impl PageRead, key: u64) -> Result<Option<u64>> {
        match self.tree(tx)? {
            Some(t) => t.get(tx, key),
            None => Ok(None),
        }
    }

    /// Insert or overwrite; returns the previous value.
    pub fn put(&self, tx: &mut impl PageWrite, key: u64, value: u64) -> Result<Option<u64>> {
        let mut t = self.tree_mut(tx)?;
        let old = t.insert(tx, key, value)?;
        self.save_root(tx, &t)?;
        Ok(old)
    }

    /// Remove a key; returns its value.
    pub fn remove(&self, tx: &mut impl PageWrite, key: u64) -> Result<Option<u64>> {
        let mut t = match self.tree(tx)? {
            Some(t) => t,
            None => return Ok(None),
        };
        let old = t.remove(tx, key)?;
        self.save_root(tx, &t)?;
        Ok(old)
    }

    /// Entries with keys `>= start`, up to `limit`.
    pub fn scan_from(
        &self,
        tx: &mut impl PageRead,
        start: u64,
        limit: usize,
    ) -> Result<Vec<(u64, u64)>> {
        match self.tree(tx)? {
            Some(t) => t.scan_from(tx, start, limit),
            None => Ok(Vec::new()),
        }
    }

    /// All entries in key order.
    pub fn scan_all(&self, tx: &mut impl PageRead) -> Result<Vec<(u64, u64)>> {
        self.scan_from(tx, 0, usize::MAX)
    }

    /// Number of entries.
    pub fn len(&self, tx: &mut impl PageRead) -> Result<usize> {
        Ok(self.scan_all(tx)?.len())
    }

    /// Whether the table is empty.
    pub fn is_empty(&self, tx: &mut impl PageRead) -> Result<bool> {
        Ok(self.len(tx)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_storage::{Store, StoreOptions};

    fn temp_store(name: &str) -> (std::path::PathBuf, Store) {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-table-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let mut wal = p.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        let store = Store::create(&p, StoreOptions::default()).unwrap();
        (p, store)
    }

    fn cleanup(p: &std::path::Path) {
        let _ = std::fs::remove_file(p);
        let mut wal = p.to_path_buf().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }

    #[test]
    fn lazy_creation_and_basic_ops() {
        let (path, store) = temp_store("basic");
        let table = KvTable::new(4);
        let mut tx = store.begin();
        assert_eq!(table.get(&mut tx, 1).unwrap(), None);
        assert!(table.is_empty(&mut tx).unwrap());
        assert_eq!(table.put(&mut tx, 1, 10).unwrap(), None);
        assert_eq!(table.put(&mut tx, 1, 11).unwrap(), Some(10));
        assert_eq!(table.get(&mut tx, 1).unwrap(), Some(11));
        assert_eq!(table.remove(&mut tx, 1).unwrap(), Some(11));
        assert_eq!(table.remove(&mut tx, 1).unwrap(), None);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn root_slot_tracks_splits_across_reopen() {
        let (path, store) = temp_store("splits");
        let table = KvTable::new(4);
        {
            let mut tx = store.begin();
            // Enough entries to split the root at full capacity.
            for k in 0..2000u64 {
                table.put(&mut tx, k, k * 2).unwrap();
            }
            tx.commit().unwrap();
        }
        drop(store);
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        for k in (0..2000u64).step_by(97) {
            assert_eq!(table.get(&mut r, k).unwrap(), Some(k * 2));
        }
        assert_eq!(table.len(&mut r).unwrap(), 2000);
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn two_tables_in_distinct_slots_are_independent() {
        let (path, store) = temp_store("two");
        let a = KvTable::new(4);
        let b = KvTable::new(5);
        let mut tx = store.begin();
        a.put(&mut tx, 1, 100).unwrap();
        b.put(&mut tx, 1, 200).unwrap();
        assert_eq!(a.get(&mut tx, 1).unwrap(), Some(100));
        assert_eq!(b.get(&mut tx, 1).unwrap(), Some(200));
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }
}
