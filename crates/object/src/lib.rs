//! # ode-object — object identity and typed record storage
//!
//! The paper builds on Ode's persistence model: "Each persistent object
//! is identified by a unique object identity" (citing Khoshafian &
//! Copeland).  This crate provides that identity layer over
//! [`ode_storage`]:
//!
//! * [`id`] — persistent id allocation ([`Oid`], [`Vid`], and the generic
//!   [`id::IdAllocator`]);
//! * [`table`] — [`table::KvTable`], a `u64 → u64` table whose B+-tree
//!   root self-persists in a store root slot;
//! * [`objheap`] — [`objheap::ObjectHeap`], typed `Persist` record
//!   storage over the byte heap;
//! * [`extent`] — per-type extents (Ode clusters objects by type; extents
//!   are what `for x in Type` iterates in O++ queries).
//!
//! The version layer (`ode-version`) composes these
//! into the paper's object/version tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extent;
pub mod id;
pub mod objheap;
pub mod table;

pub use extent::Extents;
pub use id::{IdAllocator, Oid, Vid};
pub use objheap::ObjectHeap;
pub use table::KvTable;
