//! Per-type extents.
//!
//! Ode clusters persistent objects by type; O++ queries (`for x in Type`)
//! iterate a type's *extent*.  An [`Extents`] directory maps a stable
//! [`TypeTag`] to a per-type membership tree (member id → 1), letting the
//! core layer enumerate all objects of a type in id order.

use ode_codec::TypeTag;
use ode_storage::btree::BTree;
use ode_storage::{PageId, PageRead, PageWrite, Result};

use crate::table::KvTable;

/// Directory of per-type extents, rooted in a store root slot.
#[derive(Debug, Clone, Copy)]
pub struct Extents {
    directory: KvTable,
}

impl Extents {
    /// Bind the extent directory to root `slot`.
    pub fn new(slot: usize) -> Extents {
        Extents {
            directory: KvTable::new(slot),
        }
    }

    fn member_tree(&self, tx: &mut impl PageRead, tag: TypeTag) -> Result<Option<BTree>> {
        Ok(self
            .directory
            .get(tx, tag.0)?
            .map(|root| BTree::open(PageId(root))))
    }

    /// Add `id` to the extent of `tag`.
    pub fn add(&self, tx: &mut impl PageWrite, tag: TypeTag, id: u64) -> Result<()> {
        let mut tree = match self.member_tree(tx, tag)? {
            Some(t) => t,
            None => {
                let t = BTree::create(tx)?;
                self.directory.put(tx, tag.0, t.root.0)?;
                t
            }
        };
        let before = tree.root;
        tree.insert(tx, id, 1)?;
        if tree.root != before {
            self.directory.put(tx, tag.0, tree.root.0)?;
        }
        Ok(())
    }

    /// Remove `id` from the extent of `tag`. Returns whether it was a
    /// member.
    pub fn remove(&self, tx: &mut impl PageWrite, tag: TypeTag, id: u64) -> Result<bool> {
        let mut tree = match self.member_tree(tx, tag)? {
            Some(t) => t,
            None => return Ok(false),
        };
        let before = tree.root;
        let removed = tree.remove(tx, id)?.is_some();
        if tree.root != before {
            self.directory.put(tx, tag.0, tree.root.0)?;
        }
        Ok(removed)
    }

    /// Whether `id` belongs to the extent of `tag`.
    pub fn contains(&self, tx: &mut impl PageRead, tag: TypeTag, id: u64) -> Result<bool> {
        match self.member_tree(tx, tag)? {
            Some(t) => Ok(t.get(tx, id)?.is_some()),
            None => Ok(false),
        }
    }

    /// All member ids of `tag`, ascending.
    pub fn members(&self, tx: &mut impl PageRead, tag: TypeTag) -> Result<Vec<u64>> {
        match self.member_tree(tx, tag)? {
            Some(t) => Ok(t.scan_all(tx)?.into_iter().map(|(k, _)| k).collect()),
            None => Ok(Vec::new()),
        }
    }

    /// Member ids of `tag` starting at `from`, up to `limit` (paged
    /// iteration for large extents).
    pub fn members_from(
        &self,
        tx: &mut impl PageRead,
        tag: TypeTag,
        from: u64,
        limit: usize,
    ) -> Result<Vec<u64>> {
        match self.member_tree(tx, tag)? {
            Some(t) => Ok(t
                .scan_from(tx, from, limit)?
                .into_iter()
                .map(|(k, _)| k)
                .collect()),
            None => Ok(Vec::new()),
        }
    }

    /// Number of members in the extent of `tag`.
    pub fn count(&self, tx: &mut impl PageRead, tag: TypeTag) -> Result<usize> {
        Ok(self.members(tx, tag)?.len())
    }

    /// All type tags that have (or ever had) an extent.
    pub fn tags(&self, tx: &mut impl PageRead) -> Result<Vec<TypeTag>> {
        Ok(self
            .directory
            .scan_all(tx)?
            .into_iter()
            .map(|(k, _)| TypeTag(k))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_storage::{Store, StoreOptions};

    fn temp_store(name: &str) -> (std::path::PathBuf, Store) {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-extent-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let mut wal = p.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        let store = Store::create(&p, StoreOptions::default()).unwrap();
        (p, store)
    }

    fn cleanup(p: &std::path::Path) {
        let _ = std::fs::remove_file(p);
        let mut wal = p.to_path_buf().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }

    const CHIP: TypeTag = TypeTag::from_name("test/Chip");
    const NET: TypeTag = TypeTag::from_name("test/Net");

    #[test]
    fn membership_basics() {
        let (path, store) = temp_store("basics");
        let ext = Extents::new(7);
        let mut tx = store.begin();
        ext.add(&mut tx, CHIP, 10).unwrap();
        ext.add(&mut tx, CHIP, 5).unwrap();
        ext.add(&mut tx, NET, 10).unwrap();
        assert!(ext.contains(&mut tx, CHIP, 10).unwrap());
        assert!(!ext.contains(&mut tx, NET, 5).unwrap());
        assert_eq!(ext.members(&mut tx, CHIP).unwrap(), vec![5, 10]);
        assert_eq!(ext.count(&mut tx, NET).unwrap(), 1);
        assert!(ext.remove(&mut tx, CHIP, 10).unwrap());
        assert!(!ext.remove(&mut tx, CHIP, 10).unwrap());
        assert_eq!(ext.members(&mut tx, CHIP).unwrap(), vec![5]);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn large_extent_with_root_movement() {
        let (path, store) = temp_store("large");
        let ext = Extents::new(7);
        {
            let mut tx = store.begin();
            for id in 0..3000u64 {
                ext.add(&mut tx, CHIP, id).unwrap();
            }
            tx.commit().unwrap();
        }
        drop(store);
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        assert_eq!(ext.count(&mut r, CHIP).unwrap(), 3000);
        let page = ext.members_from(&mut r, CHIP, 1000, 5).unwrap();
        assert_eq!(page, vec![1000, 1001, 1002, 1003, 1004]);
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn tags_enumeration() {
        let (path, store) = temp_store("tags");
        let ext = Extents::new(7);
        let mut tx = store.begin();
        ext.add(&mut tx, CHIP, 1).unwrap();
        ext.add(&mut tx, NET, 2).unwrap();
        let mut tags = ext.tags(&mut tx).unwrap();
        tags.sort();
        let mut expected = vec![CHIP, NET];
        expected.sort();
        assert_eq!(tags, expected);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn empty_extent_queries() {
        let (path, store) = temp_store("empty");
        let ext = Extents::new(7);
        let mut r = store.read();
        assert!(ext.members(&mut r, CHIP).unwrap().is_empty());
        assert_eq!(ext.count(&mut r, CHIP).unwrap(), 0);
        assert!(!ext.contains(&mut r, CHIP, 1).unwrap());
        drop(r);
        drop(store);
        cleanup(&path);
    }
}
