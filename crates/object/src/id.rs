//! Persistent identifiers.
//!
//! The paper distinguishes *object ids* (logically denoting the latest
//! version of an object) from *version ids* (denoting one specific
//! version).  Both are allocated here from persistent counters held in
//! store root slots, so identity survives program invocations — the core
//! of Ode's "objects automatically persist" model.

use std::fmt;

use ode_codec::{DecodeError, Persist, Reader, Writer};
use ode_storage::{PageRead, PageWrite, Result};

/// A persistent object identity.
///
/// An `Oid` never changes for the lifetime of its object and — following
/// the paper — *logically refers to the latest version* of the object.
/// Ids start at 1; 0 is reserved as a null sentinel in stored links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub u64);

/// A persistent version identity, denoting one specific version of one
/// object. Ids start at 1; 0 is the null sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vid(pub u64);

impl Oid {
    /// The null sentinel (no object).
    pub const NULL: Oid = Oid(0);

    /// Whether this is the null sentinel.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl Vid {
    /// The null sentinel (no version).
    pub const NULL: Vid = Vid(0);

    /// Whether this is the null sentinel.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oid:{}", self.0)
    }
}

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vid:{}", self.0)
    }
}

impl Persist for Oid {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, DecodeError> {
        Ok(Oid(r.get_varint()?))
    }
}

impl Persist for Vid {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, DecodeError> {
        Ok(Vid(r.get_varint()?))
    }
}

/// A persistent monotone counter stored in a store root slot.
///
/// The slot holds the *last issued* id, so a fresh store (all-zero
/// slots) starts issuing from 1, leaving 0 as the null sentinel.
#[derive(Debug, Clone, Copy)]
pub struct IdAllocator {
    slot: usize,
}

impl IdAllocator {
    /// Allocator backed by root `slot`.
    pub fn new(slot: usize) -> IdAllocator {
        IdAllocator { slot }
    }

    /// Issue the next id.
    pub fn next(&self, tx: &mut impl PageWrite) -> Result<u64> {
        let last = tx.root(self.slot)?;
        let id = last + 1;
        tx.set_root(self.slot, id)?;
        Ok(id)
    }

    /// The most recently issued id (0 when none issued yet).
    pub fn last(&self, tx: &mut impl PageRead) -> Result<u64> {
        tx.root(self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_storage::{Store, StoreOptions};

    fn temp_store(name: &str) -> (std::path::PathBuf, Store) {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-id-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let mut wal = p.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        let store = Store::create(&p, StoreOptions::default()).unwrap();
        (p, store)
    }

    fn cleanup(p: &std::path::Path) {
        let _ = std::fs::remove_file(p);
        let mut wal = p.to_path_buf().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }

    #[test]
    fn ids_start_at_one_and_are_dense() {
        let (path, store) = temp_store("dense");
        let alloc = IdAllocator::new(5);
        let mut tx = store.begin();
        assert_eq!(alloc.next(&mut tx).unwrap(), 1);
        assert_eq!(alloc.next(&mut tx).unwrap(), 2);
        assert_eq!(alloc.next(&mut tx).unwrap(), 3);
        assert_eq!(alloc.last(&mut tx).unwrap(), 3);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn counter_survives_reopen() {
        let (path, store) = temp_store("survive");
        let alloc = IdAllocator::new(5);
        {
            let mut tx = store.begin();
            for _ in 0..10 {
                alloc.next(&mut tx).unwrap();
            }
            tx.commit().unwrap();
        }
        drop(store);
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut tx = store.begin();
        assert_eq!(alloc.next(&mut tx).unwrap(), 11);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn aborted_allocations_roll_back() {
        let (path, store) = temp_store("abort");
        let alloc = IdAllocator::new(5);
        {
            let mut tx = store.begin();
            assert_eq!(alloc.next(&mut tx).unwrap(), 1);
            tx.commit().unwrap();
        }
        {
            let mut tx = store.begin();
            assert_eq!(alloc.next(&mut tx).unwrap(), 2);
            // aborted
        }
        let mut tx = store.begin();
        // Id 2 is reissued because the allocating transaction aborted.
        assert_eq!(alloc.next(&mut tx).unwrap(), 2);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn null_sentinels() {
        assert!(Oid::NULL.is_null());
        assert!(Vid::NULL.is_null());
        assert!(!Oid(1).is_null());
        assert!(!Vid(1).is_null());
    }

    #[test]
    fn ids_round_trip_codec() {
        let o = Oid(123_456);
        let v = Vid(987_654);
        assert_eq!(
            ode_codec::from_bytes::<Oid>(&ode_codec::to_bytes(&o)).unwrap(),
            o
        );
        assert_eq!(
            ode_codec::from_bytes::<Vid>(&ode_codec::to_bytes(&v)).unwrap(),
            v
        );
    }
}
