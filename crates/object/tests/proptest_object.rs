//! Model-based property tests for the object layer: extents against a
//! `BTreeMap<tag, BTreeSet<id>>` model and `KvTable` against a
//! `BTreeMap<u64, u64>` model across commit/abort boundaries.

use std::collections::{BTreeMap, BTreeSet};

use ode_codec::TypeTag;
use ode_object::{Extents, KvTable};
use ode_storage::{Store, StoreOptions};
use proptest::prelude::*;

fn temp_store(tag: u64) -> (std::path::PathBuf, Store) {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ode-objprop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&p);
    let mut wal = p.clone().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    let store = Store::create(&p, StoreOptions::default()).unwrap();
    (p, store)
}

fn cleanup(p: &std::path::Path) {
    let _ = std::fs::remove_file(p);
    let mut wal = p.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

const TAGS: [TypeTag; 3] = [
    TypeTag::from_name("prop/A"),
    TypeTag::from_name("prop/B"),
    TypeTag::from_name("prop/C"),
];

#[derive(Debug, Clone)]
enum ExtOp {
    Add(u8, u64),
    Remove(u8, u64),
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn extents_match_model(
        ops in proptest::collection::vec(
            prop_oneof![
                3 => (0u8..3, 0u64..100).prop_map(|(t, id)| ExtOp::Add(t, id)),
                1 => (0u8..3, 0u64..100).prop_map(|(t, id)| ExtOp::Remove(t, id)),
            ],
            1..150,
        ),
        seed: u64,
    ) {
        let (path, store) = temp_store(seed);
        let ext = Extents::new(7);
        let mut model: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        let mut tx = store.begin();
        for op in ops {
            match op {
                ExtOp::Add(t, id) => {
                    let tag = TAGS[t as usize];
                    ext.add(&mut tx, tag, id).unwrap();
                    model.entry(tag.0).or_default().insert(id);
                }
                ExtOp::Remove(t, id) => {
                    let tag = TAGS[t as usize];
                    let removed = ext.remove(&mut tx, tag, id).unwrap();
                    let expected = model
                        .get_mut(&tag.0)
                        .map(|s| s.remove(&id))
                        .unwrap_or(false);
                    prop_assert_eq!(removed, expected);
                }
            }
        }
        for tag in TAGS {
            let members = ext.members(&mut tx, tag).unwrap();
            let expected: Vec<u64> = model
                .get(&tag.0)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            prop_assert_eq!(members, expected);
        }
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    /// KvTable state equals the model after arbitrary puts/removes with
    /// interleaved commits and aborts (aborted work must vanish).
    #[test]
    fn kvtable_respects_transaction_boundaries(
        batches in proptest::collection::vec(
            (
                proptest::collection::vec((0u64..64, any::<u64>(), any::<bool>()), 1..20),
                any::<bool>(), // commit?
            ),
            1..8,
        ),
        seed: u64,
    ) {
        let (path, store) = temp_store(seed.wrapping_add(1));
        let table = KvTable::new(4);
        let mut committed: BTreeMap<u64, u64> = BTreeMap::new();
        for (ops, commit) in batches {
            let mut working = committed.clone();
            let mut tx = store.begin();
            for (k, v, is_put) in ops {
                if is_put {
                    let old = table.put(&mut tx, k, v).unwrap();
                    prop_assert_eq!(old, working.insert(k, v));
                } else {
                    let old = table.remove(&mut tx, k).unwrap();
                    prop_assert_eq!(old, working.remove(&k));
                }
            }
            if commit {
                tx.commit().unwrap();
                committed = working;
            } else {
                drop(tx); // abort
            }
            // Durable state must equal the committed model.
            let mut r = store.read();
            let actual = table.scan_all(&mut r).unwrap();
            let expected: Vec<(u64, u64)> =
                committed.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(actual, expected);
        }
        drop(store);
        cleanup(&path);
    }
}
