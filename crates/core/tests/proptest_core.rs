//! Property test over the *public* API: arbitrary interleavings of
//! pnew / newversion / newversion_from / update / pdelete_version /
//! pdelete / commit / abort must always agree with an in-memory model,
//! including transaction rollback.

use std::collections::HashMap;

use ode::{Database, DatabaseOptions, ObjPtr, VersionPtr};
use ode_codec::{impl_persist_struct, impl_type_name};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Item {
    value: u64,
}
impl_persist_struct!(Item { value });
impl_type_name!(Item = "core-prop/Item");

#[derive(Debug, Clone)]
enum Op {
    Pnew(u64),
    NewVersion(u8),
    NewVersionFrom(u8, u8),
    Update(u8, u64),
    UpdateVersion(u8, u8, u64),
    PdeleteVersion(u8, u8),
    Pdelete(u8),
    /// Commit the running transaction and start a new one.
    Commit,
    /// Abort the running transaction and start a new one.
    Abort,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => any::<u64>().prop_map(Op::Pnew),
        3 => any::<u8>().prop_map(Op::NewVersion),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(o, v)| Op::NewVersionFrom(o, v)),
        3 => (any::<u8>(), any::<u64>()).prop_map(|(o, x)| Op::Update(o, x)),
        2 => (any::<u8>(), any::<u8>(), any::<u64>()).prop_map(|(o, v, x)| Op::UpdateVersion(o, v, x)),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(o, v)| Op::PdeleteVersion(o, v)),
        1 => any::<u8>().prop_map(Op::Pdelete),
        2 => Just(Op::Commit),
        1 => Just(Op::Abort),
    ]
}

/// Model of one object: versions in temporal order with their values.
#[derive(Debug, Clone, Default)]
struct ModelObject {
    versions: Vec<(VersionPtr<Item>, u64)>,
}

#[derive(Debug, Clone, Default)]
struct Model {
    objects: HashMap<ObjPtr<Item>, ModelObject>,
    order: Vec<ObjPtr<Item>>,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn public_api_matches_model(ops in proptest::collection::vec(arb_op(), 1..80), seed: u64) {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "ode-coreprop-{seed}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut wal = path.clone().into_os_string();
        wal.push(".wal");
        let wal = std::path::PathBuf::from(wal);
        let _ = std::fs::remove_file(&wal);

        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        // `committed` is the durable truth; `model` tracks the running txn.
        let mut committed = Model::default();
        let mut model = committed.clone();
        let mut txn = db.begin();

        for op in ops {
            match op {
                Op::Pnew(value) => {
                    let ptr = txn.pnew(&Item { value }).unwrap();
                    let v0 = txn.current_version(&ptr).unwrap();
                    model.objects.insert(ptr, ModelObject { versions: vec![(v0, value)] });
                    model.order.push(ptr);
                }
                Op::NewVersion(o) => {
                    if model.order.is_empty() { continue; }
                    let ptr = model.order[o as usize % model.order.len()];
                    let vp = txn.newversion(&ptr).unwrap();
                    let m = model.objects.get_mut(&ptr).unwrap();
                    let tip_value = m.versions.last().unwrap().1;
                    m.versions.push((vp, tip_value));
                }
                Op::NewVersionFrom(o, v) => {
                    if model.order.is_empty() { continue; }
                    let ptr = model.order[o as usize % model.order.len()];
                    let m = model.objects.get_mut(&ptr).unwrap();
                    let (base, base_value) = m.versions[v as usize % m.versions.len()];
                    let vp = txn.newversion_from(&base).unwrap();
                    m.versions.push((vp, base_value));
                }
                Op::Update(o, value) => {
                    if model.order.is_empty() { continue; }
                    let ptr = model.order[o as usize % model.order.len()];
                    txn.update(&ptr, |item| item.value = value).unwrap();
                    model.objects.get_mut(&ptr).unwrap().versions.last_mut().unwrap().1 = value;
                }
                Op::UpdateVersion(o, v, value) => {
                    if model.order.is_empty() { continue; }
                    let ptr = model.order[o as usize % model.order.len()];
                    let m = model.objects.get_mut(&ptr).unwrap();
                    let idx = v as usize % m.versions.len();
                    let vp = m.versions[idx].0;
                    txn.update_version(&vp, |item| item.value = value).unwrap();
                    m.versions[idx].1 = value;
                }
                Op::PdeleteVersion(o, v) => {
                    if model.order.is_empty() { continue; }
                    let ptr = model.order[o as usize % model.order.len()];
                    let m = model.objects.get_mut(&ptr).unwrap();
                    if m.versions.len() <= 1 { continue; }
                    let idx = v as usize % m.versions.len();
                    let vp = m.versions[idx].0;
                    txn.pdelete_version(vp).unwrap();
                    m.versions.remove(idx);
                }
                Op::Pdelete(o) => {
                    if model.order.is_empty() { continue; }
                    let idx = o as usize % model.order.len();
                    let ptr = model.order.remove(idx);
                    txn.pdelete(ptr).unwrap();
                    model.objects.remove(&ptr);
                }
                Op::Commit => {
                    txn.commit().unwrap();
                    committed = model.clone();
                    txn = db.begin();
                }
                Op::Abort => {
                    drop(txn);
                    model = committed.clone();
                    txn = db.begin();
                }
            }

            // In-transaction agreement.
            let mut live: Vec<ObjPtr<Item>> = model.order.clone();
            live.sort();
            let mut actual = txn.objects::<Item>().unwrap();
            actual.sort();
            prop_assert_eq!(actual, live);
            for (ptr, m) in &model.objects {
                let history = txn.version_history(ptr).unwrap();
                let expected: Vec<VersionPtr<Item>> =
                    m.versions.iter().map(|(vp, _)| *vp).collect();
                prop_assert_eq!(history, expected);
                for (vp, value) in &m.versions {
                    prop_assert_eq!(txn.deref_v(vp).unwrap().value, *value);
                }
                prop_assert_eq!(
                    txn.deref(ptr).unwrap().value,
                    m.versions.last().unwrap().1
                );
                txn.check_object(ptr).unwrap();
            }
        }

        // Final durability: drop the open txn, reopen, committed state holds.
        drop(txn);
        drop(db);
        let db = Database::open(&path, DatabaseOptions::default()).unwrap();
        let mut snap = db.snapshot();
        for m in committed.objects.values() {
            for (vp, value) in &m.versions {
                prop_assert_eq!(snap.deref_v(vp).unwrap().value, *value);
            }
        }
        prop_assert_eq!(
            snap.objects::<Item>().unwrap().len(),
            committed.objects.len()
        );
        drop(snap);
        drop(db);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);
    }
}
