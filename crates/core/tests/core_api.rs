//! End-to-end behavioural tests of the O++ surface: pointers, versioning
//! operations, persistence, triggers, and extent queries.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ode::{Database, Error, Event, ObjPtr, VersionPtr};
use ode_codec::{impl_persist_struct, impl_type_name};

#[derive(Debug, Clone, PartialEq)]
struct Part {
    name: String,
    weight: u32,
}
impl_persist_struct!(Part { name, weight });
impl_type_name!(Part = "core-test/Part");

#[derive(Debug, Clone, PartialEq)]
struct Person {
    name: String,
    address: String,
}
impl_persist_struct!(Person { name, address });
impl_type_name!(Person = "core-test/Person");

/// An address book holds *generic* references so it always sees current
/// addresses — the paper's §4.3 example for dynamic binding.
#[derive(Debug, Clone, PartialEq)]
struct AddressBook {
    people: Vec<ObjPtr<Person>>,
}
impl_persist_struct!(AddressBook { people });
impl_type_name!(AddressBook = "core-test/AddressBook");

/// `Database` is shared across server worker threads behind an `Arc`,
/// and `Store` underpins that sharing — both must stay `Send + Sync`.
/// Compile-time only: losing either bound breaks this test's build.
#[test]
fn database_and_store_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<ode_storage::Store>();
    assert_send_sync::<std::sync::Arc<Database>>();
}

fn part(name: &str, weight: u32) -> Part {
    Part {
        name: name.into(),
        weight,
    }
}

#[test]
fn pnew_and_deref() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let p = txn.pnew(&part("alu", 7)).unwrap();
    let guard = txn.deref(&p).unwrap();
    assert_eq!(guard.name, "alu");
    assert_eq!(guard.weight, 7);
    assert_eq!(txn.version_count(&p).unwrap(), 1);
    txn.commit().unwrap();
}

#[test]
fn generic_vs_specific_binding() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let p = txn.pnew(&part("chip", 1)).unwrap();
    let v0 = txn.current_version(&p).unwrap();
    txn.newversion(&p).unwrap();
    txn.update(&p, |c| c.weight = 2).unwrap();

    // Generic reference: late binding — sees the new latest.
    assert_eq!(txn.deref(&p).unwrap().weight, 2);
    // Specific reference: early binding — still the old state.
    assert_eq!(txn.deref_v(&v0).unwrap().weight, 1);
    // ORef reports which version it bound to.
    let bound = txn.deref(&p).unwrap().version();
    assert_ne!(bound, v0);
    assert_eq!(bound, txn.current_version(&p).unwrap());
    txn.commit().unwrap();
}

#[test]
fn address_book_dynamic_binding_scenario() {
    // Paper §4.3: "an address-book object that keeps track of current
    // addresses requires references to the latest versions of person
    // objects to access their latest addresses".
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let alice = txn
        .pnew(&Person {
            name: "alice".into(),
            address: "1 Elm St".into(),
        })
        .unwrap();
    let book = txn
        .pnew(&AddressBook {
            people: vec![alice],
        })
        .unwrap();

    // Alice moves: version her and update the new latest version.
    txn.newversion(&alice).unwrap();
    txn.update(&alice, |p| p.address = "9 Oak Ave".into())
        .unwrap();

    // The book still holds the same generic reference, and reading
    // through it yields the *current* address.
    let people = txn.deref(&book).unwrap().people.clone();
    assert_eq!(txn.deref(&people[0]).unwrap().address, "9 Oak Ave");

    // Historical query: the old address is still reachable through the
    // version history.
    let history = txn.version_history(&alice).unwrap();
    assert_eq!(history.len(), 2);
    assert_eq!(txn.deref_v(&history[0]).unwrap().address, "1 Elm St");
    txn.commit().unwrap();
}

#[test]
fn persistence_across_reopen() {
    let mut db = ode::testutil::tempdb();
    let (p, v0) = {
        let mut txn = db.begin();
        let p = txn.pnew(&part("alu", 7)).unwrap();
        let v0 = txn.current_version(&p).unwrap();
        txn.newversion(&p).unwrap();
        txn.update(&p, |c| c.weight = 8).unwrap();
        txn.commit().unwrap();
        (p, v0)
    };
    // Objects "automatically persist across program invocations".
    db.reopen();
    let mut snap = db.snapshot();
    assert_eq!(snap.deref(&p).unwrap().weight, 8);
    assert_eq!(snap.deref_v(&v0).unwrap().weight, 7);
    assert_eq!(snap.version_count(&p).unwrap(), 2);
}

#[test]
fn aborted_transaction_leaves_no_trace() {
    let db = ode::testutil::tempdb();
    let p = {
        let mut txn = db.begin();
        let p = txn.pnew(&part("keep", 1)).unwrap();
        txn.commit().unwrap();
        p
    };
    {
        let mut txn = db.begin();
        txn.update(&p, |c| c.weight = 99).unwrap();
        let _doomed = txn.pnew(&part("doomed", 0)).unwrap();
        // Dropped uncommitted.
    }
    let mut snap = db.snapshot();
    assert_eq!(snap.deref(&p).unwrap().weight, 1);
    assert_eq!(snap.objects::<Part>().unwrap(), vec![p]);
}

#[test]
fn pdelete_object_and_version_semantics() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let p = txn.pnew(&part("x", 0)).unwrap();
    let v0 = txn.current_version(&p).unwrap();
    let v1 = txn.newversion(&p).unwrap();
    let v2 = txn.newversion(&p).unwrap();

    // pdelete on a version id removes exactly that version.
    txn.pdelete_version(v1).unwrap();
    assert!(!txn.version_exists(&v1).unwrap());
    assert_eq!(txn.version_history(&p).unwrap(), vec![v0, v2]);
    // v2 is re-parented onto v0.
    assert_eq!(txn.dprevious(&v2).unwrap(), Some(v0));

    // Deleting the last versions via the object id removes everything.
    txn.pdelete(p).unwrap();
    assert!(!txn.exists(&p).unwrap());
    assert!(!txn.version_exists(&v0).unwrap());
    assert!(!txn.version_exists(&v2).unwrap());
    txn.commit().unwrap();
}

#[test]
fn last_version_guard() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let p = txn.pnew(&part("only", 0)).unwrap();
    let v0 = txn.current_version(&p).unwrap();
    assert!(matches!(
        txn.pdelete_version(v0),
        Err(Error::LastVersion(_))
    ));
    txn.commit().unwrap();
}

#[test]
fn traversal_operators() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let p = txn.pnew(&part("root", 0)).unwrap();
    let v0 = txn.current_version(&p).unwrap();
    let v1 = txn.newversion_from(&v0).unwrap();
    let v2 = txn.newversion_from(&v0).unwrap(); // alternative
    let v3 = txn.newversion_from(&v1).unwrap();

    assert_eq!(txn.dprevious(&v3).unwrap(), Some(v1));
    assert_eq!(txn.dnext(&v0).unwrap(), vec![v1, v2]);
    assert_eq!(txn.tprevious(&v3).unwrap(), Some(v2));
    assert_eq!(txn.tnext(&v0).unwrap(), Some(v1));
    assert_eq!(txn.derivation_path(&v3).unwrap(), vec![v3, v1, v0]);
    assert_eq!(txn.derivation_leaves(&p).unwrap(), vec![v2, v3]);
    assert_eq!(txn.version_history(&p).unwrap(), vec![v0, v1, v2, v3]);
    txn.check_object(&p).unwrap();
    txn.commit().unwrap();
}

#[test]
fn extent_queries_by_type() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let p1 = txn.pnew(&part("a", 1)).unwrap();
    let p2 = txn.pnew(&part("b", 2)).unwrap();
    let _q = txn
        .pnew(&Person {
            name: "c".into(),
            address: "d".into(),
        })
        .unwrap();
    assert_eq!(txn.objects::<Part>().unwrap(), vec![p1, p2]);
    assert_eq!(txn.objects::<Person>().unwrap().len(), 1);
    // Versioning an object does not add extent entries.
    txn.newversion(&p1).unwrap();
    assert_eq!(txn.objects::<Part>().unwrap(), vec![p1, p2]);
    txn.commit().unwrap();
}

#[test]
fn triggers_fire_after_commit_only() {
    let db = ode::testutil::tempdb();
    let p = {
        let mut txn = db.begin();
        let p = txn.pnew(&part("watched", 0)).unwrap();
        txn.commit().unwrap();
        p
    };
    let updates = Arc::new(AtomicUsize::new(0));
    let u = Arc::clone(&updates);
    db.on_object(p, move |ev| {
        if matches!(ev, Event::Updated { .. }) {
            u.fetch_add(1, Ordering::SeqCst);
        }
    });

    {
        let mut txn = db.begin();
        txn.update(&p, |c| c.weight = 1).unwrap();
        assert_eq!(updates.load(Ordering::SeqCst), 0, "not before commit");
        txn.commit().unwrap();
    }
    assert_eq!(updates.load(Ordering::SeqCst), 1);

    {
        // Aborted work fires nothing.
        let mut txn = db.begin();
        txn.update(&p, |c| c.weight = 2).unwrap();
    }
    assert_eq!(updates.load(Ordering::SeqCst), 1);
}

#[test]
fn type_triggers_and_removal() {
    let db = ode::testutil::tempdb();
    let created = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&created);
    let id = db.on_type::<Part>(move |ev| {
        if matches!(ev, Event::Created { .. }) {
            c.fetch_add(1, Ordering::SeqCst);
        }
    });
    {
        let mut txn = db.begin();
        txn.pnew(&part("a", 1)).unwrap();
        txn.pnew(&part("b", 2)).unwrap();
        txn.commit().unwrap();
    }
    assert_eq!(created.load(Ordering::SeqCst), 2);
    assert!(db.remove_trigger(id));
    {
        let mut txn = db.begin();
        txn.pnew(&part("c", 3)).unwrap();
        txn.commit().unwrap();
    }
    assert_eq!(created.load(Ordering::SeqCst), 2);
}

#[test]
fn type_mismatch_via_forged_pointer() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let p = txn.pnew(&part("real", 1)).unwrap();
    // Forge a Person pointer at the Part's oid.
    let forged: ObjPtr<Person> = ObjPtr::from_oid(p.oid());
    assert!(matches!(
        txn.deref(&forged),
        Err(Error::TypeMismatch { .. })
    ));
    let v = txn.current_version(&p).unwrap();
    let forged_v: VersionPtr<Person> = VersionPtr::from_vid(v.vid());
    assert!(matches!(
        txn.deref_v(&forged_v),
        Err(Error::TypeMismatch { .. })
    ));
    txn.commit().unwrap();
}

#[test]
fn update_returns_written_version() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let p = txn.pnew(&part("x", 1)).unwrap();
    let v = txn.update(&p, |c| c.weight = 5).unwrap();
    assert_eq!(v, txn.current_version(&p).unwrap());
    assert_eq!(txn.deref_v(&v).unwrap().weight, 5);
    // put replaces wholesale.
    txn.put(&p, &part("y", 9)).unwrap();
    assert_eq!(txn.deref(&p).unwrap().name, "y");
    // update_version targets a pinned version.
    txn.update_version(&v, |c| c.weight = 77).unwrap();
    assert_eq!(txn.deref_v(&v).unwrap().weight, 77);
    txn.commit().unwrap();
}

#[test]
fn derive_with_versions_and_edits_atomically() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let p = txn.pnew(&part("base", 1)).unwrap();
    let v0 = txn.current_version(&p).unwrap();
    // Revision with its edit in one call.
    let v1 = txn.derive_with(&p, |c| c.weight = 2).unwrap();
    assert_eq!(txn.deref_v(&v0).unwrap().weight, 1);
    assert_eq!(txn.deref_v(&v1).unwrap().weight, 2);
    assert_eq!(txn.deref(&p).unwrap().weight, 2);
    // Alternative branched from v0 with its own edit.
    let v2 = txn
        .derive_from_with(&v0, |c| c.name = "variant".into())
        .unwrap();
    assert_eq!(txn.deref_v(&v2).unwrap().name, "variant");
    assert_eq!(txn.deref_v(&v2).unwrap().weight, 1, "copied from v0");
    assert_eq!(txn.dnext(&v0).unwrap(), vec![v1, v2]);
    txn.check_object(&p).unwrap();
    txn.commit().unwrap();
}

#[test]
fn snapshot_is_read_only_view() {
    let db = ode::testutil::tempdb();
    let p = {
        let mut txn = db.begin();
        let p = txn.pnew(&part("s", 3)).unwrap();
        txn.commit().unwrap();
        p
    };
    let mut snap = db.snapshot();
    assert_eq!(snap.deref(&p).unwrap().weight, 3);
    assert_eq!(snap.objects::<Part>().unwrap(), vec![p]);
    assert_eq!(snap.version_count(&p).unwrap(), 1);
}

#[test]
fn many_objects_many_versions_stress() {
    let db = ode::testutil::tempdb();
    let mut ptrs = Vec::new();
    {
        let mut txn = db.begin();
        for i in 0..200u32 {
            let p = txn.pnew(&part(&format!("part-{i}"), i)).unwrap();
            for _ in 0..(i % 5) {
                txn.newversion(&p).unwrap();
            }
            ptrs.push(p);
        }
        txn.commit().unwrap();
    }
    let mut snap = db.snapshot();
    assert_eq!(snap.objects::<Part>().unwrap().len(), 200);
    for (i, p) in ptrs.iter().enumerate() {
        assert_eq!(snap.version_count(p).unwrap(), (i as u64 % 5) + 1);
        assert_eq!(snap.deref(p).unwrap().weight, i as u32);
        snap.check_object(p).unwrap();
    }
}

#[test]
fn pending_events_accumulate_in_order() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let p = txn.pnew(&part("e", 0)).unwrap();
    txn.newversion(&p).unwrap();
    txn.update(&p, |c| c.weight = 1).unwrap();
    let kinds: Vec<&str> = txn
        .pending_events()
        .iter()
        .map(|e| match e {
            Event::Created { .. } => "created",
            Event::NewVersion { .. } => "newversion",
            Event::Updated { .. } => "updated",
            Event::VersionDeleted { .. } => "vdel",
            Event::ObjectDeleted { .. } => "odel",
            Event::Merged { .. } => "merged",
        })
        .collect();
    assert_eq!(kinds, vec!["created", "newversion", "updated"]);
    txn.commit().unwrap();
}
