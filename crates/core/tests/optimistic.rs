//! Optimistic concurrency at the O++ surface.
//!
//! `Database::begin_optimistic` hands out transactions that validate at
//! commit instead of excluding each other up front; a loser gets a
//! write-conflict error and `Database::transact` re-executes its
//! closure against fresh reads. These tests force conflicts
//! deterministically (an exclusive transaction commits an overlapping
//! update between the optimistic transaction's reads and its commit)
//! and check the retry loop's convergence, its attempt bound, the
//! `commit_once` escape hatch, and a genuinely contended multi-threaded
//! counter.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use ode::{Database, DatabaseOptions, ObjPtr, RetryPolicy};
use ode_codec::{impl_persist_struct, impl_type_name};

#[derive(Debug, Clone, PartialEq)]
struct Counter {
    value: u64,
}
impl_persist_struct!(Counter { value });
impl_type_name!(Counter = "occ-test/Counter");

/// Hot retries: deterministic tests have no reason to sleep.
fn hot(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    }
}

fn counter_db() -> (ode::testutil::TempDb, ObjPtr<Counter>) {
    let db = ode::testutil::tempdb_with(DatabaseOptions::no_sync());
    let ptr = {
        let mut txn = db.begin();
        let ptr = txn.pnew(&Counter { value: 0 }).unwrap();
        txn.commit().unwrap();
        ptr
    };
    (db, ptr)
}

/// Commit an overlapping update through an exclusive transaction —
/// from the optimistic transaction's point of view, a concurrent
/// writer won the race for the counter's page.
fn interfere(db: &Database, ptr: &ObjPtr<Counter>) {
    let mut ex = db.begin();
    ex.update(ptr, |c| c.value += 100).unwrap();
    ex.commit().unwrap();
}

/// `transact` re-executes the closure after each forced conflict and
/// converges once the interference stops; the retry and conflict
/// counters record exactly what happened.
#[test]
fn transact_converges_after_forced_conflicts() {
    let (db, ptr) = counter_db();
    let s0 = db.storage_stats();
    let attempts = AtomicU32::new(0);

    let seen = db
        .transact(hot(8), |txn| {
            let n = attempts.fetch_add(1, Ordering::Relaxed);
            let v = txn.deref(&ptr)?.value;
            if n < 2 {
                interfere(&db, &ptr);
            }
            txn.update(&ptr, |c| c.value = v + 1)?;
            Ok(v)
        })
        .unwrap();

    // Two attempts lost to interference (+100 each), the third won.
    assert_eq!(attempts.load(Ordering::Relaxed), 3);
    assert_eq!(
        seen, 200,
        "the winning attempt read both interfering updates"
    );
    let mut txn = db.begin();
    assert_eq!(txn.deref(&ptr).unwrap().value, 201);
    drop(txn);

    let s1 = db.storage_stats();
    assert_eq!(s1.write_retries - s0.write_retries, 2);
    assert_eq!(s1.write_conflicts - s0.write_conflicts, 2);
    // Aborted attempts never count as committed writes: setup aside,
    // only the two interfering commits and the winner landed.
    assert_eq!(s1.write_txs - s0.write_txs, 3);
}

/// With interference on every attempt, `transact` gives up after
/// exactly `max_attempts` executions and surfaces the conflict.
#[test]
fn transact_stops_at_the_attempt_bound() {
    let (db, ptr) = counter_db();
    let s0 = db.storage_stats();
    let attempts = AtomicU32::new(0);

    let err = db
        .transact(hot(3), |txn| {
            attempts.fetch_add(1, Ordering::Relaxed);
            let v = txn.deref(&ptr)?.value;
            interfere(&db, &ptr);
            txn.update(&ptr, |c| c.value = v + 1)
        })
        .unwrap_err();

    assert!(
        err.is_write_conflict(),
        "expected a write conflict, got {err}"
    );
    assert_eq!(attempts.load(Ordering::Relaxed), 3);
    let s1 = db.storage_stats();
    assert_eq!(
        s1.write_retries - s0.write_retries,
        2,
        "retries, not attempts"
    );
    assert_eq!(s1.write_conflicts - s0.write_conflicts, 3);
    // Only the interference committed.
    let mut txn = db.begin();
    assert_eq!(txn.deref(&ptr).unwrap().value, 300);
}

/// `commit_once` is the no-retry escape hatch: the conflict comes back
/// to the caller instead of re-running anything.
#[test]
fn commit_once_surfaces_the_conflict() {
    let (db, ptr) = counter_db();

    let mut txn = db.begin_optimistic();
    assert!(txn.is_optimistic());
    let v = txn.deref(&ptr).unwrap().value;
    interfere(&db, &ptr);
    let err = (move || -> ode::Result<()> {
        txn.update(&ptr, |c| c.value = v + 1)?;
        txn.commit_once()
    })()
    .unwrap_err();
    assert!(
        err.is_write_conflict(),
        "expected a write conflict, got {err}"
    );

    // The aborted transaction left no trace.
    let mut txn = db.begin();
    assert_eq!(txn.deref(&ptr).unwrap().value, 100);
}

/// Four threads hammer one counter object through `transact`; every
/// increment must land exactly once (the classic lost-update check, at
/// the object layer rather than the page layer).
#[test]
fn contended_counter_converges_across_threads() {
    const THREADS: u64 = 4;
    const INCREMENTS: u64 = 15;
    let (db, ptr) = counter_db();
    let s0 = db.storage_stats();

    let policy = RetryPolicy {
        max_attempts: 1000,
        backoff: Duration::from_micros(50),
        max_backoff: Duration::from_millis(1),
    };
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let db = db.db();
            scope.spawn(move || {
                for _ in 0..INCREMENTS {
                    db.transact(policy, |txn| txn.update(&ptr, |c| c.value += 1))
                        .unwrap();
                }
            });
        }
    });

    let mut txn = db.begin();
    assert_eq!(txn.deref(&ptr).unwrap().value, THREADS * INCREMENTS);
    drop(txn);
    let s1 = db.storage_stats();
    assert_eq!(s1.write_txs - s0.write_txs, THREADS * INCREMENTS);
    // Every failed attempt was retried (all transacts succeeded), so
    // conflicts and retries must agree exactly.
    assert_eq!(
        s1.write_conflicts - s0.write_conflicts,
        s1.write_retries - s0.write_retries
    );
}
