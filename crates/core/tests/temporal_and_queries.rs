//! Temporal ("as-of") queries, extent selections, DOT export, and
//! multi-threaded access through the core API.

use std::sync::Arc;

use ode::{Database, DatabaseOptions};
use ode_codec::{impl_persist_struct, impl_type_name};

#[derive(Debug, Clone, PartialEq)]
struct Account {
    owner: String,
    balance: i64,
}
impl_persist_struct!(Account { owner, balance });
impl_type_name!(Account = "temporal-test/Account");

struct TempDb {
    path: std::path::PathBuf,
}

impl TempDb {
    fn new(name: &str) -> TempDb {
        let mut path = std::env::temp_dir();
        path.push(format!("ode-temporal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = path.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        TempDb { path }
    }
    fn create(&self) -> Database {
        Database::create(&self.path, DatabaseOptions::default()).unwrap()
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        let mut wal = self.path.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }
}

#[test]
fn as_of_queries_recover_past_states() {
    // The paper's historical-database motivation: accounting systems
    // "must access the past states of the database".
    let tmp = TempDb::new("asof");
    let db = tmp.create();
    let mut txn = db.begin();
    let acct = txn
        .pnew(&Account {
            owner: "acme".into(),
            balance: 100,
        })
        .unwrap();

    // A timeline of balances, capturing a stamp between changes.
    let t0 = txn.now_stamp().unwrap();
    txn.newversion(&acct).unwrap();
    txn.update(&acct, |a| a.balance = 250).unwrap();
    let t1 = txn.now_stamp().unwrap();
    txn.newversion(&acct).unwrap();
    txn.update(&acct, |a| a.balance = -40).unwrap();
    let t2 = txn.now_stamp().unwrap();

    let at = |txn: &mut ode::Txn<'_>, stamp: u64| {
        let v = txn.version_as_of(&acct, stamp).unwrap().unwrap();
        txn.deref_v(&v).unwrap().balance
    };
    assert_eq!(at(&mut txn, t0), 100);
    assert_eq!(at(&mut txn, t1), 250);
    assert_eq!(at(&mut txn, t2), -40);
    // A stamp before the account existed yields nothing.
    assert_eq!(txn.version_as_of(&acct, 0).unwrap(), None);
    // Stamps are strictly increasing along the history.
    let history = txn.version_history(&acct).unwrap();
    let stamps: Vec<u64> = history
        .iter()
        .map(|v| txn.created_stamp(v).unwrap())
        .collect();
    assert!(stamps.windows(2).all(|w| w[0] < w[1]));
    txn.commit().unwrap();
}

#[test]
fn select_filters_latest_states() {
    let tmp = TempDb::new("select");
    let db = tmp.create();
    let mut txn = db.begin();
    for (owner, balance) in [("a", 10), ("b", -5), ("c", 99), ("d", -1)] {
        txn.pnew(&Account {
            owner: owner.into(),
            balance,
        })
        .unwrap();
    }
    assert_eq!(txn.count::<Account>().unwrap(), 4);
    let overdrawn = txn.select::<Account>(|a| a.balance < 0).unwrap();
    let names: Vec<&str> = overdrawn.iter().map(|(_, a)| a.owner.as_str()).collect();
    assert_eq!(names, vec!["b", "d"]);
    // Selection sees latest versions: fix b's balance and re-query.
    let b = overdrawn[0].0;
    txn.newversion(&b).unwrap();
    txn.update(&b, |a| a.balance = 1).unwrap();
    assert_eq!(txn.select::<Account>(|a| a.balance < 0).unwrap().len(), 1);
    txn.commit().unwrap();
}

#[test]
fn export_dot_matches_paper_figure_shape() {
    let tmp = TempDb::new("dot");
    let db = tmp.create();
    let mut txn = db.begin();
    let p = txn
        .pnew(&Account {
            owner: "x".into(),
            balance: 0,
        })
        .unwrap();
    let v0 = txn.current_version(&p).unwrap();
    let v1 = txn.newversion(&p).unwrap();
    let v2 = txn.newversion_from(&v0).unwrap();
    let dot = txn.export_dot(&p).unwrap();
    assert!(dot.contains("digraph"));
    assert!(dot.contains(&format!("v{} -> v{} [style=solid]", v1.vid().0, v0.vid().0)));
    assert!(dot.contains(&format!("v{} -> v{} [style=solid]", v2.vid().0, v0.vid().0)));
    assert!(dot.contains("doublecircle")); // the latest version
    txn.commit().unwrap();
}

#[test]
fn database_is_shareable_across_threads() {
    let tmp = TempDb::new("threads");
    let db = Arc::new(tmp.create());
    let acct = {
        let mut txn = db.begin();
        let p = txn
            .pnew(&Account {
                owner: "shared".into(),
                balance: 0,
            })
            .unwrap();
        txn.commit().unwrap();
        p
    };

    // Writers increment through versions; readers watch history grow.
    let mut handles = Vec::new();
    for t in 0..4 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..25 {
                if t % 2 == 0 {
                    let mut txn = db.begin();
                    txn.newversion(&acct).unwrap();
                    txn.update(&acct, |a| a.balance += 1).unwrap();
                    txn.commit().unwrap();
                } else {
                    let mut snap = db.snapshot();
                    let state = snap.deref(&acct).unwrap();
                    assert!(state.balance >= 0);
                    let count = snap.version_count(&acct).unwrap();
                    assert!(count >= 1);
                    let _ = i;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut snap = db.snapshot();
    assert_eq!(snap.deref(&acct).unwrap().balance, 50);
    assert_eq!(snap.version_count(&acct).unwrap(), 51);
    snap.check_object(&acct).unwrap();
}

#[test]
fn paged_extent_iteration() {
    let tmp = TempDb::new("paged");
    let db = tmp.create();
    let mut txn = db.begin();
    let mut all = Vec::new();
    for i in 0..57 {
        all.push(
            txn.pnew(&Account {
                owner: format!("o{i}"),
                balance: i,
            })
            .unwrap(),
        );
    }
    // Walk the extent in pages of 10.
    let mut seen = Vec::new();
    let mut cursor = ode::Oid::NULL;
    loop {
        let page = txn.objects_page::<Account>(cursor, 10).unwrap();
        if page.is_empty() {
            break;
        }
        cursor = ode::Oid(page.last().unwrap().oid().0 + 1);
        seen.extend(page);
    }
    assert_eq!(seen, all);
    // A limit larger than the extent returns everything at once.
    assert_eq!(
        txn.objects_page::<Account>(ode::Oid::NULL, 1000)
            .unwrap()
            .len(),
        57
    );
    txn.commit().unwrap();
}

#[test]
fn as_of_survives_version_deletion() {
    let tmp = TempDb::new("asofdel");
    let db = tmp.create();
    let mut txn = db.begin();
    let acct = txn
        .pnew(&Account {
            owner: "z".into(),
            balance: 1,
        })
        .unwrap();
    txn.newversion(&acct).unwrap();
    txn.update(&acct, |a| a.balance = 2).unwrap();
    let t_mid = txn.now_stamp().unwrap();
    let v_mid = txn.version_as_of(&acct, t_mid).unwrap().unwrap();
    txn.newversion(&acct).unwrap();
    txn.update(&acct, |a| a.balance = 3).unwrap();

    // Delete the middle version; as-of now resolves to its predecessor.
    txn.pdelete_version(v_mid).unwrap();
    let v = txn.version_as_of(&acct, t_mid).unwrap().unwrap();
    assert_eq!(txn.deref_v(&v).unwrap().balance, 1);
    txn.commit().unwrap();
}
