//! Three-way merge through the O++ surface: `Txn::merge`, ancestor
//! walks and LCA on snapshots, conflict policies, and the `Merged`
//! trigger event.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ode::{Error, Event, MergePolicy, VersionPtr, Vid};
use ode_codec::{impl_persist_struct, impl_type_name};

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    text: String,
}
impl_persist_struct!(Doc { text });
impl_type_name!(Doc = "merge-test/Doc");

fn doc(text: &str) -> Doc {
    Doc { text: text.into() }
}

/// base → two forks with same-length, non-overlapping edits. Equal
/// lengths keep the encoded length prefix identical, so the byte merge
/// sees exactly the two text edits.
fn fork_disjoint(txn: &mut ode::Txn<'_>) -> (VersionPtr<Doc>, VersionPtr<Doc>, VersionPtr<Doc>) {
    let p = txn
        .pnew(&doc("the quick brown fox jumps over the lazy dog"))
        .unwrap();
    let base = txn.current_version(&p).unwrap();
    let a = txn
        .derive_from_with(&base, |d| d.text = d.text.replace("quick", "QUICK"))
        .unwrap();
    let b = txn
        .derive_from_with(&base, |d| d.text = d.text.replace("lazy", "LAZY"))
        .unwrap();
    (base, a, b)
}

#[test]
fn merge_combines_disjoint_edits_and_records_both_parents() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let (base, a, b) = fork_disjoint(&mut txn);

    let report = txn.merge(&a, &b, MergePolicy::Fail).unwrap();
    assert!(report.conflicts.is_empty());
    let m = report.version.expect("clean merge checks in");
    assert_eq!(
        txn.deref_v(&m).unwrap().text,
        "the QUICK brown fox jumps over the LAZY dog"
    );
    // Both parents are on record; the merge base was the fork point.
    assert_eq!(txn.parents_raw(m.vid()).unwrap(), vec![a.vid(), b.vid()]);
    assert_eq!(txn.common_ancestor(&a, &b).unwrap(), Some(base));
    txn.commit().unwrap();
}

#[test]
fn merge_conflicts_respect_the_policy() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let p = txn.pnew(&doc("alpha beta gamma")).unwrap();
    let base = txn.current_version(&p).unwrap();
    let a = txn
        .derive_from_with(&base, |d| d.text = d.text.replace("beta", "BETA"))
        .unwrap();
    let b = txn
        .derive_from_with(&base, |d| d.text = d.text.replace("beta", "zeta"))
        .unwrap();

    // Fail: nothing checked in, the overlap is reported.
    let report = txn.merge(&a, &b, MergePolicy::Fail).unwrap();
    assert!(report.version.is_none());
    assert!(!report.conflicts.is_empty());

    // Ours: a version appears carrying side a's bytes in the overlap.
    let report = txn.merge(&a, &b, MergePolicy::Ours).unwrap();
    let m = report.version.expect("ours resolves");
    assert!(!report.conflicts.is_empty());
    assert_eq!(txn.deref_v(&m).unwrap().text, "alpha BETA gamma");
    txn.commit().unwrap();
}

#[test]
fn merge_rejects_mismatched_inputs() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let p = txn.pnew(&doc("x")).unwrap();
    let q = txn.pnew(&doc("y")).unwrap();
    let vp = txn.current_version(&p).unwrap();
    let vq = txn.current_version(&q).unwrap();
    assert!(matches!(
        txn.merge(&vp, &vp, MergePolicy::Fail),
        Err(Error::MergeMismatch { .. })
    ));
    assert!(matches!(
        txn.merge(&vp, &vq, MergePolicy::Fail),
        Err(Error::MergeMismatch { .. })
    ));
    txn.commit().unwrap();
}

#[test]
fn snapshot_ancestors_walk_both_parents_and_survive_splices() {
    let db = ode::testutil::tempdb();
    let mut txn = db.begin();
    let (base, a, b) = fork_disjoint(&mut txn);
    let m = txn
        .merge(&a, &b, MergePolicy::Fail)
        .unwrap()
        .version
        .unwrap();
    txn.commit().unwrap();

    // Snapshots serve the walk read-only, self first, stamps strictly
    // descending, both parents reached.
    let mut snap = db.snapshot();
    let anc: Vec<_> = snap.ancestors(&m).unwrap().collect();
    assert_eq!(anc, vec![m, b, a, base]);
    assert_eq!(snap.common_ancestor(&m, &a).unwrap(), Some(a));
    drop(snap);

    // Splice a parent out of the middle: the walk re-roots through the
    // deleted version's own parent without ever seeing the ghost.
    let mut txn = db.begin();
    txn.pdelete_version(a).unwrap();
    txn.commit().unwrap();
    let mut snap = db.snapshot();
    let anc: Vec<_> = snap.ancestors(&m).unwrap().collect();
    assert_eq!(anc, vec![m, b, base]);
    assert_eq!(snap.common_ancestor(&m, &b).unwrap(), Some(b));
    // Unknown versions error rather than walking nothing.
    assert!(snap.ancestors_raw(Vid(99_999)).is_err());
}

#[test]
fn merged_event_fires_on_commit() {
    let db = ode::testutil::tempdb();
    let merges = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&merges);
    db.on_type::<Doc>(move |ev| {
        if let Event::Merged { vid, a, b, .. } = ev {
            assert!(*vid > *a && *vid > *b);
            seen.fetch_add(1, Ordering::SeqCst);
        }
    });

    let mut txn = db.begin();
    let (_, a, b) = fork_disjoint(&mut txn);
    txn.merge(&a, &b, MergePolicy::Fail).unwrap();
    assert_eq!(merges.load(Ordering::SeqCst), 0, "fires only on commit");
    txn.commit().unwrap();
    assert_eq!(merges.load(Ordering::SeqCst), 1);
}
