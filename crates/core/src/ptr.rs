//! Typed persistent pointers: generic (object) and specific (version)
//! references.
//!
//! The paper's key reference-model decision: "an object id does not
//! refer to a generic object header …; rather, it logically refers to
//! the latest version of the object."  [`ObjPtr`] is that object id —
//! dereferencing it *re-resolves the latest version at each use*
//! (dynamic/late binding), which is what makes the paper's address-book
//! example work.  [`VersionPtr`] is a version id — early/static binding
//! to one specific version.
//!
//! Both are plain 8-byte ids + a type parameter, are `Copy`, and
//! implement [`Persist`] so they can be stored **inside** other
//! persistent objects (inter-object references).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

use ode_codec::type_tag::TypeName;
use ode_codec::{DecodeError, Persist, Reader, TypeTag, Writer};
use ode_object::{Oid, Vid};

/// A generic (dynamically bound) reference to a persistent object of
/// type `T`: the paper's *object id*.
pub struct ObjPtr<T> {
    pub(crate) oid: Oid,
    _marker: PhantomData<fn() -> T>,
}

/// A specific (statically bound) reference to one version of a
/// persistent object of type `T`: the paper's *version id*.
pub struct VersionPtr<T> {
    pub(crate) vid: Vid,
    _marker: PhantomData<fn() -> T>,
}

impl<T> ObjPtr<T> {
    /// Wrap a raw object id. Exposed for the policies/baselines layers;
    /// normal code receives pointers from [`Txn::pnew`](crate::Txn::pnew).
    pub fn from_oid(oid: Oid) -> ObjPtr<T> {
        ObjPtr {
            oid,
            _marker: PhantomData,
        }
    }

    /// The raw object id.
    pub fn oid(self) -> Oid {
        self.oid
    }
}

impl<T: TypeName> ObjPtr<T> {
    /// The stable type tag of `T`.
    pub fn tag() -> TypeTag {
        TypeTag::of::<T>()
    }
}

impl<T> VersionPtr<T> {
    /// Wrap a raw version id (see [`ObjPtr::from_oid`]).
    pub fn from_vid(vid: Vid) -> VersionPtr<T> {
        VersionPtr {
            vid,
            _marker: PhantomData,
        }
    }

    /// The raw version id.
    pub fn vid(self) -> Vid {
        self.vid
    }
}

impl<T: TypeName> VersionPtr<T> {
    /// The stable type tag of `T`.
    pub fn tag() -> TypeTag {
        TypeTag::of::<T>()
    }
}

// Manual impls: derive would wrongly require `T: Clone` etc.
impl<T> Clone for ObjPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ObjPtr<T> {}
impl<T> PartialEq for ObjPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.oid == other.oid
    }
}
impl<T> Eq for ObjPtr<T> {}
impl<T> Hash for ObjPtr<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.oid.hash(state);
    }
}
impl<T> PartialOrd for ObjPtr<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for ObjPtr<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.oid.cmp(&other.oid)
    }
}
impl<T> fmt::Debug for ObjPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjPtr({})", self.oid)
    }
}
impl<T> fmt::Display for ObjPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.oid)
    }
}

impl<T> Clone for VersionPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for VersionPtr<T> {}
impl<T> PartialEq for VersionPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.vid == other.vid
    }
}
impl<T> Eq for VersionPtr<T> {}
impl<T> Hash for VersionPtr<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.vid.hash(state);
    }
}
impl<T> PartialOrd for VersionPtr<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for VersionPtr<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.vid.cmp(&other.vid)
    }
}
impl<T> fmt::Debug for VersionPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VersionPtr({})", self.vid)
    }
}
impl<T> fmt::Display for VersionPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.vid)
    }
}

impl<T> Persist for ObjPtr<T> {
    fn encode(&self, w: &mut Writer) {
        self.oid.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ObjPtr::from_oid(Oid::decode(r)?))
    }
}

impl<T> Persist for VersionPtr<T> {
    fn encode(&self, w: &mut Writer) {
        self.vid.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(VersionPtr::from_vid(Vid::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;

    #[test]
    fn pointers_are_copy_eq_hash() {
        let a: ObjPtr<Dummy> = ObjPtr::from_oid(Oid(3));
        let b = a;
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));

        let v: VersionPtr<Dummy> = VersionPtr::from_vid(Vid(4));
        let w = v;
        assert_eq!(v, w);
    }

    #[test]
    fn pointers_round_trip_codec() {
        let p: ObjPtr<Dummy> = ObjPtr::from_oid(Oid(77));
        let bytes = ode_codec::to_bytes(&p);
        let back: ObjPtr<Dummy> = ode_codec::from_bytes(&bytes).unwrap();
        assert_eq!(p, back);

        let v: VersionPtr<Dummy> = VersionPtr::from_vid(Vid(88));
        let bytes = ode_codec::to_bytes(&v);
        let back: VersionPtr<Dummy> = ode_codec::from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn display_formats() {
        let p: ObjPtr<Dummy> = ObjPtr::from_oid(Oid(1));
        let v: VersionPtr<Dummy> = VersionPtr::from_vid(Vid(2));
        assert_eq!(p.to_string(), "oid:1");
        assert_eq!(v.to_string(), "vid:2");
    }
}
