//! Dereference guards: the Rust analogue of O++'s overloaded `->`/`*`.
//!
//! The paper: "By overloading the definitions of the `->` and `*`
//! operators we were able to define class VersionPtr in such a way that
//! its objects could be manipulated just like normal pointers."  Rust's
//! equivalent is the [`Deref`] trait: [`Txn::deref`](crate::Txn::deref)
//! and [`Txn::deref_v`](crate::Txn::deref_v) return these guards, so
//! field access reads exactly like pointer use: `txn.deref(&p)?.weight`.
//!
//! A guard owns a decoded copy of the version state, pinned at the
//! moment of dereference (the paper's semantics: a generic reference is
//! re-bound to the latest version *at each dereference*, not
//! continuously).  [`ORef::version`] reports which version a generic
//! dereference actually bound to.
//!
//! Because a guard is an owned copy, it is fully detached from the
//! storage engine's locks: holding an [`ORef`]/[`VRef`] does not pin a
//! snapshot, block a committing writer at the snapshot gate, or keep a
//! buffer-pool frame alive.  Guards are `Send + Sync` whenever `T` is,
//! so results read under one snapshot can be handed to other threads
//! freely (the concurrency tests assert this statically).

use std::ops::Deref;

use crate::ptr::VersionPtr;

/// Guard from dereferencing a generic reference ([`ObjPtr`]) — the
/// object state as of its latest version at dereference time.
///
/// [`ObjPtr`]: crate::ObjPtr
#[derive(Debug, Clone)]
pub struct ORef<T> {
    pub(crate) value: T,
    pub(crate) version: VersionPtr<T>,
}

/// Guard from dereferencing a specific reference ([`VersionPtr`]).
#[derive(Debug, Clone)]
pub struct VRef<T> {
    pub(crate) value: T,
    pub(crate) version: VersionPtr<T>,
}

impl<T> ORef<T> {
    /// The specific version this dereference bound to (latest at the
    /// time of the call).
    pub fn version(&self) -> VersionPtr<T> {
        self.version
    }

    /// Unwrap into the owned value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> VRef<T> {
    /// Assemble a guard from an already-decoded value and the version
    /// it was decoded from (policy layers converting an [`ORef`] they
    /// resolved themselves).
    pub fn from_parts(value: T, version: VersionPtr<T>) -> VRef<T> {
        VRef { value, version }
    }

    /// The version this guard reads.
    pub fn version(&self) -> VersionPtr<T> {
        self.version
    }

    /// Unwrap into the owned value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for ORef<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> Deref for VRef<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> AsRef<T> for ORef<T> {
    fn as_ref(&self) -> &T {
        &self.value
    }
}

impl<T> AsRef<T> for VRef<T> {
    fn as_ref(&self) -> &T {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_object::Vid;

    #[test]
    fn guards_are_send_sync_when_t_is() {
        fn assert_send_sync<G: Send + Sync>() {}
        assert_send_sync::<ORef<String>>();
        assert_send_sync::<VRef<Vec<u8>>>();
    }

    #[test]
    fn guards_deref_to_inner() {
        let guard = ORef {
            value: String::from("hello"),
            version: VersionPtr::from_vid(Vid(1)),
        };
        // Method calls pass straight through Deref, like `p->len()`.
        assert_eq!(guard.len(), 5);
        assert_eq!(guard.version().vid(), Vid(1));
        assert_eq!(guard.into_inner(), "hello");

        let guard = VRef {
            value: vec![1, 2, 3],
            version: VersionPtr::<Vec<i32>>::from_vid(Vid(2)),
        };
        assert_eq!(guard[1], 2);
        assert_eq!(guard.as_ref().len(), 3);
    }
}
