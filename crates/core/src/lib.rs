//! # ode — the O++ object-versioning model in Rust
//!
//! This crate is the Rust rendition of the programming-language surface
//! of *Object Versioning in Ode* (Agrawal, Buroff, Gehani, Shasha;
//! ICDE 1991).  O++ extended C++ with persistent objects and a minimal,
//! orthogonal versioning model; this library maps each construct onto
//! idiomatic Rust:
//!
//! | O++ | here |
//! |-----|------|
//! | `pnew T(...)` | [`Txn::pnew`] → [`ObjPtr<T>`] |
//! | object id (`T*`) | [`ObjPtr<T>`] — resolves to the **latest** version at each use |
//! | version id | [`VersionPtr<T>`] — pinned to one version |
//! | `*p` / `p->f` (overloaded) | [`Txn::deref`] / [`Txn::deref_v`] returning guards that `Deref<Target = T>` |
//! | mutation through a pointer | [`Txn::update`] / [`Txn::update_version`] |
//! | `newversion(p)` | [`Txn::newversion`] / [`Txn::newversion_from`] |
//! | `pdelete` | [`Txn::pdelete`] / [`Txn::pdelete_version`] |
//! | `Dprevious` / `Tprevious` … | [`Txn::dprevious`], [`Txn::tprevious`], [`Txn::tnext`], [`Txn::dnext`] |
//! | `for x in Type` (extent query) | [`Txn::objects`] |
//! | triggers | [`Database::on_object`] / [`Database::on_type`] |
//!
//! ## Quick start
//!
//! ```
//! use ode_codec::{impl_persist_struct, impl_type_name};
//!
//! #[derive(Debug, Clone, PartialEq)]
//! struct Part { name: String, weight: u32 }
//! impl_persist_struct!(Part { name, weight });
//! impl_type_name!(Part = "demo/Part");
//!
//! // A throwaway on-disk database, removed (with its WAL) on drop.
//! let db = ode::testutil::tempdb();
//!
//! let mut txn = db.begin();
//! // pnew: create a persistent object (its first version).
//! let p = txn.pnew(&Part { name: "alu".into(), weight: 7 }).unwrap();
//! // Pin the current version, then derive a new one.
//! let v0 = txn.current_version(&p).unwrap();
//! let v1 = txn.newversion(&p).unwrap();
//! txn.update(&p, |part| part.weight = 9).unwrap();
//!
//! // Generic reference: sees the latest version.
//! assert_eq!(txn.deref(&p).unwrap().weight, 9);
//! // Specific reference: pinned.
//! assert_eq!(txn.deref_v(&v0).unwrap().weight, 7);
//! // Derived-from traversal.
//! assert_eq!(txn.dprevious(&v1).unwrap(), Some(v0));
//! txn.commit().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod event;
mod guard;
mod ptr;
#[doc(hidden)]
pub mod testutil;
mod txn;

pub use db::{Database, DatabaseOptions, RetryPolicy};
pub use event::{Event, TriggerId};
pub use guard::{ORef, VRef};
pub use ptr::{ObjPtr, VersionPtr};
pub use txn::{MergeReport, Snapshot, Txn};

pub use ode_codec::type_tag::TypeName;
pub use ode_codec::{Persist, TypeTag};
pub use ode_merge::{MergeConflict, MergePolicy};
pub use ode_object::{Oid, Vid};
pub use ode_version::{ChainConfig, ChainStats, Result, VersionDiff, VersionError as Error};

/// The bound a type must satisfy to live in an Ode database: a stable
/// persistent name plus a binary encoding.
///
/// Version orthogonality (§3 of the paper) falls out of this design:
/// *every* `OdeType` can be versioned — there is no "versionable"
/// declaration, and no transformation step for objects that never used
/// versions.
pub trait OdeType: Persist + TypeName {}

impl<T: Persist + TypeName> OdeType for T {}
