//! Change events and triggers.
//!
//! The paper deliberately leaves change notification out of the kernel:
//! "we decided against a built-in change notification facility because
//! users can implement such a facility using O++ triggers."  This module
//! is that trigger primitive: handlers registered per object or per
//! type, fired after the transaction that produced the events commits
//! (never for aborted work).

use std::collections::HashMap;
use std::sync::Arc;

use ode_codec::TypeTag;
use ode_object::{Oid, Vid};
use parking_lot::RwLock;

/// A committed change to the database, as delivered to triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A new object (and its first version) was created.
    Created {
        /// The new object.
        oid: Oid,
        /// Its first version.
        vid: Vid,
        /// Its type.
        tag: TypeTag,
    },
    /// A version's state was overwritten in place.
    Updated {
        /// Owning object.
        oid: Oid,
        /// The version written.
        vid: Vid,
        /// Object type.
        tag: TypeTag,
    },
    /// A new version was derived.
    NewVersion {
        /// Owning object.
        oid: Oid,
        /// The new version.
        vid: Vid,
        /// The version it was derived from.
        base: Vid,
        /// Object type.
        tag: TypeTag,
    },
    /// A two-parent merge version was checked in.
    Merged {
        /// Owning object.
        oid: Oid,
        /// The merge version.
        vid: Vid,
        /// First parent (ours).
        a: Vid,
        /// Second parent (theirs).
        b: Vid,
        /// Object type.
        tag: TypeTag,
    },
    /// One version was deleted.
    VersionDeleted {
        /// Owning object.
        oid: Oid,
        /// The removed version.
        vid: Vid,
        /// Object type.
        tag: TypeTag,
    },
    /// An object and all its versions were deleted.
    ObjectDeleted {
        /// The removed object.
        oid: Oid,
        /// Object type.
        tag: TypeTag,
    },
}

impl Event {
    /// The object this event concerns.
    pub fn oid(&self) -> Oid {
        match *self {
            Event::Created { oid, .. }
            | Event::Updated { oid, .. }
            | Event::NewVersion { oid, .. }
            | Event::Merged { oid, .. }
            | Event::VersionDeleted { oid, .. }
            | Event::ObjectDeleted { oid, .. } => oid,
        }
    }

    /// The type tag of the object this event concerns.
    pub fn tag(&self) -> TypeTag {
        match *self {
            Event::Created { tag, .. }
            | Event::Updated { tag, .. }
            | Event::NewVersion { tag, .. }
            | Event::Merged { tag, .. }
            | Event::VersionDeleted { tag, .. }
            | Event::ObjectDeleted { tag, .. } => tag,
        }
    }
}

/// Handle returned by trigger registration; pass to
/// [`Database::remove_trigger`](crate::Database::remove_trigger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriggerId(pub(crate) u64);

type Handler = Arc<dyn Fn(&Event) + Send + Sync>;

#[derive(Default)]
pub(crate) struct TriggerRegistry {
    inner: RwLock<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    next_id: u64,
    by_object: HashMap<Oid, Vec<(TriggerId, Handler)>>,
    by_type: HashMap<TypeTag, Vec<(TriggerId, Handler)>>,
}

impl TriggerRegistry {
    pub(crate) fn on_object(&self, oid: Oid, handler: Handler) -> TriggerId {
        let mut inner = self.inner.write();
        inner.next_id += 1;
        let id = TriggerId(inner.next_id);
        inner.by_object.entry(oid).or_default().push((id, handler));
        id
    }

    pub(crate) fn on_type(&self, tag: TypeTag, handler: Handler) -> TriggerId {
        let mut inner = self.inner.write();
        inner.next_id += 1;
        let id = TriggerId(inner.next_id);
        inner.by_type.entry(tag).or_default().push((id, handler));
        id
    }

    pub(crate) fn remove(&self, id: TriggerId) -> bool {
        let mut inner = self.inner.write();
        let mut removed = false;
        inner.by_object.retain(|_, v| {
            let before = v.len();
            v.retain(|(tid, _)| *tid != id);
            removed |= v.len() != before;
            !v.is_empty()
        });
        inner.by_type.retain(|_, v| {
            let before = v.len();
            v.retain(|(tid, _)| *tid != id);
            removed |= v.len() != before;
            !v.is_empty()
        });
        removed
    }

    /// Number of handlers that would fire for an event with this
    /// oid/tag (bench instrumentation).
    pub(crate) fn handler_count(&self, oid: Oid, tag: TypeTag) -> usize {
        let inner = self.inner.read();
        inner.by_object.get(&oid).map_or(0, Vec::len) + inner.by_type.get(&tag).map_or(0, Vec::len)
    }

    pub(crate) fn fire(&self, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        // Clone the matching handlers out so user callbacks run without
        // the registry lock held (they may register/remove triggers).
        let mut to_run: Vec<(Handler, Event)> = Vec::new();
        {
            let inner = self.inner.read();
            if inner.by_object.is_empty() && inner.by_type.is_empty() {
                return;
            }
            for ev in events {
                if let Some(handlers) = inner.by_object.get(&ev.oid()) {
                    for (_, h) in handlers {
                        to_run.push((Arc::clone(h), *ev));
                    }
                }
                if let Some(handlers) = inner.by_type.get(&ev.tag()) {
                    for (_, h) in handlers {
                        to_run.push((Arc::clone(h), *ev));
                    }
                }
            }
        }
        for (handler, ev) in to_run {
            handler(&ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const TAG: TypeTag = TypeTag::from_name("ev/T");

    fn ev(oid: u64) -> Event {
        Event::Updated {
            oid: Oid(oid),
            vid: Vid(1),
            tag: TAG,
        }
    }

    #[test]
    fn object_triggers_fire_only_for_their_object() {
        let reg = TriggerRegistry::default();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        reg.on_object(
            Oid(1),
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        reg.fire(&[ev(1), ev(2), ev(1)]);
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn type_triggers_fire_for_all_objects_of_type() {
        let reg = TriggerRegistry::default();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        reg.on_type(
            TAG,
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        reg.fire(&[ev(1), ev(2)]);
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn removal_stops_firing() {
        let reg = TriggerRegistry::default();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        let id = reg.on_object(
            Oid(1),
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert!(reg.remove(id));
        assert!(!reg.remove(id));
        reg.fire(&[ev(1)]);
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn handlers_may_mutate_registry() {
        let reg = Arc::new(TriggerRegistry::default());
        let reg2 = Arc::clone(&reg);
        reg.on_object(
            Oid(1),
            Arc::new(move |_| {
                // Re-entrant registration must not deadlock.
                reg2.on_object(Oid(2), Arc::new(|_| {}));
            }),
        );
        reg.fire(&[ev(1)]);
        assert_eq!(reg.handler_count(Oid(2), TypeTag::from_name("zz")), 1);
    }

    #[test]
    fn event_accessors() {
        let e = Event::NewVersion {
            oid: Oid(4),
            vid: Vid(9),
            base: Vid(8),
            tag: TAG,
        };
        assert_eq!(e.oid(), Oid(4));
        assert_eq!(e.tag(), TAG);
    }
}
