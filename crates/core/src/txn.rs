//! Transactions and snapshots: where the O++ operations live.

use ode_codec::{from_bytes, to_bytes};
use ode_merge::{MergeConflict, MergePolicy};
use ode_storage::store::{PageRead, ReadTx, Tx};
use ode_version::{MaterializeCache, Result, VersionDiff, VersionError, VersionStore};

use crate::db::Database;
use crate::event::Event;
use crate::guard::{ORef, VRef};
use crate::ptr::{ObjPtr, VersionPtr};
use crate::OdeType;

/// A read-write transaction. RAII: dropping without [`Txn::commit`]
/// aborts and rolls everything back (including id allocation); commit
/// makes the work durable and then fires triggers.
pub struct Txn<'db> {
    db: &'db Database,
    tx: Tx<'db>,
    events: Vec<Event>,
}

/// A read-only snapshot of the database.
pub struct Snapshot<'db> {
    db: &'db Database,
    tx: ReadTx<'db>,
}

/// What a [`Txn::merge`] produced: the checked-in merge version (absent
/// when the policy was [`MergePolicy::Fail`] and conflicts were found)
/// plus every conflicting byte range, in base-offset order.
#[derive(Debug, Clone)]
pub struct MergeReport<T> {
    /// The new two-parent version, when one was checked in.
    pub version: Option<VersionPtr<T>>,
    /// Overlapping edits between the two sides.
    pub conflicts: Vec<MergeConflict>,
}

// ---------------------------------------------------------------------------
// Shared read-side implementation
// ---------------------------------------------------------------------------

fn read_deref<T: OdeType>(
    vs: &VersionStore,
    tx: &mut impl PageRead,
    ptr: &ObjPtr<T>,
    cache: Option<(&MaterializeCache, u64)>,
) -> Result<ORef<T>> {
    let vid = vs.latest(tx, ptr.oid)?;
    let body = vs.read_body_cached(tx, vid, ObjPtr::<T>::tag(), cache)?;
    Ok(ORef {
        value: from_bytes(&body)?,
        version: VersionPtr::from_vid(vid),
    })
}

fn read_deref_v<T: OdeType>(
    vs: &VersionStore,
    tx: &mut impl PageRead,
    vp: &VersionPtr<T>,
    cache: Option<(&MaterializeCache, u64)>,
) -> Result<VRef<T>> {
    let body = vs.read_body_cached(tx, vp.vid, VersionPtr::<T>::tag(), cache)?;
    Ok(VRef {
        value: from_bytes(&body)?,
        version: *vp,
    })
}

macro_rules! read_api {
    () => {
        /// Dereference a generic reference: decode the **latest** version
        /// (late binding happens here, at each call).
        pub fn deref<T: OdeType>(&mut self, ptr: &ObjPtr<T>) -> Result<ORef<T>> {
            let cache = self.body_cache();
            read_deref(self.db.versions(), &mut self.tx, ptr, cache)
        }

        /// Dereference a specific reference: decode exactly that version.
        pub fn deref_v<T: OdeType>(&mut self, vp: &VersionPtr<T>) -> Result<VRef<T>> {
            let cache = self.body_cache();
            read_deref_v(self.db.versions(), &mut self.tx, vp, cache)
        }

        /// Pin the object's current latest version as a specific
        /// reference (generic → specific conversion).
        pub fn current_version<T: OdeType>(&mut self, ptr: &ObjPtr<T>) -> Result<VersionPtr<T>> {
            Ok(VersionPtr::from_vid(
                self.db.versions().latest(&mut self.tx, ptr.oid)?,
            ))
        }

        /// The object a version belongs to (specific → generic).
        pub fn object_of<T: OdeType>(&mut self, vp: &VersionPtr<T>) -> Result<ObjPtr<T>> {
            Ok(ObjPtr::from_oid(
                self.db.versions().object_of(&mut self.tx, vp.vid)?,
            ))
        }

        /// `Dprevious`: the version `vp` was derived from.
        pub fn dprevious<T: OdeType>(
            &mut self,
            vp: &VersionPtr<T>,
        ) -> Result<Option<VersionPtr<T>>> {
            Ok(self
                .db
                .versions()
                .dprevious(&mut self.tx, vp.vid)?
                .map(VersionPtr::from_vid))
        }

        /// `Dnext`: versions derived from `vp`, in creation order.
        pub fn dnext<T: OdeType>(&mut self, vp: &VersionPtr<T>) -> Result<Vec<VersionPtr<T>>> {
            Ok(self
                .db
                .versions()
                .dnext(&mut self.tx, vp.vid)?
                .into_iter()
                .map(VersionPtr::from_vid)
                .collect())
        }

        /// `Tprevious`: the version created immediately before `vp`.
        pub fn tprevious<T: OdeType>(
            &mut self,
            vp: &VersionPtr<T>,
        ) -> Result<Option<VersionPtr<T>>> {
            Ok(self
                .db
                .versions()
                .tprevious(&mut self.tx, vp.vid)?
                .map(VersionPtr::from_vid))
        }

        /// `Tnext`: the version created immediately after `vp`.
        pub fn tnext<T: OdeType>(&mut self, vp: &VersionPtr<T>) -> Result<Option<VersionPtr<T>>> {
            Ok(self
                .db
                .versions()
                .tnext(&mut self.tx, vp.vid)?
                .map(VersionPtr::from_vid))
        }

        /// All versions of an object in temporal (creation) order.
        pub fn version_history<T: OdeType>(
            &mut self,
            ptr: &ObjPtr<T>,
        ) -> Result<Vec<VersionPtr<T>>> {
            Ok(self
                .db
                .versions()
                .version_history(&mut self.tx, ptr.oid)?
                .into_iter()
                .map(VersionPtr::from_vid)
                .collect())
        }

        /// Every ancestor of `vp` in the derived-from graph — `vp`
        /// itself first, then all transitive parents (through *both*
        /// slots of merge versions) in strictly descending creation
        /// order. Served from version metadata alone: no state is ever
        /// materialized, so walking a long chained history stays cheap.
        pub fn ancestors<T: OdeType>(
            &mut self,
            vp: &VersionPtr<T>,
        ) -> Result<impl Iterator<Item = VersionPtr<T>>> {
            Ok(self
                .db
                .versions()
                .ancestors(&mut self.tx, vp.vid)?
                .into_iter()
                .map(VersionPtr::from_vid))
        }

        /// Type-erased [`ancestors`](Self::ancestors).
        pub fn ancestors_raw(&mut self, vid: ode_object::Vid) -> Result<Vec<ode_object::Vid>> {
            self.db.versions().ancestors(&mut self.tx, vid)
        }

        /// The nearest (greatest-stamp) common ancestor of two versions
        /// of one object — the merge base. `None` when deletion
        /// splices have split the graph (or the versions belong to
        /// different objects).
        pub fn common_ancestor<T: OdeType>(
            &mut self,
            a: &VersionPtr<T>,
            b: &VersionPtr<T>,
        ) -> Result<Option<VersionPtr<T>>> {
            Ok(self
                .db
                .versions()
                .common_ancestor(&mut self.tx, a.vid, b.vid)?
                .map(VersionPtr::from_vid))
        }

        /// Type-erased [`common_ancestor`](Self::common_ancestor).
        pub fn common_ancestor_raw(
            &mut self,
            a: ode_object::Vid,
            b: ode_object::Vid,
        ) -> Result<Option<ode_object::Vid>> {
            self.db.versions().common_ancestor(&mut self.tx, a, b)
        }

        /// Both derived-from parents of a version: one entry for an
        /// ordinary version, two for a merge, none for a root.
        pub fn parents_raw(&mut self, vid: ode_object::Vid) -> Result<Vec<ode_object::Vid>> {
            Ok(self
                .db
                .versions()
                .version_meta(&mut self.tx, vid)?
                .parents()
                .collect())
        }

        /// The derivation path from `vp` back to a root (`vp` first) —
        /// the paper's "version history" of an alternative.
        pub fn derivation_path<T: OdeType>(
            &mut self,
            vp: &VersionPtr<T>,
        ) -> Result<Vec<VersionPtr<T>>> {
            Ok(self
                .db
                .versions()
                .derivation_path(&mut self.tx, vp.vid)?
                .into_iter()
                .map(VersionPtr::from_vid)
                .collect())
        }

        /// Leaves of the derived-from tree: the most up-to-date version
        /// of each alternative.
        pub fn derivation_leaves<T: OdeType>(
            &mut self,
            ptr: &ObjPtr<T>,
        ) -> Result<Vec<VersionPtr<T>>> {
            Ok(self
                .db
                .versions()
                .derivation_leaves(&mut self.tx, ptr.oid)?
                .into_iter()
                .map(VersionPtr::from_vid)
                .collect())
        }

        /// Number of live versions of an object.
        pub fn version_count<T: OdeType>(&mut self, ptr: &ObjPtr<T>) -> Result<u64> {
            self.db.versions().version_count(&mut self.tx, ptr.oid)
        }

        /// Extent query: every live object of type `T`, in id order —
        /// O++'s `for x in T` loop.
        pub fn objects<T: OdeType>(&mut self) -> Result<Vec<ObjPtr<T>>> {
            Ok(self
                .db
                .versions()
                .objects_of_type(&mut self.tx, ObjPtr::<T>::tag())?
                .into_iter()
                .map(ObjPtr::from_oid)
                .collect())
        }

        /// A page of the type's extent: up to `limit` objects with ids
        /// `>=` `after` (pass `ObjPtr::from_oid(Oid::NULL)` to start).
        /// Cursor-style iteration for extents too large to materialize;
        /// pass the last returned pointer's oid + 1 to continue.
        pub fn objects_page<T: OdeType>(
            &mut self,
            after: ode_object::Oid,
            limit: usize,
        ) -> Result<Vec<ObjPtr<T>>> {
            Ok(self
                .db
                .versions()
                .objects_of_type_from(&mut self.tx, ObjPtr::<T>::tag(), after, limit)?
                .into_iter()
                .map(ObjPtr::from_oid)
                .collect())
        }

        /// Whether the object still exists.
        pub fn exists<T: OdeType>(&mut self, ptr: &ObjPtr<T>) -> Result<bool> {
            self.db.versions().object_exists(&mut self.tx, ptr.oid)
        }

        /// Whether the version still exists.
        pub fn version_exists<T: OdeType>(&mut self, vp: &VersionPtr<T>) -> Result<bool> {
            self.db.versions().version_exists(&mut self.tx, vp.vid)
        }

        /// Validate the structural invariants of one object's graph.
        pub fn check_object<T: OdeType>(&mut self, ptr: &ObjPtr<T>) -> Result<()> {
            self.db.versions().check_object(&mut self.tx, ptr.oid)
        }

        /// A version's global creation stamp — monotone across the
        /// whole database, the basis for temporal queries (§2's
        /// historical-database motivation).
        pub fn created_stamp<T: OdeType>(&mut self, vp: &VersionPtr<T>) -> Result<u64> {
            self.db.versions().created_stamp(&mut self.tx, vp.vid)
        }

        /// The current global stamp; capture it to name a
        /// database-wide moment for later [`version_as_of`] queries.
        ///
        /// [`version_as_of`]: Self::version_as_of
        pub fn now_stamp(&mut self) -> Result<u64> {
            self.db.versions().now_stamp(&mut self.tx)
        }

        /// All versions of the object created in the global-stamp range
        /// `[from, to]` (inclusive), oldest first — "all versions of X
        /// between epochs". For delta-chained objects the answer is
        /// served straight off the chain record's vid index, with no
        /// per-version record loads and no state materialization.
        pub fn history_between<T: OdeType>(
            &mut self,
            ptr: &ObjPtr<T>,
            from: u64,
            to: u64,
        ) -> Result<Vec<VersionPtr<T>>> {
            Ok(self
                .db
                .versions()
                .history_between(&mut self.tx, ptr.oid, from, to)?
                .into_iter()
                .map(VersionPtr::from_vid)
                .collect())
        }

        /// Type-erased [`history_between`](Self::history_between).
        pub fn history_between_raw(
            &mut self,
            oid: ode_object::Oid,
            from: u64,
            to: u64,
        ) -> Result<Vec<ode_object::Vid>> {
            self.db
                .versions()
                .history_between(&mut self.tx, oid, from, to)
        }

        /// Summarize the difference between two versions' states —
        /// "diff v_a..v_b". Adjacent members of a delta chain are
        /// answered from the stored delta itself
        /// ([`VersionDiff::stored`] is `true`) without materializing
        /// any state; otherwise only the two endpoints are
        /// materialized — never the versions between them.
        pub fn diff_versions<T: OdeType>(
            &mut self,
            from: &VersionPtr<T>,
            to: &VersionPtr<T>,
        ) -> Result<VersionDiff> {
            self.db
                .versions()
                .diff_versions(&mut self.tx, from.vid, to.vid)
        }

        /// Type-erased [`diff_versions`](Self::diff_versions).
        pub fn diff_versions_raw(
            &mut self,
            from: ode_object::Vid,
            to: ode_object::Vid,
        ) -> Result<VersionDiff> {
            self.db.versions().diff_versions(&mut self.tx, from, to)
        }

        /// Space/shape statistics of the object's delta-chain record
        /// (`None` for whole-body objects).
        pub fn chain_stats_raw(
            &mut self,
            oid: ode_object::Oid,
        ) -> Result<Option<ode_version::ChainStats>> {
            self.db.versions().chain_stats(&mut self.tx, oid)
        }

        /// The newest version of the object created at or before
        /// `stamp` (`None` if its oldest surviving version is newer) —
        /// the as-of temporal query of historical databases.
        pub fn version_as_of<T: OdeType>(
            &mut self,
            ptr: &ObjPtr<T>,
            stamp: u64,
        ) -> Result<Option<VersionPtr<T>>> {
            Ok(self
                .db
                .versions()
                .version_as_of(&mut self.tx, ptr.oid, stamp)?
                .map(VersionPtr::from_vid))
        }

        /// O++-style selection over a type's extent: decode every live
        /// object's latest version and keep those matching `pred`.
        pub fn select<T: OdeType>(
            &mut self,
            mut pred: impl FnMut(&T) -> bool,
        ) -> Result<Vec<(ObjPtr<T>, T)>> {
            let mut out = Vec::new();
            for ptr in self.objects::<T>()? {
                let cache = self.body_cache();
                let value = read_deref(self.db.versions(), &mut self.tx, &ptr, cache)?.into_inner();
                if pred(&value) {
                    out.push((ptr, value));
                }
            }
            Ok(out)
        }

        /// Number of live objects of type `T`.
        pub fn count<T: OdeType>(&mut self) -> Result<usize> {
            Ok(self.objects::<T>()?.len())
        }

        /// Render the object's version graph as Graphviz DOT, in the
        /// visual language of the paper's figures (solid = derived-from,
        /// dotted = temporal, double circle = latest).
        pub fn export_dot<T: OdeType>(&mut self, ptr: &ObjPtr<T>) -> Result<String> {
            ode_version::version_graph_dot(self.db.versions(), &mut self.tx, ptr.oid)
        }

        // -- type-erased (raw-id) reads ---------------------------------
        //
        // Layers that cannot name `T` statically — network servers
        // dispatching wire requests, policy engines walking
        // heterogeneous graphs — operate on raw ids plus the stored
        // type tag. Type safety is still enforced: body reads check the
        // caller-supplied tag against the stored one.

        /// Type-erased latest-version lookup by raw object id.
        pub fn latest_raw(&mut self, oid: ode_object::Oid) -> Result<ode_object::Vid> {
            self.db.versions().latest(&mut self.tx, oid)
        }

        /// The stored type tag of an object.
        pub fn object_tag_raw(&mut self, oid: ode_object::Oid) -> Result<ode_codec::TypeTag> {
            Ok(self.db.versions().object_meta(&mut self.tx, oid)?.tag)
        }

        /// Type-erased `deref`: resolve the latest version and return
        /// its id and encoded body, checking `tag` against the stored
        /// type.
        pub fn deref_raw(
            &mut self,
            oid: ode_object::Oid,
            tag: ode_codec::TypeTag,
        ) -> Result<(ode_object::Vid, Vec<u8>)> {
            let cache = self.body_cache();
            let vid = self.db.versions().latest(&mut self.tx, oid)?;
            let body = self
                .db
                .versions()
                .read_body_cached(&mut self.tx, vid, tag, cache)?;
            Ok((vid, body))
        }

        /// Type-erased `deref_v`: one specific version's encoded body.
        pub fn deref_version_raw(
            &mut self,
            vid: ode_object::Vid,
            tag: ode_codec::TypeTag,
        ) -> Result<Vec<u8>> {
            let cache = self.body_cache();
            self.db
                .versions()
                .read_body_cached(&mut self.tx, vid, tag, cache)
        }

        /// Type-erased [`object_of`](Self::object_of).
        pub fn object_of_raw(&mut self, vid: ode_object::Vid) -> Result<ode_object::Oid> {
            self.db.versions().object_of(&mut self.tx, vid)
        }

        /// Type-erased [`dprevious`](Self::dprevious).
        pub fn dprevious_raw(&mut self, vid: ode_object::Vid) -> Result<Option<ode_object::Vid>> {
            self.db.versions().dprevious(&mut self.tx, vid)
        }

        /// Type-erased [`dnext`](Self::dnext).
        pub fn dnext_raw(&mut self, vid: ode_object::Vid) -> Result<Vec<ode_object::Vid>> {
            self.db.versions().dnext(&mut self.tx, vid)
        }

        /// Type-erased [`tprevious`](Self::tprevious).
        pub fn tprevious_raw(&mut self, vid: ode_object::Vid) -> Result<Option<ode_object::Vid>> {
            self.db.versions().tprevious(&mut self.tx, vid)
        }

        /// Type-erased [`tnext`](Self::tnext).
        pub fn tnext_raw(&mut self, vid: ode_object::Vid) -> Result<Option<ode_object::Vid>> {
            self.db.versions().tnext(&mut self.tx, vid)
        }

        /// Type-erased [`version_history`](Self::version_history).
        pub fn version_history_raw(
            &mut self,
            oid: ode_object::Oid,
        ) -> Result<Vec<ode_object::Vid>> {
            self.db.versions().version_history(&mut self.tx, oid)
        }

        /// Type-erased [`version_count`](Self::version_count).
        pub fn version_count_raw(&mut self, oid: ode_object::Oid) -> Result<u64> {
            self.db.versions().version_count(&mut self.tx, oid)
        }

        /// Type-erased extent query by stored type tag.
        pub fn objects_raw(&mut self, tag: ode_codec::TypeTag) -> Result<Vec<ode_object::Oid>> {
            self.db.versions().objects_of_type(&mut self.tx, tag)
        }

        /// Type-erased [`objects_page`](Self::objects_page).
        pub fn objects_page_raw(
            &mut self,
            tag: ode_codec::TypeTag,
            after: ode_object::Oid,
            limit: usize,
        ) -> Result<Vec<ode_object::Oid>> {
            self.db
                .versions()
                .objects_of_type_from(&mut self.tx, tag, after, limit)
        }

        /// Type-erased [`exists`](Self::exists).
        pub fn exists_raw(&mut self, oid: ode_object::Oid) -> Result<bool> {
            self.db.versions().object_exists(&mut self.tx, oid)
        }

        /// Type-erased [`version_exists`](Self::version_exists).
        pub fn version_exists_raw(&mut self, vid: ode_object::Vid) -> Result<bool> {
            self.db.versions().version_exists(&mut self.tx, vid)
        }
    };
}

impl<'db> Snapshot<'db> {
    pub(crate) fn new(db: &'db Database, tx: ReadTx<'db>) -> Snapshot<'db> {
        Snapshot { db, tx }
    }

    /// The commit epoch this snapshot observes, stamped atomically with
    /// snapshot creation. Everything read through this snapshot can be
    /// cached under this epoch: a later equal
    /// [`Database::snapshot_epoch`] observation proves the cache entry
    /// is still current.
    pub fn epoch(&self) -> u64 {
        self.tx.epoch()
    }

    /// Snapshots serve chain materializations through the database's
    /// epoch-invalidated cache: the snapshot's epoch names exactly the
    /// committed state its reads observe.
    fn body_cache(&self) -> Option<(&'db MaterializeCache, u64)> {
        Some((self.db.materialize_cache(), self.tx.epoch()))
    }

    read_api!();
}

impl<'db> Txn<'db> {
    pub(crate) fn new(db: &'db Database, tx: Tx<'db>) -> Txn<'db> {
        Txn {
            db,
            tx,
            events: Vec::new(),
        }
    }

    /// Write transactions never use the materialization cache: their
    /// own uncommitted writes don't move the commit epoch, so cached
    /// pre-write bodies could mask them.
    fn body_cache(&self) -> Option<(&'db MaterializeCache, u64)> {
        None
    }

    read_api!();

    // -- mutations ----------------------------------------------------------

    /// `pnew`: create a persistent object holding `value` as its first
    /// version. Returns the generic reference.
    pub fn pnew<T: OdeType>(&mut self, value: &T) -> Result<ObjPtr<T>> {
        let tag = ObjPtr::<T>::tag();
        let (oid, vid) = self
            .db
            .versions()
            .create_object(&mut self.tx, tag, to_bytes(value))?;
        self.events.push(Event::Created { oid, vid, tag });
        Ok(ObjPtr::from_oid(oid))
    }

    /// `newversion(p)`: derive a new version from the object's latest.
    /// The new version becomes the latest; its state starts as a copy of
    /// the base's.
    pub fn newversion<T: OdeType>(&mut self, ptr: &ObjPtr<T>) -> Result<VersionPtr<T>> {
        let base = self.db.versions().latest(&mut self.tx, ptr.oid)?;
        let vid = self.db.versions().new_version_from(&mut self.tx, base)?;
        self.events.push(Event::NewVersion {
            oid: ptr.oid,
            vid,
            base,
            tag: ObjPtr::<T>::tag(),
        });
        Ok(VersionPtr::from_vid(vid))
    }

    /// `newversion(vp)`: derive from a *specific* version — this is how
    /// alternatives/variants are created (deriving from a non-tip
    /// version branches the derived-from tree).
    pub fn newversion_from<T: OdeType>(&mut self, vp: &VersionPtr<T>) -> Result<VersionPtr<T>> {
        let oid = self.db.versions().object_of(&mut self.tx, vp.vid)?;
        let vid = self.db.versions().new_version_from(&mut self.tx, vp.vid)?;
        self.events.push(Event::NewVersion {
            oid,
            vid,
            base: vp.vid,
            tag: ObjPtr::<T>::tag(),
        });
        Ok(VersionPtr::from_vid(vid))
    }

    /// The `newversion` + edit idiom in one call: derive a new version
    /// from the object's latest, apply `f` to it, and return it. The
    /// base version keeps its prior state untouched.
    pub fn derive_with<T: OdeType>(
        &mut self,
        ptr: &ObjPtr<T>,
        f: impl FnOnce(&mut T),
    ) -> Result<VersionPtr<T>> {
        let vp = self.newversion(ptr)?;
        self.update_version(&vp, f)?;
        Ok(vp)
    }

    /// Derive-and-edit from a *specific* base version (branching an
    /// alternative and giving it its changed state in one call).
    pub fn derive_from_with<T: OdeType>(
        &mut self,
        base: &VersionPtr<T>,
        f: impl FnOnce(&mut T),
    ) -> Result<VersionPtr<T>> {
        let vp = self.newversion_from(base)?;
        self.update_version(&vp, f)?;
        Ok(vp)
    }

    /// Mutate the latest version in place through a generic reference
    /// (ordinary `p->field = x` assignment in O++ — no new version).
    pub fn update<T: OdeType>(
        &mut self,
        ptr: &ObjPtr<T>,
        f: impl FnOnce(&mut T),
    ) -> Result<VersionPtr<T>> {
        let tag = ObjPtr::<T>::tag();
        let vid = self.db.versions().latest(&mut self.tx, ptr.oid)?;
        let body = self.db.versions().read_body(&mut self.tx, vid, tag)?;
        let mut value: T = from_bytes(&body)?;
        f(&mut value);
        self.db
            .versions()
            .write_body(&mut self.tx, vid, tag, to_bytes(&value))?;
        self.events.push(Event::Updated {
            oid: ptr.oid,
            vid,
            tag,
        });
        Ok(VersionPtr::from_vid(vid))
    }

    /// Replace the latest version's state wholesale.
    pub fn put<T: OdeType>(&mut self, ptr: &ObjPtr<T>, value: &T) -> Result<VersionPtr<T>> {
        let tag = ObjPtr::<T>::tag();
        let vid = self.db.versions().latest(&mut self.tx, ptr.oid)?;
        self.db
            .versions()
            .write_body(&mut self.tx, vid, tag, to_bytes(value))?;
        self.events.push(Event::Updated {
            oid: ptr.oid,
            vid,
            tag,
        });
        Ok(VersionPtr::from_vid(vid))
    }

    /// Mutate a *specific* version in place.
    pub fn update_version<T: OdeType>(
        &mut self,
        vp: &VersionPtr<T>,
        f: impl FnOnce(&mut T),
    ) -> Result<()> {
        let tag = VersionPtr::<T>::tag();
        let oid = self.db.versions().object_of(&mut self.tx, vp.vid)?;
        let body = self.db.versions().read_body(&mut self.tx, vp.vid, tag)?;
        let mut value: T = from_bytes(&body)?;
        f(&mut value);
        self.db
            .versions()
            .write_body(&mut self.tx, vp.vid, tag, to_bytes(&value))?;
        self.events.push(Event::Updated {
            oid,
            vid: vp.vid,
            tag,
        });
        Ok(())
    }

    /// Replace a specific version's state wholesale.
    pub fn put_version<T: OdeType>(&mut self, vp: &VersionPtr<T>, value: &T) -> Result<()> {
        let tag = VersionPtr::<T>::tag();
        let oid = self.db.versions().object_of(&mut self.tx, vp.vid)?;
        self.db
            .versions()
            .write_body(&mut self.tx, vp.vid, tag, to_bytes(value))?;
        self.events.push(Event::Updated {
            oid,
            vid: vp.vid,
            tag,
        });
        Ok(())
    }

    /// Three-way merge of two versions of one object, checked in as a
    /// new version recording **both** parents in the derived-from
    /// graph.
    ///
    /// The merge base is their nearest common ancestor
    /// ([`common_ancestor`](Self::common_ancestor)); with no surviving
    /// common ancestor the bodies are merged against an empty base, so
    /// only identical content merges cleanly. Non-overlapping edits
    /// from the two sides combine byte-exactly; overlapping edits are
    /// reported as [`MergeConflict`]s and resolved per `policy`
    /// ([`MergePolicy::Fail`] checks nothing in).
    ///
    /// The merge operates on the *encoded* bodies byte-wise — it is
    /// meaningful for flat byte-content types (documents, text); a
    /// structured encoding stitched from conflicting halves may no
    /// longer decode as `T`.
    pub fn merge<T: OdeType>(
        &mut self,
        a: &VersionPtr<T>,
        b: &VersionPtr<T>,
        policy: MergePolicy,
    ) -> Result<MergeReport<T>> {
        let (vid, conflicts) = self.merge_raw(a.vid, b.vid, policy)?;
        Ok(MergeReport {
            version: vid.map(VersionPtr::from_vid),
            conflicts,
        })
    }

    /// Type-erased [`merge`](Self::merge): the network server applies
    /// `Merge` requests through this. Returns the new version (when
    /// one was checked in) and the conflicting byte ranges.
    pub fn merge_raw(
        &mut self,
        a: ode_object::Vid,
        b: ode_object::Vid,
        policy: MergePolicy,
    ) -> Result<(Option<ode_object::Vid>, Vec<MergeConflict>)> {
        let oid_a = self.db.versions().object_of(&mut self.tx, a)?;
        let oid_b = self.db.versions().object_of(&mut self.tx, b)?;
        if a == b || oid_a != oid_b {
            return Err(VersionError::MergeMismatch { a, b });
        }
        let tag = self.db.versions().object_meta(&mut self.tx, oid_a)?.tag;
        let base = self.db.versions().common_ancestor(&mut self.tx, a, b)?;
        let base_body = match base {
            Some(v) => self.db.versions().read_body(&mut self.tx, v, tag)?,
            None => Vec::new(),
        };
        let ours = self.db.versions().read_body(&mut self.tx, a, tag)?;
        let theirs = self.db.versions().read_body(&mut self.tx, b, tag)?;
        let outcome = ode_merge::merge(&base_body, &ours, &theirs, policy);
        let vid = match outcome.merged {
            Some(body) => {
                let vid = self
                    .db
                    .versions()
                    .new_merge_version(&mut self.tx, a, b, body)?;
                self.events.push(Event::Merged {
                    oid: oid_a,
                    vid,
                    a,
                    b,
                    tag,
                });
                Some(vid)
            }
            None => None,
        };
        Ok((vid, outcome.conflicts))
    }

    /// Type-erased `newversion` by raw object id.
    ///
    /// Policy layers (e.g. version percolation) walk heterogeneous
    /// object graphs where the static type is unknown; this derives a
    /// new version from the object's latest using its *stored* type tag.
    pub fn newversion_raw(&mut self, oid: ode_object::Oid) -> Result<ode_object::Vid> {
        let meta = self.db.versions().object_meta(&mut self.tx, oid)?;
        let vid = self
            .db
            .versions()
            .new_version_from(&mut self.tx, meta.latest)?;
        self.events.push(Event::NewVersion {
            oid,
            vid,
            base: meta.latest,
            tag: meta.tag,
        });
        Ok(vid)
    }

    /// Type-erased `pnew`: create an object of the given stored type
    /// tag with an already-encoded first-version body. The network
    /// server uses this to apply `pnew` requests whose `T` only the
    /// remote client knows.
    pub fn pnew_raw(
        &mut self,
        tag: ode_codec::TypeTag,
        body: Vec<u8>,
    ) -> Result<(ode_object::Oid, ode_object::Vid)> {
        let (oid, vid) = self.db.versions().create_object(&mut self.tx, tag, body)?;
        self.events.push(Event::Created { oid, vid, tag });
        Ok((oid, vid))
    }

    /// Type-erased `newversion` from a *specific* base version.
    pub fn newversion_from_raw(&mut self, base: ode_object::Vid) -> Result<ode_object::Vid> {
        let oid = self.db.versions().object_of(&mut self.tx, base)?;
        let tag = self.db.versions().object_meta(&mut self.tx, oid)?.tag;
        let vid = self.db.versions().new_version_from(&mut self.tx, base)?;
        self.events.push(Event::NewVersion {
            oid,
            vid,
            base,
            tag,
        });
        Ok(vid)
    }

    /// Type-erased [`put`](Self::put): replace the latest version's
    /// body with pre-encoded bytes, checking `tag` against the stored
    /// type. Returns the version written.
    pub fn put_raw(
        &mut self,
        oid: ode_object::Oid,
        tag: ode_codec::TypeTag,
        body: Vec<u8>,
    ) -> Result<ode_object::Vid> {
        let vid = self.db.versions().latest(&mut self.tx, oid)?;
        self.db
            .versions()
            .write_body(&mut self.tx, vid, tag, body)?;
        self.events.push(Event::Updated { oid, vid, tag });
        Ok(vid)
    }

    /// Type-erased [`put_version`](Self::put_version).
    pub fn put_version_raw(
        &mut self,
        vid: ode_object::Vid,
        tag: ode_codec::TypeTag,
        body: Vec<u8>,
    ) -> Result<()> {
        let oid = self.db.versions().object_of(&mut self.tx, vid)?;
        self.db
            .versions()
            .write_body(&mut self.tx, vid, tag, body)?;
        self.events.push(Event::Updated { oid, vid, tag });
        Ok(())
    }

    /// Type-erased [`pdelete`](Self::pdelete).
    pub fn pdelete_raw(&mut self, oid: ode_object::Oid) -> Result<()> {
        let tag = self.db.versions().object_meta(&mut self.tx, oid)?.tag;
        self.db.versions().delete_object(&mut self.tx, oid)?;
        self.events.push(Event::ObjectDeleted { oid, tag });
        Ok(())
    }

    /// Type-erased [`pdelete_version`](Self::pdelete_version).
    pub fn pdelete_version_raw(&mut self, vid: ode_object::Vid) -> Result<()> {
        let oid = self.db.versions().object_of(&mut self.tx, vid)?;
        let tag = self.db.versions().object_meta(&mut self.tx, oid)?.tag;
        self.db.versions().delete_version(&mut self.tx, vid)?;
        self.events.push(Event::VersionDeleted { oid, vid, tag });
        Ok(())
    }

    /// `pdelete p`: delete the object **and all its versions**.
    pub fn pdelete<T: OdeType>(&mut self, ptr: ObjPtr<T>) -> Result<()> {
        self.db.versions().delete_object(&mut self.tx, ptr.oid)?;
        self.events.push(Event::ObjectDeleted {
            oid: ptr.oid,
            tag: ObjPtr::<T>::tag(),
        });
        Ok(())
    }

    /// `pdelete vp`: delete one specific version, splicing the temporal
    /// and derived-from relationships around it. Deleting the last
    /// version is refused ([`VersionError::LastVersion`]); use
    /// [`Txn::pdelete`].
    pub fn pdelete_version<T: OdeType>(&mut self, vp: VersionPtr<T>) -> Result<()> {
        let oid = self.db.versions().object_of(&mut self.tx, vp.vid)?;
        self.db.versions().delete_version(&mut self.tx, vp.vid)?;
        self.events.push(Event::VersionDeleted {
            oid,
            vid: vp.vid,
            tag: VersionPtr::<T>::tag(),
        });
        Ok(())
    }

    /// Commit the transaction, making every change durable, then fire
    /// triggers for the committed events.
    pub fn commit(self) -> Result<()> {
        // The storage engine advances the snapshot epoch inside the
        // commit's publish step, before `commit()` returns (and so
        // before any caller acknowledges this commit to anyone):
        // readers that sample the epoch after the ack are guaranteed to
        // see a value newer than any cache entry built from pre-commit
        // state.
        self.tx.commit()?;
        self.db.fire(&self.events);
        Ok(())
    }

    /// Commit exactly once, never retrying: the explicit escape hatch
    /// from [`Database::transact`]'s retry loop for callers that want
    /// to observe a conflict themselves (to merge, give up, or apply
    /// their own policy).
    ///
    /// For an optimistic transaction this is what [`Txn::commit`] does
    /// anyway — a conflicted transaction's reads are stale, so the
    /// engine can only abort it; re-submitting the same write set would
    /// overwrite the winning transaction's changes. The separate name
    /// exists so call sites opting out of retries say so.
    pub fn commit_once(self) -> Result<()> {
        self.commit()
    }

    /// Whether this transaction validates optimistically at commit
    /// (begun via [`Database::begin_optimistic`]) rather than holding
    /// the exclusive write lock.
    pub fn is_optimistic(&self) -> bool {
        self.tx.is_optimistic()
    }

    /// Events recorded so far (fired on commit; inspection aid).
    pub fn pending_events(&self) -> &[Event] {
        &self.events
    }
}

// Silence the unused-import lint for VersionError used in doc comments.
#[allow(unused)]
fn _doc_refs(e: VersionError) {}
