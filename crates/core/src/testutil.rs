//! Temporary-database helpers shared by tests, doctests, and examples.
//!
//! Creating a throwaway database used to mean a hand-rolled unique
//! temp path plus manual cleanup of both the database file and its
//! `.wal` sidecar; [`tempdb`] packages that dance. The returned
//! [`TempDb`] derefs to [`Database`] and removes both files on drop.

use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Database, DatabaseOptions};

static NEXT_DB: AtomicU64 = AtomicU64::new(0);

/// A unique, not-yet-existing path in the system temp directory.
pub fn fresh_path() -> PathBuf {
    let n = NEXT_DB.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ode-test-{}-{n}.odb", std::process::id()))
}

/// Create a temporary database with default options.
pub fn tempdb() -> TempDb {
    tempdb_with(DatabaseOptions::default())
}

/// Create a temporary database with the given options (tests that
/// hammer commits usually want [`DatabaseOptions::no_sync`]).
pub fn tempdb_with(options: DatabaseOptions) -> TempDb {
    let path = fresh_path();
    let db = Database::create(&path, options.clone()).expect("create temporary database");
    TempDb {
        db: Some(db),
        path,
        options,
    }
}

/// A [`Database`] at a unique temp path, deleted (with its WAL) on
/// drop.
pub struct TempDb {
    db: Option<Database>,
    path: PathBuf,
    options: DatabaseOptions,
}

impl TempDb {
    /// The database file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The open database. Panics after [`TempDb::close`].
    pub fn db(&self) -> &Database {
        self.db.as_ref().expect("temporary database is closed")
    }

    /// Close the database, keeping its files — for crash-recovery and
    /// reopen tests. Follow with [`TempDb::reopen`].
    pub fn close(&mut self) {
        self.db = None;
    }

    /// Reopen the (closed or open) database from its files, running
    /// recovery as a real restart would.
    pub fn reopen(&mut self) {
        self.db = None;
        let db =
            Database::open(&self.path, self.options.clone()).expect("reopen temporary database");
        self.db = Some(db);
    }
}

impl Deref for TempDb {
    type Target = Database;

    fn deref(&self) -> &Database {
        self.db()
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        self.db = None;
        let _ = std::fs::remove_file(&self.path);
        let mut wal = self.path.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(PathBuf::from(wal));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_codec::{impl_persist_struct, impl_type_name};

    #[derive(Debug, Clone, PartialEq)]
    struct Probe {
        n: u64,
    }
    impl_persist_struct!(Probe { n });
    impl_type_name!(Probe = "testutil/Probe");

    #[test]
    fn tempdb_cleans_up_its_files() {
        let (path, wal) = {
            let db = tempdb();
            let mut txn = db.begin();
            txn.pnew(&Probe { n: 42 }).unwrap();
            txn.commit().unwrap();
            let mut wal = db.path().to_path_buf().into_os_string();
            wal.push(".wal");
            (db.path().to_path_buf(), PathBuf::from(wal))
        };
        assert!(!path.exists(), "database file should be removed on drop");
        assert!(!wal.exists(), "wal file should be removed on drop");
    }

    #[test]
    fn tempdb_survives_reopen() {
        let mut db = tempdb();
        let ptr = {
            let mut txn = db.begin();
            let ptr = txn.pnew(&Probe { n: 7 }).unwrap();
            txn.commit().unwrap();
            ptr
        };
        db.reopen();
        let mut snap = db.snapshot();
        assert_eq!(snap.deref(&ptr).unwrap().n, 7);
    }
}
