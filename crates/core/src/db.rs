//! The database handle.

use std::path::Path;
use std::sync::Arc;

use ode_storage::{Store, StoreOptions, StoreStats};
use ode_version::{ChainConfig, MaterializeCache, Result, VersionStore, VersionStoreLayout};

use crate::event::{Event, TriggerId, TriggerRegistry};
use crate::ptr::ObjPtr;
use crate::txn::{Snapshot, Txn};
use crate::OdeType;

/// Bodies the materialization cache holds — enough for a hot working
/// set of historical versions without rivaling the buffer pool.
const MATERIALIZE_CACHE_CAP: usize = 1024;

/// Tuning options for a [`Database`].
#[derive(Debug, Clone, Default)]
pub struct DatabaseOptions {
    /// Storage-engine options (buffer pool size, fsync policy,
    /// checkpoint threshold).
    pub storage: StoreOptions,
    /// Delta-chain version storage. `None` (the default) stores every
    /// version body whole, exactly as before; `Some(config)` stores an
    /// object's second and later versions as one anchored delta chain
    /// record. Opt-in per store: an existing whole-body database opened
    /// with a config keeps its old records and chains new versions
    /// (and a chained database opened without one stays correct — the
    /// stored chains are always honored).
    pub chain: Option<ChainConfig>,
}

impl DatabaseOptions {
    /// Benchmark preset: no fsync on commit (results are still crash
    /// consistent up to the last synced commit, just not durable to the
    /// very last transaction).
    pub fn no_sync() -> DatabaseOptions {
        DatabaseOptions {
            storage: StoreOptions {
                sync_on_commit: false,
                ..StoreOptions::default()
            },
            chain: None,
        }
    }

    /// Enable delta-chain version storage with `config`.
    pub fn with_chain(mut self, config: ChainConfig) -> DatabaseOptions {
        self.chain = Some(config);
        self
    }
}

/// How [`Database::transact`] paces re-execution after write conflicts.
///
/// The first attempt runs immediately; each retry sleeps the current
/// backoff (starting at [`RetryPolicy::backoff`], doubling up to
/// [`RetryPolicy::max_backoff`]) before re-running the closure against
/// fresh reads. Zero `backoff` retries hot, which is only sensible in
/// deterministic tests.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub backoff: std::time::Duration,
    /// Backoff growth cap.
    pub max_backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 16,
            backoff: std::time::Duration::from_micros(50),
            max_backoff: std::time::Duration::from_millis(5),
        }
    }
}

/// An Ode database: persistent, versioned objects in a single file (plus
/// its write-ahead log).
///
/// Mirrors the paper's persistence model: objects created with
/// [`Txn::pnew`] "automatically persist across program invocations" —
/// reopen the same path and every committed object and version is
/// there.
pub struct Database {
    store: Store,
    versions: VersionStore,
    triggers: TriggerRegistry,
    materialize_cache: MaterializeCache,
}

fn version_store(options: &DatabaseOptions) -> VersionStore {
    match options.chain {
        Some(config) => VersionStore::with_chain(VersionStoreLayout::default(), config),
        None => VersionStore::new(VersionStoreLayout::default()),
    }
}

impl Database {
    /// Create a new database file at `path`, erasing any existing one.
    pub fn create(path: impl AsRef<Path>, options: DatabaseOptions) -> Result<Database> {
        let store = Store::create(path, options.storage.clone())?;
        Ok(Database {
            store,
            versions: version_store(&options),
            triggers: TriggerRegistry::default(),
            materialize_cache: MaterializeCache::new(MATERIALIZE_CACHE_CAP),
        })
    }

    /// Open an existing database (running crash recovery if needed).
    pub fn open(path: impl AsRef<Path>, options: DatabaseOptions) -> Result<Database> {
        let store = Store::open(path, options.storage.clone())?;
        Ok(Database {
            store,
            versions: version_store(&options),
            triggers: TriggerRegistry::default(),
            materialize_cache: MaterializeCache::new(MATERIALIZE_CACHE_CAP),
        })
    }

    /// Open `path`, creating it when absent.
    pub fn open_or_create(path: impl AsRef<Path>, options: DatabaseOptions) -> Result<Database> {
        let store = Store::open_or_create(path, options.storage.clone())?;
        Ok(Database {
            store,
            versions: version_store(&options),
            triggers: TriggerRegistry::default(),
            materialize_cache: MaterializeCache::new(MATERIALIZE_CACHE_CAP),
        })
    }

    /// Begin an exclusive read-write transaction. Writers serialize on
    /// the storage engine's write mutex; concurrent snapshots are
    /// unaffected, and the transaction can never hit a write conflict.
    pub fn begin(&self) -> Txn<'_> {
        Txn::new(self, self.store.begin())
    }

    /// Begin an *optimistic* read-write transaction: no lock is taken,
    /// so any number run concurrently, each building a private write
    /// set. Commit validates the pages it read and wrote against
    /// commits that landed in the meantime (first-committer-wins);
    /// a loser aborts with a [`write conflict`](crate::Error::is_write_conflict)
    /// and must be **re-executed from the start** — use
    /// [`Database::transact`] for the standard retry loop.
    pub fn begin_optimistic(&self) -> Txn<'_> {
        Txn::new(self, self.store.begin_optimistic())
    }

    /// Run `body` in an optimistic transaction, retrying with
    /// exponential backoff while it loses validation races.
    ///
    /// Each attempt gets a **fresh** transaction and re-executes the
    /// closure — re-submitting a stale write set would silently undo
    /// the winner's changes (the classic lost update), which is why
    /// [`Txn::commit`] itself never retries. Conflicts surfaced by the
    /// closure's own reads retry the same way as commit-time conflicts;
    /// every other error aborts immediately and propagates. Triggers
    /// fire once, after the attempt that commits.
    ///
    /// Returns the closure's value from the committing attempt, or the
    /// last conflict once [`RetryPolicy::max_attempts`] is exhausted.
    pub fn transact<R>(
        &self,
        policy: RetryPolicy,
        mut body: impl FnMut(&mut Txn<'_>) -> Result<R>,
    ) -> Result<R> {
        let mut backoff = policy.backoff;
        let mut last = None;
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                self.store.note_write_retry();
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(policy.max_backoff);
                }
            }
            let mut txn = self.begin_optimistic();
            match body(&mut txn) {
                Ok(value) => match txn.commit() {
                    Ok(()) => return Ok(value),
                    Err(e) if e.is_write_conflict() => last = Some(e),
                    Err(e) => return Err(e),
                },
                Err(e) if e.is_write_conflict() => {
                    drop(txn);
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("retry loop runs at least once"))
    }

    /// Begin a read-only snapshot. Snapshots take no exclusive lock:
    /// any number run in parallel, with each other and with a writer's
    /// build phase.
    pub fn snapshot(&self) -> Snapshot<'_> {
        Snapshot::new(self, self.store.read())
    }

    /// Force a checkpoint (dirty pages to the database file, WAL reset).
    pub fn checkpoint(&self) -> Result<()> {
        Ok(self.store.checkpoint()?)
    }

    /// Register a trigger on one object: `handler` runs after every
    /// committed transaction that changed it.
    pub fn on_object<T: OdeType>(
        &self,
        ptr: ObjPtr<T>,
        handler: impl Fn(&Event) + Send + Sync + 'static,
    ) -> TriggerId {
        self.triggers.on_object(ptr.oid, Arc::new(handler))
    }

    /// Register a trigger on every object of type `T`.
    pub fn on_type<T: OdeType>(
        &self,
        handler: impl Fn(&Event) + Send + Sync + 'static,
    ) -> TriggerId {
        self.triggers.on_type(ObjPtr::<T>::tag(), Arc::new(handler))
    }

    /// Remove a trigger. Returns whether it was still registered.
    pub fn remove_trigger(&self, id: TriggerId) -> bool {
        self.triggers.remove(id)
    }

    /// Number of triggers that would fire for events on this object
    /// (object-scoped plus type-scoped handlers).
    pub fn trigger_count<T: OdeType>(&self, ptr: ObjPtr<T>) -> usize {
        self.triggers.handler_count(ptr.oid, ObjPtr::<T>::tag())
    }

    pub(crate) fn versions(&self) -> &VersionStore {
        &self.versions
    }

    pub(crate) fn materialize_cache(&self) -> &MaterializeCache {
        &self.materialize_cache
    }

    /// Materialization-cache hit/miss counters: how often a snapshot
    /// read of a delta-chained historical version was served from the
    /// in-memory cache vs replayed from the chain. Always `(0, 0)` for
    /// whole-body databases.
    pub fn materialize_cache_counters(&self) -> (u64, u64) {
        self.materialize_cache.counters()
    }

    pub(crate) fn fire(&self, events: &[Event]) {
        self.triggers.fire(events);
    }

    /// The current snapshot epoch.
    ///
    /// Monotone; advanced by every committed write transaction before
    /// [`Txn::commit`] returns. Two equal observations bracket a span in
    /// which no transaction committed, so any data read from a snapshot
    /// opened in between is still current — the contract read-side
    /// caches (e.g. the network server's snapshot cache) rely on.
    /// Sample the epoch *before* opening the snapshot (or use
    /// [`Snapshot::epoch`], which is stamped atomically with snapshot
    /// creation): a commit racing in between then tags the cached data
    /// with an already-stale epoch, which is the safe direction.
    ///
    /// The value is the storage engine's commit epoch, bumped inside
    /// the publish step of each commit — so it agrees exactly with what
    /// concurrent snapshots can observe.
    pub fn snapshot_epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// Buffer pool statistics (bench instrumentation).
    pub fn buffer_stats(&self) -> ode_storage::buffer::BufferStats {
        self.store.buffer_stats()
    }

    /// Storage-engine contention and commit statistics: read/write
    /// transaction counts, lock-wait totals for both sides of the
    /// snapshot gate, and WAL/group-commit fsync counters.
    pub fn storage_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Current WAL length in bytes (bench instrumentation).
    pub fn wal_len(&self) -> u64 {
        self.store.wal_len()
    }

    // -- replication tap (forwarded to the storage engine; used by the
    // -- `ode-repl` shipping hub and replica apply loop) ---------------------

    /// Checkpoint and copy the page file for bootstrapping a replica.
    pub fn repl_snapshot(&self) -> Result<ode_storage::ReplSnapshot> {
        Ok(self.store.repl_snapshot()?)
    }

    /// Read up to `max` shippable WAL bytes from logical position `from`.
    pub fn read_wal_span(&self, from: u64, max: usize) -> Result<ode_storage::WalSpan> {
        Ok(self.store.read_wal_span(from, max)?)
    }

    /// Block until WAL bytes past `from` are shippable (or `timeout`).
    pub fn wait_shippable(&self, from: u64, timeout: std::time::Duration) -> u64 {
        self.store.wait_shippable(from, timeout)
    }

    /// Block until the applied epoch reaches `floor` (or `timeout`);
    /// returns the epoch either way.
    pub fn wait_for_epoch(&self, floor: u64, timeout: std::time::Duration) -> u64 {
        self.store.wait_for_epoch(floor, timeout)
    }

    /// Install a snapshot shipped from a primary, replacing this
    /// database's entire state.
    pub fn replica_install_snapshot(
        &self,
        db_bytes: &[u8],
        base_pos: u64,
        epoch: u64,
    ) -> Result<()> {
        Ok(self
            .store
            .replica_install_snapshot(db_bytes, base_pos, epoch)?)
    }

    /// Ingest raw shipped WAL bytes, applying every commit they
    /// complete.
    pub fn replica_ingest(&self, bytes: &[u8]) -> Result<ode_storage::IngestOutcome> {
        Ok(self.store.replica_ingest(bytes)?)
    }

    /// Promote a replica to primary (fence the log at the last applied
    /// commit; idempotent).
    pub fn promote_to_primary(&self) -> Result<()> {
        Ok(self.store.promote_to_primary()?)
    }

    /// Count WAL bytes shipped to replicas (hub instrumentation).
    pub fn note_bytes_shipped(&self, n: u64) {
        self.store.note_bytes_shipped(n)
    }

    /// Record the current worst replica lag in epochs (hub gauge).
    pub fn set_replica_lag_epochs(&self, lag: u64) {
        self.store.set_replica_lag_epochs(lag)
    }
}
