//! Concurrent snapshot consistency battery.
//!
//! The engine's contract: a read transaction observes exactly one
//! committed epoch — every page it resolves comes from the same
//! committed prefix, never a torn commit, and the epoch it reports
//! uniquely names that state. These tests hammer that contract with
//! parallel readers against a committing writer, and with a
//! property-based interleaving of begin/commit/abort/snapshot
//! observations against a reference model.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};

use ode_storage::{PageBuf, PageId, PageRead, PageWrite, Store, StoreOptions};
use proptest::prelude::*;

fn temp_db(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ode-conc-{name}-{}", std::process::id()));
    cleanup(&p);
    p
}

fn cleanup(p: &Path) {
    let _ = std::fs::remove_file(p);
    let mut wal = p.as_os_str().to_owned();
    wal.push(".wal");
    let _ = std::fs::remove_file(PathBuf::from(wal));
}

/// Commit generation `g` into every page atomically: each page gets the
/// generation plus a per-page salt, so a torn read (pages from two
/// different commits) is detectable from the values alone.
fn write_generation(store: &Store, pages: &[PageId], g: u64) {
    let mut tx = store.begin();
    for (i, &id) in pages.iter().enumerate() {
        let page = tx.page_mut(id).unwrap();
        page.write_u64(16, g);
        page.write_u64(24, g.wrapping_mul(31).wrapping_add(i as u64));
    }
    tx.commit().unwrap();
}

fn read_generation(r: &mut ode_storage::ReadTx<'_>, pages: &[PageId]) -> u64 {
    let mut gen = None;
    for (i, &id) in pages.iter().enumerate() {
        let page = r.page(id).unwrap();
        let g = page.read_u64(16);
        assert_eq!(
            page.read_u64(24),
            g.wrapping_mul(31).wrapping_add(i as u64),
            "page {id:?} internally inconsistent"
        );
        match gen {
            None => gen = Some(g),
            Some(prev) => assert_eq!(prev, g, "torn read: pages from different commits"),
        }
    }
    gen.unwrap()
}

/// N readers continuously snapshot while a writer commits multi-page
/// transactions. Every snapshot must observe a whole commit (all pages
/// agree on the generation), generations must be monotone per reader,
/// and one epoch must always denote one generation, across all readers.
#[test]
fn readers_never_observe_torn_commits() {
    let path = temp_db("torn");
    let store = Store::create(
        &path,
        StoreOptions {
            sync_on_commit: false,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    let pages: Vec<PageId> = {
        let mut tx = store.begin();
        let pages: Vec<PageId> = (0..4)
            .map(|_| tx.allocate(ode_storage::page::PageKind::Heap).unwrap())
            .collect();
        tx.commit().unwrap();
        pages
    };
    write_generation(&store, &pages, 0);

    const COMMITS: u64 = 300;
    let done = AtomicBool::new(false);
    let epoch_to_gen: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());

    std::thread::scope(|scope| {
        let store = &store;
        let pages = &pages;
        let done = &done;
        let epoch_to_gen = &epoch_to_gen;
        for _ in 0..4 {
            scope.spawn(move || {
                let mut last = 0u64;
                while !done.load(Ordering::Acquire) {
                    let mut r = store.read();
                    let epoch = r.epoch();
                    let g = read_generation(&mut r, pages);
                    drop(r);
                    assert!(g >= last, "generation went backwards: {last} -> {g}");
                    last = g;
                    let mut map = epoch_to_gen.lock().unwrap();
                    if let Some(&seen) = map.get(&epoch) {
                        assert_eq!(seen, g, "one epoch mapped to two states");
                    } else {
                        map.insert(epoch, g);
                    }
                }
            });
        }
        scope.spawn(move || {
            for g in 1..=COMMITS {
                write_generation(store, pages, g);
            }
            done.store(true, Ordering::Release);
        });
    });

    // Final state: the last generation, from a fresh snapshot.
    let mut r = store.read();
    assert_eq!(read_generation(&mut r, &pages), COMMITS);
    drop(r);
    let stats = store.stats();
    assert_eq!(stats.write_txs, COMMITS + 2);
    assert!(stats.read_txs > 0);
    cleanup(&path);
}

/// Two snapshots provably overlap in time (barrier inside both) and
/// read concurrently — the seed engine's single mutex would deadlock
/// here.
#[test]
fn snapshots_overlap_in_time() {
    let path = temp_db("overlap");
    let store = Store::create(&path, StoreOptions::default()).unwrap();
    let id = {
        let mut tx = store.begin();
        let id = tx.allocate(ode_storage::page::PageKind::Heap).unwrap();
        tx.page_mut(id).unwrap().write_u64(16, 77);
        tx.commit().unwrap();
        id
    };
    let barrier = Barrier::new(2);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let (store, barrier) = (&store, &barrier);
            scope.spawn(move || {
                let mut r = store.read();
                // Both threads hold open snapshots here, simultaneously.
                barrier.wait();
                assert_eq!(r.page(id).unwrap().read_u64(16), 77);
                barrier.wait();
            });
        }
    });
    cleanup(&path);
}

/// Readers pay no write amplification: concurrent snapshots resolving
/// the same page share one buffer-pool frame (misses ≈ distinct pages,
/// not distinct readers).
#[test]
fn concurrent_reads_share_pool_frames() {
    let path = temp_db("sharedframes");
    let store = Store::create(&path, StoreOptions::default()).unwrap();
    let id = {
        let mut tx = store.begin();
        let id = tx.allocate(ode_storage::page::PageKind::Heap).unwrap();
        tx.page_mut(id).unwrap().write_u64(16, 5);
        tx.commit().unwrap();
        id
    };
    store.checkpoint().unwrap();
    let before = store.buffer_stats();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let store = &store;
            scope.spawn(move || {
                for _ in 0..50 {
                    let mut r = store.read();
                    assert_eq!(r.page(id).unwrap().read_u64(16), 5);
                }
            });
        }
    });
    let after = store.buffer_stats();
    assert!(
        after.misses == before.misses,
        "published frame was re-read from disk: {} -> {} misses",
        before.misses,
        after.misses
    );
    assert!(after.hits >= before.hits + 400);
    cleanup(&path);
}

// ---------------------------------------------------------------------------
// Property-based interleavings
// ---------------------------------------------------------------------------

/// One scripted step of the interleaving.
#[derive(Debug, Clone)]
enum Step {
    /// Begin a write transaction applying these (slot, value) writes,
    /// then commit (`true`) or abort (`false`).
    Write(Vec<(u8, u64)>, bool),
    /// Open a snapshot and compare every slot against the model; also
    /// record the (epoch, model-state) observation.
    Observe,
    /// Force a checkpoint (must not change any observable state).
    Checkpoint,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (
            proptest::collection::vec((0u8..6, any::<u64>()), 0..4),
            any::<bool>(),
        )
            .prop_map(|(writes, commit)| Step::Write(writes, commit)),
        3 => Just(Step::Observe),
        1 => Just(Step::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Interleave writes, aborts, snapshots, and checkpoints; verify a
    /// snapshot always reflects exactly the committed model, aborted
    /// writes are never visible, the epoch bumps precisely on non-empty
    /// commits, and equal epochs always denote equal states.
    #[test]
    fn interleaved_commits_and_snapshots_match_model(
        steps in proptest::collection::vec(arb_step(), 1..40),
        seed in any::<u32>(),
    ) {
        let path = temp_db(&format!("prop{seed}"));
        let store = Store::create(
            &path,
            StoreOptions { sync_on_commit: false, ..StoreOptions::default() },
        )
        .unwrap();
        // Six slots, each one page.
        let pages: Vec<PageId> = {
            let mut tx = store.begin();
            let pages: Vec<PageId> = (0..6)
                .map(|_| tx.allocate(ode_storage::page::PageKind::Heap).unwrap())
                .collect();
            tx.commit().unwrap();
            pages
        };
        let mut model = [0u64; 6];
        let mut epoch_states: HashMap<u64, [u64; 6]> = HashMap::new();
        let mut last_epoch = store.epoch();

        for step in steps {
            match step {
                Step::Write(writes, commit) => {
                    let nonempty = !writes.is_empty();
                    let mut tx = store.begin();
                    for &(slot, value) in &writes {
                        tx.page_mut(pages[slot as usize])
                            .unwrap()
                            .write_u64(16, value);
                    }
                    if commit {
                        tx.commit().unwrap();
                        if nonempty {
                            for (slot, value) in writes {
                                model[slot as usize] = value;
                            }
                            prop_assert_eq!(store.epoch(), last_epoch + 1,
                                "non-empty commit must bump the epoch exactly once");
                            last_epoch += 1;
                        } else {
                            prop_assert_eq!(store.epoch(), last_epoch,
                                "empty commit must not bump the epoch");
                        }
                    } else {
                        drop(tx); // abort
                        prop_assert_eq!(store.epoch(), last_epoch,
                            "abort must not bump the epoch");
                    }
                }
                Step::Observe => {
                    let mut r = store.read();
                    let epoch = r.epoch();
                    prop_assert_eq!(epoch, last_epoch,
                        "snapshot must observe the latest committed epoch");
                    let mut observed = [0u64; 6];
                    for (slot, &id) in pages.iter().enumerate() {
                        observed[slot] = r.page(id).unwrap().read_u64(16);
                    }
                    drop(r);
                    prop_assert_eq!(observed, model,
                        "snapshot state diverged from the committed model");
                    if let Some(prev) = epoch_states.insert(epoch, observed) {
                        prop_assert_eq!(prev, observed,
                            "same epoch observed with two different states");
                    }
                }
                Step::Checkpoint => {
                    store.checkpoint().unwrap();
                    prop_assert_eq!(store.epoch(), last_epoch,
                        "checkpoint must not bump the epoch");
                }
            }
        }
        drop(store);
        cleanup(&path);
    }

    /// The write set is truly private: while a transaction holds
    /// uncommitted writes, a snapshot opened concurrently (same thread —
    /// legal now) sees only the committed state.
    #[test]
    fn uncommitted_state_invisible(
        committed in any::<u64>(),
        uncommitted in any::<u64>(),
        commit_after in any::<bool>(),
    ) {
        // Force distinct values (the vendored proptest has no
        // prop_assume).
        let uncommitted = if committed == uncommitted {
            uncommitted ^ 1
        } else {
            uncommitted
        };
        let path = temp_db(&format!("iso{}", committed ^ uncommitted));
        let store = Store::create(
            &path,
            StoreOptions { sync_on_commit: false, ..StoreOptions::default() },
        )
        .unwrap();
        let id = {
            let mut tx = store.begin();
            let id = tx.allocate(ode_storage::page::PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().write_u64(16, committed);
            tx.commit().unwrap();
            id
        };
        let mut tx = store.begin();
        tx.page_mut(id).unwrap().write_u64(16, uncommitted);
        {
            let mut r = store.read();
            prop_assert_eq!(r.page(id).unwrap().read_u64(16), committed);
        }
        let expected = if commit_after {
            tx.commit().unwrap();
            uncommitted
        } else {
            drop(tx);
            committed
        };
        let mut r = store.read();
        prop_assert_eq!(r.page(id).unwrap().read_u64(16), expected);
        drop(r);
        drop(store);
        cleanup(&path);
    }
}

// ---------------------------------------------------------------------------
// Optimistic multi-writer battery (conflict matrix + interleavings)
// ---------------------------------------------------------------------------

use std::sync::atomic::AtomicU64;
use std::time::Duration;

use ode_storage::StorageError;

fn no_sync() -> StoreOptions {
    StoreOptions {
        sync_on_commit: false,
        ..StoreOptions::default()
    }
}

/// Allocate `n` heap pages in one exclusive transaction and zero their
/// value slot, so later optimistic transactions never touch the header
/// page (allocation reads+writes it and would serialize everything).
fn alloc_pages(store: &Store, n: usize) -> Vec<PageId> {
    let mut tx = store.begin();
    let pages: Vec<PageId> = (0..n)
        .map(|_| {
            let id = tx.allocate(ode_storage::page::PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().write_u64(16, 0);
            id
        })
        .collect();
    tx.commit().unwrap();
    pages
}

/// Conflict matrix, row 1: two optimistic writers with disjoint write
/// sets both commit, each bumping the epoch once.
#[test]
fn disjoint_optimistic_writers_both_commit() {
    let path = temp_db("occ-disjoint");
    let store = Store::create(&path, no_sync()).unwrap();
    let pages = alloc_pages(&store, 2);
    let e0 = store.epoch();
    let s0 = store.stats();

    let mut t1 = store.begin_optimistic();
    let mut t2 = store.begin_optimistic();
    t1.page_mut(pages[0]).unwrap().write_u64(16, 11);
    t2.page_mut(pages[1]).unwrap().write_u64(16, 22);
    t1.commit().unwrap();
    // t2 validates against t1's already-published commit; the write
    // sets are disjoint, so it must win too.
    t2.commit().unwrap();

    assert_eq!(store.epoch(), e0 + 2, "each winner bumps the epoch once");
    let mut r = store.read();
    assert_eq!(r.page(pages[0]).unwrap().read_u64(16), 11);
    assert_eq!(r.page(pages[1]).unwrap().read_u64(16), 22);
    drop(r);
    let s1 = store.stats();
    assert_eq!(s1.write_conflicts, s0.write_conflicts);
    assert_eq!(s1.write_txs, s0.write_txs + 2);
    cleanup(&path);
}

/// Conflict matrix, row 2: two optimistic read-modify-writes of the
/// same page — exactly one commits, the loser gets `WriteConflict`,
/// leaves no trace (no epoch bump, no WAL record that survives
/// recovery), and the conflict counter records it.
#[test]
fn same_page_conflict_loses_exactly_once() {
    let path = temp_db("occ-samepage");
    let store = Store::create(&path, no_sync()).unwrap();
    let pages = alloc_pages(&store, 1);
    {
        let mut tx = store.begin();
        tx.page_mut(pages[0]).unwrap().write_u64(16, 5);
        tx.commit().unwrap();
    }
    let e0 = store.epoch();
    let s0 = store.stats();

    let mut t1 = store.begin_optimistic();
    let mut t2 = store.begin_optimistic();
    let v1 = t1.page(pages[0]).unwrap().read_u64(16);
    let v2 = t2.page(pages[0]).unwrap().read_u64(16);
    assert_eq!((v1, v2), (5, 5));
    t1.page_mut(pages[0]).unwrap().write_u64(16, v1 + 1);
    t2.page_mut(pages[0]).unwrap().write_u64(16, v2 + 10);
    t1.commit().unwrap();
    let err = t2.commit().unwrap_err();
    assert!(
        matches!(err, StorageError::WriteConflict),
        "loser must fail with WriteConflict, got {err}"
    );

    assert_eq!(store.epoch(), e0 + 1, "the loser must not bump the epoch");
    let s1 = store.stats();
    assert_eq!(s1.write_conflicts, s0.write_conflicts + 1);
    assert_eq!(
        s1.write_txs,
        s0.write_txs + 1,
        "an aborted commit must not count as a write transaction"
    );
    let mut r = store.read();
    assert_eq!(
        r.page(pages[0]).unwrap().read_u64(16),
        6,
        "first committer wins"
    );
    drop(r);

    // The loser aborted before touching the WAL: recovery replays the
    // log and must land on the winner's state.
    drop(store);
    let store = Store::open(&path, no_sync()).unwrap();
    let mut r = store.read();
    assert_eq!(r.page(pages[0]).unwrap().read_u64(16), 6);
    drop(r);
    cleanup(&path);
}

/// A doomed optimistic transaction fails fast: once a page it already
/// read is overwritten by a committed peer, the *next* fetch reports
/// `WriteConflict` instead of handing out an incoherent mix of epochs.
#[test]
fn stale_read_fails_fast_at_next_fetch() {
    let path = temp_db("occ-failfast");
    let store = Store::create(&path, no_sync()).unwrap();
    let pages = alloc_pages(&store, 2);
    let s0 = store.stats();

    let mut t = store.begin_optimistic();
    assert_eq!(t.page(pages[0]).unwrap().read_u64(16), 0);
    {
        let mut ex = store.begin();
        ex.page_mut(pages[0]).unwrap().write_u64(16, 99);
        ex.commit().unwrap();
    }
    let err = t.page(pages[1]).unwrap_err();
    assert!(
        matches!(err, StorageError::WriteConflict),
        "stale fetch must fail fast, got {err}"
    );
    assert_eq!(store.stats().write_conflicts, s0.write_conflicts + 1);
    cleanup(&path);
}

/// Conflict matrix, row 3: read-only transactions never abort.
/// An optimistic transaction that only reads validates trivially and
/// commits even when unrelated pages churn underneath it; a `ReadTx`
/// opened across a conflicting commit serves its snapshot to the end.
#[test]
fn read_only_transactions_never_abort() {
    let path = temp_db("occ-readonly");
    let store = Store::create(&path, no_sync()).unwrap();
    let pages = alloc_pages(&store, 2);

    // Optimistic read-only: unrelated commits do not doom it.
    let mut t = store.begin_optimistic();
    assert_eq!(t.page(pages[0]).unwrap().read_u64(16), 0);
    {
        let mut ex = store.begin();
        ex.page_mut(pages[1]).unwrap().write_u64(16, 9);
        ex.commit().unwrap();
    }
    // The pinned page is stable, and a later fetch of the *changed*
    // page revalidates the (untouched) read set and sees the new value
    // — serializable: reads-only-a ordered after the commit to b.
    assert_eq!(t.page(pages[0]).unwrap().read_u64(16), 0);
    assert_eq!(t.page(pages[1]).unwrap().read_u64(16), 9);
    t.commit().unwrap();

    // ReadTx concurrent with a commit to the very pages it reads: the
    // snapshot gate holds the publish back, so it observes its epoch's
    // state for its whole lifetime and never errors.
    let barrier = Barrier::new(2);
    std::thread::scope(|scope| {
        let (store, pages, barrier) = (&store, &pages, &barrier);
        scope.spawn(move || {
            let mut r = store.read();
            assert_eq!(r.page(pages[1]).unwrap().read_u64(16), 9);
            barrier.wait(); // writer starts committing to pages[1]
                            // Still our snapshot, even with a writer waiting to publish.
            assert_eq!(r.page(pages[0]).unwrap().read_u64(16), 0);
            assert_eq!(r.page(pages[1]).unwrap().read_u64(16), 9);
        });
        barrier.wait();
        let mut ex = store.begin();
        ex.page_mut(pages[1]).unwrap().write_u64(16, 10);
        ex.commit().unwrap(); // blocks until the reader drops; no error either side
    });
    let mut r = store.read();
    assert_eq!(r.page(pages[1]).unwrap().read_u64(16), 10);
    drop(r);
    cleanup(&path);
}

/// Back-to-back winners inside one group-commit cohort each bump the
/// epoch exactly once: with a deliberate leader window, concurrent
/// optimistic writers on disjoint pages land in shared fsync cohorts,
/// and afterwards `epoch delta == committed transactions` must hold.
#[test]
fn cohort_winners_bump_epoch_once_each() {
    const WRITERS: usize = 4;
    const COMMITS: u64 = 25;
    let path = temp_db("occ-cohort");
    let store = Store::create(
        &path,
        StoreOptions {
            sync_on_commit: true,
            group_commit: true,
            group_commit_window: Duration::from_millis(1),
            ..StoreOptions::default()
        },
    )
    .unwrap();
    let pages = alloc_pages(&store, WRITERS);
    let e0 = store.epoch();
    let s0 = store.stats();

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let (store, pages) = (&store, &pages);
            scope.spawn(move || {
                for i in 1..=COMMITS {
                    let mut tx = store.begin_optimistic();
                    tx.page_mut(pages[w]).unwrap().write_u64(16, i);
                    tx.commit().unwrap(); // disjoint pages: must never conflict
                }
            });
        }
    });

    let committed = WRITERS as u64 * COMMITS;
    assert_eq!(
        store.epoch() - e0,
        committed,
        "one epoch bump per committed transaction, even inside shared cohorts"
    );
    let s1 = store.stats();
    assert_eq!(s1.write_txs - s0.write_txs, committed);
    assert_eq!(s1.write_conflicts, s0.write_conflicts);
    let mut r = store.read();
    for &id in &pages {
        assert_eq!(r.page(id).unwrap().read_u64(16), COMMITS);
    }
    drop(r);
    cleanup(&path);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// N model writers run concurrently with randomized page overlap,
    /// each a script of read-modify-write increments retried on
    /// conflict. Afterwards every page must hold exactly the sum a
    /// sequential reference execution produces (a single lost update —
    /// the classic OCC failure — breaks the sum), the write-transaction
    /// and epoch counters must equal the number of commits, and the
    /// conflict counter must equal the aborts the writers observed.
    #[test]
    fn concurrent_writers_match_sequential_model(
        scripts in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec((0usize..3, 1u64..100), 1..3),
                1..6,
            ),
            2..5,
        ),
        seed in any::<u32>(),
    ) {
        let path = temp_db(&format!("occ-prop{seed}"));
        let store = Store::create(&path, no_sync()).unwrap();
        let pages = alloc_pages(&store, 3);
        let e0 = store.epoch();
        let s0 = store.stats();
        let aborts = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for script in &scripts {
                let (store, pages, aborts) = (&store, &pages, &aborts);
                scope.spawn(move || {
                    for writes in script {
                        // Retry the whole transaction from scratch on
                        // conflict — never resubmit a stale write set.
                        loop {
                            let mut tx = store.begin_optimistic();
                            let outcome = (|| {
                                for &(slot, inc) in writes {
                                    let v = tx.page(pages[slot])?.read_u64(16);
                                    tx.page_mut(pages[slot])?
                                        .write_u64(16, v.wrapping_add(inc));
                                }
                                Ok(())
                            })();
                            let outcome = outcome.and_then(|()| tx.commit());
                            match outcome {
                                Ok(()) => break,
                                Err(StorageError::WriteConflict) => {
                                    aborts.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => panic!("unexpected commit error: {e}"),
                            }
                        }
                    }
                });
            }
        });

        // Sequential reference model: every script op applied once.
        let mut model = [0u64; 3];
        for script in &scripts {
            for writes in script {
                for &(slot, inc) in writes {
                    model[slot] = model[slot].wrapping_add(inc);
                }
            }
        }
        let mut r = store.read();
        for (slot, &id) in pages.iter().enumerate() {
            let got = r.page(id).unwrap().read_u64(16);
            prop_assert_eq!(got, model[slot],
                "lost or phantom update on slot {}", slot);
        }
        drop(r);

        let commits: u64 = scripts.iter().map(|s| s.len() as u64).sum();
        let s1 = store.stats();
        prop_assert_eq!(s1.write_txs - s0.write_txs, commits,
            "every script op must commit exactly once");
        prop_assert_eq!(store.epoch() - e0, commits,
            "aborted attempts must not bump the epoch");
        prop_assert_eq!(s1.write_conflicts - s0.write_conflicts,
            aborts.load(Ordering::Relaxed),
            "the conflict counter must match the aborts writers saw");
        drop(store);
        cleanup(&path);
    }
}

// Keep PageBuf in the imports honest (used via trait methods above).
#[allow(dead_code)]
fn _page_type(_: &PageBuf) {}
