//! Model-based property tests for the storage substrate.
//!
//! * the B+-tree must behave exactly like `BTreeMap<u64, u64>` under any
//!   operation sequence, with structural invariants intact throughout;
//! * the slotted page must behave like a `HashMap<slot, bytes>` model;
//! * the heap must round-trip arbitrary record sizes, including overflow.

use std::collections::BTreeMap;

use ode_storage::btree::BTree;
use ode_storage::heap::Heap;
use ode_storage::page::PageKind;
use ode_storage::slotted;
use ode_storage::{PageBuf, PageRead, PageWrite, Store, StoreOptions};
use proptest::prelude::*;

fn temp_store(tag: u64) -> (std::path::PathBuf, Store) {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ode-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&p);
    let mut wal = p.clone().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    let store = Store::create(&p, StoreOptions::default()).unwrap();
    (p, store)
}

fn cleanup(p: &std::path::Path) {
    let _ = std::fs::remove_file(p);
    let mut wal = p.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn arb_tree_op() -> impl Strategy<Value = TreeOp> {
    // A small key space forces overwrite/remove collisions.
    prop_oneof![
        3 => (0u64..200, any::<u64>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        1 => (0u64..200).prop_map(TreeOp::Remove),
        1 => (0u64..200).prop_map(TreeOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(arb_tree_op(), 1..300), seed: u64) {
        let (path, store) = temp_store(seed);
        let mut tx = store.begin();
        // Tiny caps so even short sequences split nodes.
        let mut tree = BTree::create(&mut tx).unwrap().with_caps(4, 4);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                TreeOp::Insert(k, v) => {
                    let old = tree.insert(&mut tx, k, v).unwrap();
                    prop_assert_eq!(old, model.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    let old = tree.remove(&mut tx, k).unwrap();
                    prop_assert_eq!(old, model.remove(&k));
                }
                TreeOp::Get(k) => {
                    prop_assert_eq!(tree.get(&mut tx, k).unwrap(), model.get(&k).copied());
                }
            }
        }
        tree.check(&mut tx).unwrap();
        let scanned = tree.scan_all(&mut tx).unwrap();
        let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(scanned, expected);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn slotted_matches_model(ops in proptest::collection::vec(
        prop_oneof![
            3 => proptest::collection::vec(any::<u8>(), 0..300).prop_map(Some),
            1 => Just(None),
        ],
        1..80,
    )) {
        let mut page = PageBuf::new(PageKind::Heap);
        slotted::init(&mut page);
        let mut model: BTreeMap<u16, Vec<u8>> = BTreeMap::new();
        let mut live: Vec<u16> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Some(data) => {
                    if slotted::can_insert(&page, data.len()) {
                        let slot = slotted::insert(&mut page, &data).unwrap();
                        model.insert(slot, data);
                        live.push(slot);
                    }
                }
                None => {
                    if !live.is_empty() {
                        let slot = live.remove(i % live.len());
                        prop_assert!(slotted::delete(&mut page, slot));
                        model.remove(&slot);
                    }
                }
            }
            // Every live record must still read back exactly.
            for (&slot, data) in &model {
                prop_assert_eq!(slotted::get(&page, slot), Some(&data[..]));
            }
            prop_assert_eq!(slotted::live_count(&page), model.len());
        }
    }

    #[test]
    fn heap_round_trips_any_size(sizes in proptest::collection::vec(0usize..20_000, 1..12), seed: u64) {
        let (path, store) = temp_store(seed.wrapping_add(1));
        let mut tx = store.begin();
        let heap = Heap::create(&mut tx).unwrap();
        let mut rids = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let data: Vec<u8> = (0..*size).map(|j| ((i + j) % 251) as u8).collect();
            let rid = heap.insert(&mut tx, &data).unwrap();
            rids.push((rid, data));
        }
        for (rid, data) in &rids {
            prop_assert_eq!(&heap.get(&mut tx, *rid).unwrap(), data);
        }
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    /// Data committed before a simulated crash (store leaked, WAL intact)
    /// is fully recovered; an uncommitted transaction leaves no trace.
    #[test]
    fn recovery_preserves_exactly_committed_state(
        committed in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..100), 1..8),
        uncommitted in proptest::collection::vec(any::<u8>(), 1..100),
        seed: u64,
    ) {
        let (path, store) = temp_store(seed.wrapping_add(2));
        let heap = {
            let mut tx = store.begin();
            let heap = Heap::create(&mut tx).unwrap();
            tx.set_root(0, heap.dir.0).unwrap();
            tx.commit().unwrap();
            heap
        };
        let mut expected = Vec::new();
        for data in &committed {
            let mut tx = store.begin();
            let rid = heap.insert(&mut tx, data).unwrap();
            tx.commit().unwrap();
            expected.push((rid, data.clone()));
        }
        {
            // This transaction never commits.
            let mut tx = store.begin();
            let _ = heap.insert(&mut tx, &uncommitted).unwrap();
        }
        std::mem::forget(store); // crash: skip Drop's checkpoint

        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        let heap = Heap::open(ode_storage::PageId(r.root(0).unwrap()));
        let mut scanned = heap.scan(&mut r).unwrap();
        scanned.sort();
        expected.sort();
        prop_assert_eq!(scanned, expected);
        drop(r);
        drop(store);
        cleanup(&path);
    }
}
