//! The snapshot gate: a writer-priority reader/writer gate that gives
//! read transactions a *cross-page consistent* view of the store.
//!
//! Readers hold the shared side for the whole life of a [`crate::store::ReadTx`];
//! a committing writer takes the exclusive side only for the instant it
//! publishes its after-images into the buffer pool and bumps the store
//! epoch.  Because publishing is atomic with respect to the gate, a
//! reader can never observe half a commit: every page it resolves comes
//! from the same committed prefix, stamped with the epoch it sampled at
//! gate entry.
//!
//! Built on `std::sync::{Mutex, Condvar}` rather than a pthread rwlock:
//! we need *writer priority* (arriving readers queue behind a waiting
//! writer, so a stream of overlapping snapshots cannot starve commits —
//! commits are short, snapshots can be long) and per-side wait counters
//! for the contention-observability stats.
//!
//! Invariants:
//! 1. `readers > 0` and `writer_active` are never true together.
//! 2. A writer waits until `readers == 0`; new readers wait while a
//!    writer is active *or waiting* (priority).
//! 3. Guard drops always rebalance: the last reader wakes one writer;
//!    a finishing writer wakes the next writer if any is waiting,
//!    otherwise all readers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

#[derive(Default)]
struct GateState {
    readers: usize,
    writer_active: bool,
    writers_waiting: usize,
}

/// Wait counters maintained by the gate (monotone totals).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GateStats {
    /// Reader acquisitions that had to block.
    pub reader_waits: u64,
    /// Total nanoseconds readers spent blocked.
    pub reader_wait_nanos: u64,
    /// Writer acquisitions that had to block.
    pub writer_waits: u64,
    /// Total nanoseconds writers spent blocked.
    pub writer_wait_nanos: u64,
}

/// A writer-priority reader/writer gate with instrumented waits.
#[derive(Default)]
pub struct SnapshotGate {
    state: Mutex<GateState>,
    /// Readers park here while a writer is active or waiting.
    readers_cv: Condvar,
    /// Writers park here while readers (or another writer) hold the gate.
    writers_cv: Condvar,
    reader_waits: AtomicU64,
    reader_wait_nanos: AtomicU64,
    writer_waits: AtomicU64,
    writer_wait_nanos: AtomicU64,
}

impl SnapshotGate {
    /// Create an open gate.
    pub fn new() -> SnapshotGate {
        SnapshotGate::default()
    }

    /// Acquire the shared side. Blocks while a writer is active or
    /// waiting (writer priority).
    pub fn read(&self) -> ReadGuard<'_> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.writer_active || state.writers_waiting > 0 {
            let start = Instant::now();
            while state.writer_active || state.writers_waiting > 0 {
                state = self
                    .readers_cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            self.reader_waits.fetch_add(1, Ordering::Relaxed);
            self.reader_wait_nanos
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        state.readers += 1;
        ReadGuard { gate: self }
    }

    /// Acquire the exclusive side. Blocks until all readers have left
    /// and no other writer holds the gate.
    pub fn write(&self) -> WriteGuard<'_> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.readers > 0 || state.writer_active {
            let start = Instant::now();
            state.writers_waiting += 1;
            while state.readers > 0 || state.writer_active {
                state = self
                    .writers_cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            state.writers_waiting -= 1;
            self.writer_waits.fetch_add(1, Ordering::Relaxed);
            self.writer_wait_nanos
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        state.writer_active = true;
        WriteGuard { gate: self }
    }

    /// Current wait counters.
    pub fn stats(&self) -> GateStats {
        GateStats {
            reader_waits: self.reader_waits.load(Ordering::Relaxed),
            reader_wait_nanos: self.reader_wait_nanos.load(Ordering::Relaxed),
            writer_waits: self.writer_waits.load(Ordering::Relaxed),
            writer_wait_nanos: self.writer_wait_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Shared-side guard; held for the life of a read transaction.
pub struct ReadGuard<'a> {
    gate: &'a SnapshotGate,
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        let mut state = self
            .gate
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.readers -= 1;
        if state.readers == 0 && state.writers_waiting > 0 {
            self.gate.writers_cv.notify_one();
        }
    }
}

/// Exclusive-side guard; held only across a commit's publish step.
pub struct WriteGuard<'a> {
    gate: &'a SnapshotGate,
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        let mut state = self
            .gate
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.writer_active = false;
        if state.writers_waiting > 0 {
            self.gate.writers_cv.notify_one();
        } else {
            self.gate.readers_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn readers_share() {
        let gate = SnapshotGate::new();
        let a = gate.read();
        let b = gate.read();
        drop(a);
        drop(b);
        let _w = gate.write();
    }

    #[test]
    fn writer_excludes_readers_and_vice_versa() {
        let gate = Arc::new(SnapshotGate::new());
        let in_write = Arc::new(AtomicBool::new(false));
        let r = gate.read();
        let t = {
            let (gate, in_write) = (Arc::clone(&gate), Arc::clone(&in_write));
            std::thread::spawn(move || {
                let _w = gate.write();
                in_write.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(20));
                in_write.store(false, Ordering::SeqCst);
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            !in_write.load(Ordering::SeqCst),
            "writer entered past a reader"
        );
        drop(r);
        // Once the reader leaves, the writer runs; a new reader must not
        // observe writer_active.
        let r2 = gate.read();
        assert!(
            !in_write.load(Ordering::SeqCst),
            "reader overlapped the writer"
        );
        drop(r2);
        t.join().unwrap();
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let gate = Arc::new(SnapshotGate::new());
        let first = gate.read();
        let writer = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _w = gate.write();
            })
        };
        // Give the writer time to start waiting, then show a fresh
        // reader queues behind it instead of starving it.
        std::thread::sleep(Duration::from_millis(20));
        let late_reader = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _r = gate.read();
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(!late_reader.is_finished(), "reader jumped a waiting writer");
        drop(first);
        writer.join().unwrap();
        late_reader.join().unwrap();
        assert!(gate.stats().writer_waits >= 1);
        assert!(gate.stats().reader_waits >= 1);
    }

    #[test]
    fn stress_mixed() {
        let gate = Arc::new(SnapshotGate::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (gate, counter) = (Arc::clone(&gate), Arc::clone(&counter));
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let _r = gate.read();
                    let v = counter.load(Ordering::SeqCst);
                    // No torn state is observable under the read side.
                    assert_eq!(v % 2, 0);
                }
            }));
        }
        for _ in 0..2 {
            let (gate, counter) = (Arc::clone(&gate), Arc::clone(&counter));
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _w = gate.write();
                    counter.fetch_add(1, Ordering::SeqCst);
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 400);
    }
}
