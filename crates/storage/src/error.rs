//! Storage-layer error type.

use std::fmt;
use std::io;

use crate::page::PageId;

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A page's stored checksum did not match its contents.
    ChecksumMismatch {
        /// The page whose checksum failed.
        page: PageId,
    },
    /// The database file is not an Ode store (bad magic / version).
    BadMagic,
    /// A page id was outside the allocated file.
    PageOutOfBounds {
        /// The offending page id.
        page: PageId,
        /// Number of pages currently allocated.
        page_count: u64,
    },
    /// A WAL record failed its CRC or framing check. Recovery treats this
    /// as the torn tail of the log and stops replay there.
    WalCorrupt {
        /// Byte offset of the bad record.
        offset: u64,
    },
    /// A record id referred to a missing or deleted slot.
    RecordNotFound {
        /// Page part of the record id.
        page: PageId,
        /// Slot index part of the record id.
        slot: u16,
    },
    /// A value did not fit where it must (e.g. slotted-page insert into a
    /// full page — callers are expected to check capacity first).
    PageFull,
    /// Decoding a stored structure failed (corruption or version skew).
    Codec(ode_codec::DecodeError),
    /// Keys in a B+-tree node violated ordering (corruption guard).
    TreeCorrupt(&'static str),
    /// The operation requires an open write transaction.
    NoTransaction,
    /// An optimistic write transaction lost its validation race: a page
    /// it read or wrote was committed by another transaction after this
    /// one began (first-committer-wins). The transaction is aborted and
    /// left no trace; the caller should re-execute it from the start —
    /// its reads may be stale, so blindly re-submitting the same write
    /// set would lose the other writer's update.
    WriteConflict,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::ChecksumMismatch { page } => {
                write!(f, "checksum mismatch on page {page}")
            }
            StorageError::BadMagic => write!(f, "not an Ode database file"),
            StorageError::PageOutOfBounds { page, page_count } => {
                write!(f, "page {page} out of bounds ({page_count} pages)")
            }
            StorageError::WalCorrupt { offset } => {
                write!(f, "WAL corrupt at offset {offset}")
            }
            StorageError::RecordNotFound { page, slot } => {
                write!(f, "record not found: page {page} slot {slot}")
            }
            StorageError::PageFull => write!(f, "page full"),
            StorageError::Codec(e) => write!(f, "codec error: {e}"),
            StorageError::TreeCorrupt(msg) => write!(f, "btree corrupt: {msg}"),
            StorageError::NoTransaction => write!(f, "no open transaction"),
            StorageError::WriteConflict => {
                write!(f, "write conflict: transaction lost its validation race")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<ode_codec::DecodeError> for StorageError {
    fn from(e: ode_codec::DecodeError) -> Self {
        StorageError::Codec(e)
    }
}
