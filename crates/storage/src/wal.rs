//! Redo-only write-ahead log.
//!
//! Commit protocol: at transaction commit the store appends the full
//! after-image of every page the transaction dirtied, then a commit
//! record, then (optionally) fsyncs.  The database file itself is only
//! updated at checkpoints, after which the log is reset.
//!
//! Framing: every record is `[u32 len][u32 crc32(payload)][payload]`.
//! Replay stops at the first frame that fails its length or CRC check —
//! that is the torn tail left by a crash mid-append, and everything
//! before it is intact by construction.
//!
//! Recovery applies the page images of *committed* transactions, in log
//! order, to the database file.  Uncommitted trailing transactions are
//! simply never applied.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use ode_codec::{from_bytes, impl_persist_enum, to_bytes};

use crate::page::PageId;
use crate::{crc32, Result, StorageError};

/// One logical record in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction began. Purely informational; replay keys off
    /// `Commit`.
    Begin {
        /// Transaction id (unique within one log generation).
        tx: u64,
    },
    /// Full after-image of one page written by transaction `tx`.
    Page {
        /// Owning transaction.
        tx: u64,
        /// Page the image belongs to.
        page: u64,
        /// The complete `PAGE_SIZE` image.
        image: Vec<u8>,
    },
    /// Transaction `tx` committed; its page images are now durable.
    Commit {
        /// Committing transaction.
        tx: u64,
    },
    /// Changed byte ranges of one page (delta logging: the storage-level
    /// "small changes have small impact"). The base is the page's state
    /// as of the previous record for it in this log generation, or the
    /// database file (= last checkpoint) if none.
    PageDelta {
        /// Owning transaction.
        tx: u64,
        /// Page the delta applies to.
        page: u64,
        /// `(offset, bytes)` write runs, ascending and non-overlapping.
        ops: Vec<(u32, Vec<u8>)>,
    },
}

impl_persist_enum!(WalRecord {
    Begin { tx },
    Page { tx, page, image },
    Commit { tx },
    PageDelta { tx, page, ops },
});

/// Append-only log writer/reader over a single file.
pub struct Wal {
    file: File,
    /// Append position (end of the last intact record).
    write_pos: u64,
}

impl Wal {
    /// Open (or create) the log at `path`. Does not replay — see
    /// [`Wal::records`].
    pub fn open(path: &Path) -> Result<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let write_pos = file.metadata()?.len();
        Ok(Wal { file, write_pos })
    }

    /// Current log size in bytes.
    pub fn len(&self) -> u64 {
        self.write_pos
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.write_pos == 0
    }

    /// Append one record (not yet durable; call [`Wal::sync`]).
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let payload = to_bytes(record);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.seek(SeekFrom::Start(self.write_pos))?;
        self.file.write_all(&frame)?;
        self.write_pos += frame.len() as u64;
        Ok(())
    }

    /// fsync the log.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// A duplicated handle to the log file that can fsync it without
    /// holding the `Wal` itself. This is what makes group commit work:
    /// the leader fsyncs through the handle while other committers keep
    /// appending through the store's write lock. Safe because the two
    /// handles share one open file description (same durability
    /// semantics as syncing `self.file`), and the log file is never
    /// replaced — [`Wal::reset`]/[`Wal::truncate_tail`] only `set_len`.
    pub fn sync_handle(&self) -> Result<WalSyncHandle> {
        Ok(WalSyncHandle {
            file: self.file.try_clone()?,
        })
    }

    /// Read every intact record from the start of the log.
    ///
    /// Returns the records and the byte offset of the torn tail, if any
    /// (i.e. the offset where a corrupt or truncated frame was found).
    /// A torn tail is *expected* after a crash and is not an error.
    pub fn records(&mut self) -> Result<(Vec<WalRecord>, Option<u64>)> {
        let file_len = self.file.metadata()?.len();
        let mut data = Vec::with_capacity(file_len as usize);
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut data)?;

        let mut records = Vec::new();
        let mut pos: usize = 0;
        loop {
            if pos == data.len() {
                return Ok((records, None));
            }
            if pos + 8 > data.len() {
                return Ok((records, Some(pos as u64)));
            }
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let body_start = pos + 8;
            let body_end = match body_start.checked_add(len) {
                Some(e) if e <= data.len() => e,
                _ => return Ok((records, Some(pos as u64))),
            };
            let payload = &data[body_start..body_end];
            if crc32(payload) != crc {
                return Ok((records, Some(pos as u64)));
            }
            match from_bytes::<WalRecord>(payload) {
                Ok(rec) => records.push(rec),
                // Framing was intact but the payload didn't parse: that is
                // real corruption, not a torn tail.
                Err(_) => return Err(StorageError::WalCorrupt { offset: pos as u64 }),
            }
            pos = body_end;
        }
    }

    /// Discard the whole log (after a checkpoint made its contents
    /// redundant).
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.write_pos = 0;
        Ok(())
    }

    /// Truncate the log at `offset`, discarding a torn tail found by
    /// [`Wal::records`] so later appends start from a clean frame
    /// boundary.
    pub fn truncate_tail(&mut self, offset: u64) -> Result<()> {
        self.file.set_len(offset)?;
        self.file.sync_data()?;
        self.write_pos = offset;
        Ok(())
    }
}

/// A standalone fsync handle for the log (see [`Wal::sync_handle`]).
pub struct WalSyncHandle {
    file: File,
}

impl WalSyncHandle {
    /// fsync the log through this handle.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// One page mutation from a committed transaction, in log order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommittedChange<'a> {
    /// Replace the whole page.
    Image(PageId, &'a Vec<u8>),
    /// Apply byte-range writes onto the page's prior state.
    Delta(PageId, &'a Vec<(u32, Vec<u8>)>),
}

/// Filter a log to the page changes of *committed* transactions, in the
/// order they must be applied.
pub fn committed_changes(records: &[WalRecord]) -> Vec<CommittedChange<'_>> {
    use std::collections::HashSet;
    let committed: HashSet<u64> = records
        .iter()
        .filter_map(|r| match r {
            WalRecord::Commit { tx } => Some(*tx),
            _ => None,
        })
        .collect();
    records
        .iter()
        .filter_map(|r| match r {
            WalRecord::Page { tx, page, image } if committed.contains(tx) => {
                Some(CommittedChange::Image(PageId(*page), image))
            }
            WalRecord::PageDelta { tx, page, ops } if committed.contains(tx) => {
                Some(CommittedChange::Delta(PageId(*page), ops))
            }
            _ => None,
        })
        .collect()
}

/// Compute the changed byte runs between two page images, merging runs
/// separated by fewer than `gap` identical bytes (run-header amortization).
pub fn page_diff_ops(before: &[u8], after: &[u8], gap: usize) -> Vec<(u32, Vec<u8>)> {
    debug_assert_eq!(before.len(), after.len());
    let mut ops: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut i = 0usize;
    let n = after.len();
    while i < n {
        if before[i] == after[i] {
            i += 1;
            continue;
        }
        // Start of a changed run; extend until `gap` unchanged bytes.
        let start = i;
        let mut end = i + 1;
        let mut same = 0usize;
        let mut j = end;
        while j < n && same < gap {
            if before[j] == after[j] {
                same += 1;
            } else {
                end = j + 1;
                same = 0;
            }
            j += 1;
        }
        ops.push((start as u32, after[start..end].to_vec()));
        i = end;
    }
    ops
}

/// Total payload bytes of a delta op list.
pub fn delta_payload_len(ops: &[(u32, Vec<u8>)]) -> usize {
    ops.iter().map(|(_, b)| b.len() + 8).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { tx: 1 },
            WalRecord::Page {
                tx: 1,
                page: 3,
                image: vec![1, 2, 3],
            },
            WalRecord::Commit { tx: 1 },
            WalRecord::Begin { tx: 2 },
            WalRecord::Page {
                tx: 2,
                page: 4,
                image: vec![9, 9],
            },
        ]
    }

    #[test]
    fn append_and_replay() {
        let path = temp_path("replay");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let (records, tear) = wal.records().unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(tear, None);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn committed_filter_drops_uncommitted() {
        let records = sample_records();
        let changes = committed_changes(&records);
        // tx 2 never committed: only tx 1's page survives.
        assert_eq!(changes.len(), 1);
        assert!(matches!(changes[0], CommittedChange::Image(PageId(3), _)));
    }

    #[test]
    fn delta_records_round_trip_and_filter() {
        let path = temp_path("delta");
        let mut wal = Wal::open(&path).unwrap();
        let rec = WalRecord::PageDelta {
            tx: 1,
            page: 7,
            ops: vec![(4, vec![1, 2]), (100, vec![9])],
        };
        wal.append(&rec).unwrap();
        wal.append(&WalRecord::Commit { tx: 1 }).unwrap();
        let (records, tear) = wal.records().unwrap();
        assert_eq!(tear, None);
        assert_eq!(records[0], rec);
        let changes = committed_changes(&records);
        assert!(matches!(changes[0], CommittedChange::Delta(PageId(7), _)));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn page_diff_ops_finds_runs() {
        let before = vec![0u8; 64];
        let mut after = before.clone();
        after[3] = 1;
        after[4] = 2;
        after[30] = 3;
        // Small gap: two separate runs.
        let ops = page_diff_ops(&before, &after, 4);
        assert_eq!(ops, vec![(3, vec![1, 2]), (30, vec![3])]);
        // Huge gap: merged into one run spanning the unchanged middle.
        let ops = page_diff_ops(&before, &after, 64);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, 3);
        assert_eq!(ops[0].1.len(), 28);
        // Identical images: no ops.
        assert!(page_diff_ops(&before, &before, 4).is_empty());
        // Reconstruction: applying ops to `before` yields `after`.
        let mut rebuilt = before.clone();
        for (off, bytes) in page_diff_ops(&before, &after, 4) {
            rebuilt[off as usize..off as usize + bytes.len()].copy_from_slice(&bytes);
        }
        assert_eq!(rebuilt, after);
    }

    #[test]
    fn torn_tail_detected_and_truncatable() {
        let path = temp_path("torn");
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
        }
        // Chop off the last 3 bytes, simulating a crash mid-append.
        let full_len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full_len - 3).unwrap();
        drop(f);

        let mut wal = Wal::open(&path).unwrap();
        let (records, tear) = wal.records().unwrap();
        assert_eq!(records.len(), sample_records().len() - 1);
        let tear = tear.expect("torn tail reported");
        wal.truncate_tail(tear).unwrap();
        // After truncation the log replays cleanly and appends work.
        let (records2, tear2) = wal.records().unwrap();
        assert_eq!(records2, records);
        assert_eq!(tear2, None);
        wal.append(&WalRecord::Commit { tx: 2 }).unwrap();
        let (records3, _) = wal.records().unwrap();
        assert_eq!(records3.len(), records.len() + 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn bitflip_in_payload_is_torn_tail() {
        let path = temp_path("bitflip");
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
        }
        // Flip a byte in the last record's payload.
        let len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new()
            .write(true)
            .read(true)
            .open(&path)
            .unwrap();
        f.seek(SeekFrom::Start(len - 1)).unwrap();
        let mut b = [0u8];
        f.read_exact(&mut b).unwrap();
        f.seek(SeekFrom::Start(len - 1)).unwrap();
        f.write_all(&[b[0] ^ 0xFF]).unwrap();
        drop(f);

        let mut wal = Wal::open(&path).unwrap();
        let (records, tear) = wal.records().unwrap();
        assert_eq!(records.len(), sample_records().len() - 1);
        assert!(tear.is_some());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reset_empties_log() {
        let path = temp_path("reset");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { tx: 1 }).unwrap();
        assert!(!wal.is_empty());
        wal.reset().unwrap();
        assert!(wal.is_empty());
        let (records, tear) = wal.records().unwrap();
        assert!(records.is_empty());
        assert_eq!(tear, None);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = temp_path("reopen");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Begin { tx: 1 }).unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Commit { tx: 1 }).unwrap();
            let (records, _) = wal.records().unwrap();
            assert_eq!(records.len(), 2);
        }
        std::fs::remove_file(path).unwrap();
    }
}
