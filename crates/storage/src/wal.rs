//! Redo-only write-ahead log.
//!
//! Commit protocol: at transaction commit the store appends the full
//! after-image of every page the transaction dirtied, then a commit
//! record, then (optionally) fsyncs.  The database file itself is only
//! updated at checkpoints, after which the log is reset.
//!
//! Framing: every record is `[u32 len][u32 crc32(payload)][payload]`.
//! Replay stops at the first frame that fails its length or CRC check —
//! that is the torn tail left by a crash mid-append, and everything
//! before it is intact by construction.
//!
//! Recovery applies the page images of *committed* transactions, in log
//! order, to the database file.  Uncommitted trailing transactions are
//! simply never applied.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use ode_codec::{from_bytes, impl_persist_enum, to_bytes};

use crate::page::PageId;
use crate::{crc32, Result, StorageError};

/// One logical record in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction began. Purely informational; replay keys off
    /// `Commit`.
    Begin {
        /// Transaction id (unique within one log generation).
        tx: u64,
    },
    /// Full after-image of one page written by transaction `tx`.
    Page {
        /// Owning transaction.
        tx: u64,
        /// Page the image belongs to.
        page: u64,
        /// The complete `PAGE_SIZE` image.
        image: Vec<u8>,
    },
    /// Transaction `tx` committed; its page images are now durable.
    Commit {
        /// Committing transaction.
        tx: u64,
    },
    /// Changed byte ranges of one page (delta logging: the storage-level
    /// "small changes have small impact"). The base is the page's state
    /// as of the previous record for it in this log generation, or the
    /// database file (= last checkpoint) if none.
    PageDelta {
        /// Owning transaction.
        tx: u64,
        /// Page the delta applies to.
        page: u64,
        /// `(offset, bytes)` write runs, ascending and non-overlapping.
        ops: Vec<(u32, Vec<u8>)>,
    },
}

impl_persist_enum!(WalRecord {
    Begin { tx },
    Page { tx, page, image },
    Commit { tx },
    PageDelta { tx, page, ops },
});

/// Append-only log writer/reader over a single file.
pub struct Wal {
    file: File,
    /// Append position (end of the last intact record).
    write_pos: u64,
}

impl Wal {
    /// Open (or create) the log at `path`. Does not replay — see
    /// [`Wal::records`].
    pub fn open(path: &Path) -> Result<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let write_pos = file.metadata()?.len();
        Ok(Wal { file, write_pos })
    }

    /// Current log size in bytes.
    pub fn len(&self) -> u64 {
        self.write_pos
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.write_pos == 0
    }

    /// Append one record (not yet durable; call [`Wal::sync`]).
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let payload = to_bytes(record);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.seek(SeekFrom::Start(self.write_pos))?;
        self.file.write_all(&frame)?;
        self.write_pos += frame.len() as u64;
        Ok(())
    }

    /// Append raw, already-framed log bytes (replication apply path: a
    /// replica receives byte-exact spans of the primary's log and lands
    /// them verbatim, so both logs agree on every frame boundary and
    /// physical position). The bytes are not validated here — the
    /// receiver parses them with a [`FrameScanner`] before trusting
    /// their contents.
    pub fn append_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.file.seek(SeekFrom::Start(self.write_pos))?;
        self.file.write_all(bytes)?;
        self.write_pos += bytes.len() as u64;
        Ok(())
    }

    /// Read up to `max` raw bytes of the log starting at `offset`
    /// (clamped to the current append position). Used by the shipping
    /// path to stream the log as an opaque byte sequence; frame
    /// boundaries are irrelevant here because the receiver reassembles
    /// them with a [`FrameScanner`].
    pub fn read_span(&mut self, offset: u64, max: usize) -> Result<Vec<u8>> {
        if offset >= self.write_pos {
            return Ok(Vec::new());
        }
        let len = ((self.write_pos - offset) as usize).min(max);
        let mut buf = vec![0u8; len];
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// fsync the log.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// A duplicated handle to the log file that can fsync it without
    /// holding the `Wal` itself. This is what makes group commit work:
    /// the leader fsyncs through the handle while other committers keep
    /// appending through the store's write lock. Safe because the two
    /// handles share one open file description (same durability
    /// semantics as syncing `self.file`), and the log file is never
    /// replaced — [`Wal::reset`]/[`Wal::truncate_tail`] only `set_len`.
    pub fn sync_handle(&self) -> Result<WalSyncHandle> {
        Ok(WalSyncHandle {
            file: self.file.try_clone()?,
        })
    }

    /// Read every intact record from the start of the log.
    ///
    /// Returns the records and the byte offset of the torn tail, if any
    /// (i.e. the offset where a corrupt or truncated frame was found).
    /// A torn tail is *expected* after a crash and is not an error.
    pub fn records(&mut self) -> Result<(Vec<WalRecord>, Option<u64>)> {
        let file_len = self.file.metadata()?.len();
        let mut data = Vec::with_capacity(file_len as usize);
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut data)?;

        let mut records = Vec::new();
        let mut pos: usize = 0;
        loop {
            if pos == data.len() {
                return Ok((records, None));
            }
            if pos + 8 > data.len() {
                return Ok((records, Some(pos as u64)));
            }
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let body_start = pos + 8;
            let body_end = match body_start.checked_add(len) {
                Some(e) if e <= data.len() => e,
                _ => return Ok((records, Some(pos as u64))),
            };
            let payload = &data[body_start..body_end];
            if crc32(payload) != crc {
                return Ok((records, Some(pos as u64)));
            }
            match from_bytes::<WalRecord>(payload) {
                Ok(rec) => records.push(rec),
                // Framing was intact but the payload didn't parse: that is
                // real corruption, not a torn tail.
                Err(_) => return Err(StorageError::WalCorrupt { offset: pos as u64 }),
            }
            pos = body_end;
        }
    }

    /// Discard the whole log (after a checkpoint made its contents
    /// redundant).
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.write_pos = 0;
        Ok(())
    }

    /// Truncate the log at `offset`, discarding a torn tail found by
    /// [`Wal::records`] so later appends start from a clean frame
    /// boundary.
    pub fn truncate_tail(&mut self, offset: u64) -> Result<()> {
        self.file.set_len(offset)?;
        self.file.sync_data()?;
        self.write_pos = offset;
        Ok(())
    }
}

/// A standalone fsync handle for the log (see [`Wal::sync_handle`]).
pub struct WalSyncHandle {
    file: File,
}

impl WalSyncHandle {
    /// fsync the log through this handle.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// Incremental frame parser over a log byte stream.
///
/// A replica feeds raw shipped spans in with [`FrameScanner::push`] and
/// drains complete records with [`FrameScanner::next_record`]; a span
/// ending mid-frame simply leaves a partial tail buffered until the
/// next push. Unlike [`Wal::records`], a CRC mismatch on a *complete*
/// frame is a hard error here: the stream is a byte-exact copy of
/// frames the primary already fsynced intact, so a bad frame means the
/// transport (not a crash) corrupted it.
#[derive(Debug, Default)]
pub struct FrameScanner {
    buf: Vec<u8>,
    /// Bytes consumed as complete frames since construction.
    consumed: u64,
}

impl FrameScanner {
    /// A scanner with nothing buffered.
    pub fn new() -> FrameScanner {
        FrameScanner::default()
    }

    /// Buffer more stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Total bytes consumed as complete frames (the scanner's position
    /// in the stream, counting from where it started).
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Bytes buffered but not yet part of a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Parse the next complete record off the front of the buffer, or
    /// `None` if only a partial frame is buffered.
    pub fn next_record(&mut self) -> Result<Option<WalRecord>> {
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes"));
        let frame_len = match len.checked_add(8) {
            Some(l) => l,
            None => {
                return Err(StorageError::WalCorrupt {
                    offset: self.consumed,
                })
            }
        };
        if self.buf.len() < frame_len {
            return Ok(None);
        }
        let payload = &self.buf[8..frame_len];
        if crc32(payload) != crc {
            return Err(StorageError::WalCorrupt {
                offset: self.consumed,
            });
        }
        let record = from_bytes::<WalRecord>(payload).map_err(|_| StorageError::WalCorrupt {
            offset: self.consumed,
        })?;
        self.buf.drain(..frame_len);
        self.consumed += frame_len as u64;
        Ok(Some(record))
    }
}

/// One page mutation from a committed transaction, in log order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommittedChange<'a> {
    /// Replace the whole page.
    Image(PageId, &'a Vec<u8>),
    /// Apply byte-range writes onto the page's prior state.
    Delta(PageId, &'a Vec<(u32, Vec<u8>)>),
}

/// Filter a log to the page changes of *committed* transactions, in the
/// order they must be applied.
pub fn committed_changes(records: &[WalRecord]) -> Vec<CommittedChange<'_>> {
    use std::collections::HashSet;
    let committed: HashSet<u64> = records
        .iter()
        .filter_map(|r| match r {
            WalRecord::Commit { tx } => Some(*tx),
            _ => None,
        })
        .collect();
    records
        .iter()
        .filter_map(|r| match r {
            WalRecord::Page { tx, page, image } if committed.contains(tx) => {
                Some(CommittedChange::Image(PageId(*page), image))
            }
            WalRecord::PageDelta { tx, page, ops } if committed.contains(tx) => {
                Some(CommittedChange::Delta(PageId(*page), ops))
            }
            _ => None,
        })
        .collect()
}

/// Compute the changed byte runs between two page images, merging runs
/// separated by fewer than `gap` identical bytes (run-header amortization).
pub fn page_diff_ops(before: &[u8], after: &[u8], gap: usize) -> Vec<(u32, Vec<u8>)> {
    debug_assert_eq!(before.len(), after.len());
    let mut ops: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut i = 0usize;
    let n = after.len();
    while i < n {
        if before[i] == after[i] {
            i += 1;
            continue;
        }
        // Start of a changed run; extend until `gap` unchanged bytes.
        let start = i;
        let mut end = i + 1;
        let mut same = 0usize;
        let mut j = end;
        while j < n && same < gap {
            if before[j] == after[j] {
                same += 1;
            } else {
                end = j + 1;
                same = 0;
            }
            j += 1;
        }
        ops.push((start as u32, after[start..end].to_vec()));
        i = end;
    }
    ops
}

/// Total payload bytes of a delta op list.
pub fn delta_payload_len(ops: &[(u32, Vec<u8>)]) -> usize {
    ops.iter().map(|(_, b)| b.len() + 8).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { tx: 1 },
            WalRecord::Page {
                tx: 1,
                page: 3,
                image: vec![1, 2, 3],
            },
            WalRecord::Commit { tx: 1 },
            WalRecord::Begin { tx: 2 },
            WalRecord::Page {
                tx: 2,
                page: 4,
                image: vec![9, 9],
            },
        ]
    }

    #[test]
    fn append_and_replay() {
        let path = temp_path("replay");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let (records, tear) = wal.records().unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(tear, None);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn committed_filter_drops_uncommitted() {
        let records = sample_records();
        let changes = committed_changes(&records);
        // tx 2 never committed: only tx 1's page survives.
        assert_eq!(changes.len(), 1);
        assert!(matches!(changes[0], CommittedChange::Image(PageId(3), _)));
    }

    #[test]
    fn delta_records_round_trip_and_filter() {
        let path = temp_path("delta");
        let mut wal = Wal::open(&path).unwrap();
        let rec = WalRecord::PageDelta {
            tx: 1,
            page: 7,
            ops: vec![(4, vec![1, 2]), (100, vec![9])],
        };
        wal.append(&rec).unwrap();
        wal.append(&WalRecord::Commit { tx: 1 }).unwrap();
        let (records, tear) = wal.records().unwrap();
        assert_eq!(tear, None);
        assert_eq!(records[0], rec);
        let changes = committed_changes(&records);
        assert!(matches!(changes[0], CommittedChange::Delta(PageId(7), _)));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn page_diff_ops_finds_runs() {
        let before = vec![0u8; 64];
        let mut after = before.clone();
        after[3] = 1;
        after[4] = 2;
        after[30] = 3;
        // Small gap: two separate runs.
        let ops = page_diff_ops(&before, &after, 4);
        assert_eq!(ops, vec![(3, vec![1, 2]), (30, vec![3])]);
        // Huge gap: merged into one run spanning the unchanged middle.
        let ops = page_diff_ops(&before, &after, 64);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, 3);
        assert_eq!(ops[0].1.len(), 28);
        // Identical images: no ops.
        assert!(page_diff_ops(&before, &before, 4).is_empty());
        // Reconstruction: applying ops to `before` yields `after`.
        let mut rebuilt = before.clone();
        for (off, bytes) in page_diff_ops(&before, &after, 4) {
            rebuilt[off as usize..off as usize + bytes.len()].copy_from_slice(&bytes);
        }
        assert_eq!(rebuilt, after);
    }

    #[test]
    fn torn_tail_detected_and_truncatable() {
        let path = temp_path("torn");
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
        }
        // Chop off the last 3 bytes, simulating a crash mid-append.
        let full_len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full_len - 3).unwrap();
        drop(f);

        let mut wal = Wal::open(&path).unwrap();
        let (records, tear) = wal.records().unwrap();
        assert_eq!(records.len(), sample_records().len() - 1);
        let tear = tear.expect("torn tail reported");
        wal.truncate_tail(tear).unwrap();
        // After truncation the log replays cleanly and appends work.
        let (records2, tear2) = wal.records().unwrap();
        assert_eq!(records2, records);
        assert_eq!(tear2, None);
        wal.append(&WalRecord::Commit { tx: 2 }).unwrap();
        let (records3, _) = wal.records().unwrap();
        assert_eq!(records3.len(), records.len() + 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn bitflip_in_payload_is_torn_tail() {
        let path = temp_path("bitflip");
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
        }
        // Flip a byte in the last record's payload.
        let len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new()
            .write(true)
            .read(true)
            .open(&path)
            .unwrap();
        f.seek(SeekFrom::Start(len - 1)).unwrap();
        let mut b = [0u8];
        f.read_exact(&mut b).unwrap();
        f.seek(SeekFrom::Start(len - 1)).unwrap();
        f.write_all(&[b[0] ^ 0xFF]).unwrap();
        drop(f);

        let mut wal = Wal::open(&path).unwrap();
        let (records, tear) = wal.records().unwrap();
        assert_eq!(records.len(), sample_records().len() - 1);
        assert!(tear.is_some());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reset_empties_log() {
        let path = temp_path("reset");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { tx: 1 }).unwrap();
        assert!(!wal.is_empty());
        wal.reset().unwrap();
        assert!(wal.is_empty());
        let (records, tear) = wal.records().unwrap();
        assert!(records.is_empty());
        assert_eq!(tear, None);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn torn_final_record_at_every_cut_point() {
        // A crash can land anywhere inside the final frame: inside the
        // 8-byte header, inside the payload, or right at the frame
        // boundary. Every cut short of a full frame must replay the
        // prefix and report the tear at the final frame's start.
        let intact = temp_path("cuts-intact");
        let intact_len = {
            let mut wal = Wal::open(&intact).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.len()
        };
        let probe_path = temp_path("cuts-probe");
        let before_last = {
            let mut wal = Wal::open(&intact).unwrap();
            let mut probe = Wal::open(&probe_path).unwrap();
            let all = sample_records();
            for r in &all[..all.len() - 1] {
                probe.append(r).unwrap();
            }
            let len = probe.len();
            let (records, tear) = wal.records().unwrap();
            assert_eq!(records, all);
            assert_eq!(tear, None);
            len
        };
        // Cutting exactly at the boundary is a clean (shorter) log, not
        // a tear — start one byte past it.
        for cut in before_last + 1..intact_len {
            let path = temp_path("cuts");
            std::fs::copy(&intact, &path).unwrap();
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let mut wal = Wal::open(&path).unwrap();
            let (records, tear) = wal.records().unwrap();
            assert_eq!(records, sample_records()[..sample_records().len() - 1]);
            assert_eq!(tear, Some(before_last), "cut at byte {cut}");
            std::fs::remove_file(path).unwrap();
        }
        std::fs::remove_file(intact).unwrap();
        std::fs::remove_file(probe_path).unwrap();
    }

    #[test]
    fn truncate_then_append_round_trips() {
        // Repeatedly tear the tail, truncate at the reported offset,
        // and append fresh records: every cycle must leave a log that
        // replays cleanly with the pre-tear prefix + the new records.
        let path = temp_path("truncate-cycles");
        let mut expected: Vec<WalRecord> = Vec::new();
        for cycle in 0..4u64 {
            {
                let mut wal = Wal::open(&path).unwrap();
                let keep = WalRecord::Commit { tx: cycle };
                wal.append(&keep).unwrap();
                expected.push(keep);
                wal.append(&WalRecord::Page {
                    tx: cycle,
                    page: cycle,
                    image: vec![cycle as u8; 32],
                })
                .unwrap();
            }
            // Tear 5 bytes off the record we do not intend to keep.
            let len = std::fs::metadata(&path).unwrap().len();
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(len - 5).unwrap();
            drop(f);
            let mut wal = Wal::open(&path).unwrap();
            let (records, tear) = wal.records().unwrap();
            assert_eq!(records, expected, "cycle {cycle}");
            let tear = tear.expect("torn tail reported");
            wal.truncate_tail(tear).unwrap();
            assert_eq!(wal.len(), tear);
            let (records2, tear2) = wal.records().unwrap();
            assert_eq!(records2, expected);
            assert_eq!(tear2, None);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn truncate_tail_at_intact_boundary_drops_suffix() {
        // Fencing uses truncate_tail at an *intact* frame boundary to
        // drop a fully written but unwanted suffix (an ex-primary's
        // unshipped records), not just crash debris.
        let path = temp_path("fence");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { tx: 1 }).unwrap();
        wal.append(&WalRecord::Commit { tx: 1 }).unwrap();
        let keep = wal.len();
        wal.append(&WalRecord::Begin { tx: 2 }).unwrap();
        wal.append(&WalRecord::Commit { tx: 2 }).unwrap();
        wal.truncate_tail(keep).unwrap();
        let (records, tear) = wal.records().unwrap();
        assert_eq!(
            records,
            vec![WalRecord::Begin { tx: 1 }, WalRecord::Commit { tx: 1 }]
        );
        assert_eq!(tear, None);
        // Appends continue from the fenced position.
        wal.append(&WalRecord::Begin { tx: 3 }).unwrap();
        let (records, _) = wal.records().unwrap();
        assert_eq!(records.len(), 3);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn read_span_and_append_raw_round_trip() {
        let src = temp_path("span-src");
        let dst = temp_path("span-dst");
        let mut wal = Wal::open(&src).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        // Ship the whole log in small spans into a second log.
        let mut replica = Wal::open(&dst).unwrap();
        let mut pos = 0u64;
        loop {
            let span = wal.read_span(pos, 7).unwrap();
            if span.is_empty() {
                break;
            }
            pos += span.len() as u64;
            replica.append_raw(&span).unwrap();
        }
        assert_eq!(replica.len(), wal.len());
        let (records, tear) = replica.records().unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(tear, None);
        // Past-the-end reads are empty, not errors.
        assert!(wal.read_span(wal.len(), 64).unwrap().is_empty());
        assert!(wal.read_span(wal.len() + 100, 64).unwrap().is_empty());
        std::fs::remove_file(src).unwrap();
        std::fs::remove_file(dst).unwrap();
    }

    #[test]
    fn frame_scanner_reassembles_across_pushes() {
        let path = temp_path("scanner");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let bytes = wal.read_span(0, wal.len() as usize).unwrap();
        // Feed one byte at a time: records must pop out exactly at
        // frame boundaries, with consumed() tracking them.
        let mut scanner = FrameScanner::new();
        let mut got = Vec::new();
        for b in &bytes {
            scanner.push(std::slice::from_ref(b));
            while let Some(rec) = scanner.next_record().unwrap() {
                got.push(rec);
            }
        }
        assert_eq!(got, sample_records());
        assert_eq!(scanner.consumed(), bytes.len() as u64);
        assert_eq!(scanner.pending(), 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn frame_scanner_rejects_corrupt_complete_frame() {
        let path = temp_path("scanner-corrupt");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { tx: 1 }).unwrap();
        let mut bytes = wal.read_span(0, wal.len() as usize).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut scanner = FrameScanner::new();
        scanner.push(&bytes);
        assert!(matches!(
            scanner.next_record(),
            Err(StorageError::WalCorrupt { offset: 0 })
        ));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = temp_path("reopen");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Begin { tx: 1 }).unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Commit { tx: 1 }).unwrap();
            let (records, _) = wal.records().unwrap();
            assert_eq!(records.len(), 2);
        }
        std::fs::remove_file(path).unwrap();
    }
}
