//! CRC32 (IEEE 802.3 polynomial) used for page and WAL-record integrity.
//!
//! Table-driven with a compile-time-generated table; no external crates.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Compute the CRC32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_any_bit_flip() {
        let base = crc32(b"hello world");
        let mut data = b"hello world".to_vec();
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
