//! Slotted-page record layout.
//!
//! Within a heap page's payload area:
//!
//! ```text
//! [u16 nslots][u16 cell_start][slot 0][slot 1]... ...cells... (grow down)
//! ```
//!
//! Each slot is `[u16 offset][u16 len]` where `offset` is relative to the
//! start of the *page* (so 0 is never a valid cell offset and doubles as
//! the tombstone marker).  Cells are allocated from the end of the page
//! downwards; deleting a record tombstones its slot; compaction rewrites
//! live cells to squeeze out holes.  Slot indexes are stable across
//! compaction (record ids embed them), and tombstoned slots are reused by
//! later inserts.

use crate::page::{PageBuf, PAGE_HEADER_LEN, PAGE_SIZE};
use crate::{Result, StorageError};

const NSLOTS_OFF: usize = PAGE_HEADER_LEN;
const CELL_START_OFF: usize = PAGE_HEADER_LEN + 2;
const SLOTS_OFF: usize = PAGE_HEADER_LEN + 4;
const SLOT_SIZE: usize = 4;

/// Largest record payload a single slotted page can hold (one slot, one
/// cell, empty page).
pub const MAX_CELL: usize = PAGE_SIZE - SLOTS_OFF - SLOT_SIZE;

/// Initialize an empty slotted layout on a page.
pub fn init(page: &mut PageBuf) {
    page.write_u16(NSLOTS_OFF, 0);
    page.write_u16(CELL_START_OFF, PAGE_SIZE as u16);
}

fn nslots(page: &PageBuf) -> usize {
    page.read_u16(NSLOTS_OFF) as usize
}

fn cell_start(page: &PageBuf) -> usize {
    let v = page.read_u16(CELL_START_OFF) as usize;
    // A zero cell_start encodes PAGE_SIZE (u16 cannot hold 4096).
    if v == 0 {
        PAGE_SIZE
    } else {
        v
    }
}

fn set_cell_start(page: &mut PageBuf, v: usize) {
    debug_assert!(v <= PAGE_SIZE);
    page.write_u16(CELL_START_OFF, if v == PAGE_SIZE { 0 } else { v as u16 });
}

fn slot(page: &PageBuf, idx: usize) -> (usize, usize) {
    let base = SLOTS_OFF + idx * SLOT_SIZE;
    (
        page.read_u16(base) as usize,
        page.read_u16(base + 2) as usize,
    )
}

fn set_slot(page: &mut PageBuf, idx: usize, offset: usize, len: usize) {
    let base = SLOTS_OFF + idx * SLOT_SIZE;
    page.write_u16(base, offset as u16);
    page.write_u16(base + 2, len as u16);
}

/// Bytes of contiguous free space between the slot array and cell area.
fn contiguous_free(page: &PageBuf) -> usize {
    cell_start(page).saturating_sub(SLOTS_OFF + nslots(page) * SLOT_SIZE)
}

/// Total reclaimable free space (contiguous + dead cells).
pub fn free_space(page: &PageBuf) -> usize {
    let mut live = 0usize;
    for i in 0..nslots(page) {
        let (off, len) = slot(page, i);
        if off != 0 {
            live += len;
        }
    }
    (PAGE_SIZE - SLOTS_OFF - nslots(page) * SLOT_SIZE) - live
}

/// Whether a record of `len` bytes can be inserted (possibly after
/// compaction), accounting for a new slot if no tombstone is free.
pub fn can_insert(page: &PageBuf, len: usize) -> bool {
    if len > MAX_CELL {
        return false;
    }
    let has_tombstone = (0..nslots(page)).any(|i| slot(page, i).0 == 0);
    let slot_cost = if has_tombstone { 0 } else { SLOT_SIZE };
    free_space(page) >= len + slot_cost
}

/// Number of live (non-tombstoned) records.
pub fn live_count(page: &PageBuf) -> usize {
    (0..nslots(page)).filter(|&i| slot(page, i).0 != 0).count()
}

/// Insert a record, returning its slot index.
///
/// Errors with [`StorageError::PageFull`] when it does not fit; callers
/// should gate on [`can_insert`].
pub fn insert(page: &mut PageBuf, data: &[u8]) -> Result<u16> {
    if !can_insert(page, data.len()) {
        return Err(StorageError::PageFull);
    }
    let reuse = (0..nslots(page)).find(|&i| slot(page, i).0 == 0);
    // Compact *before* growing the slot array: a new slot entry would
    // otherwise overwrite the lowest cell when the gap between the slot
    // array and cell area is smaller than one slot.
    let needed = data.len() + if reuse.is_none() { SLOT_SIZE } else { 0 };
    if contiguous_free(page) < needed {
        compact(page);
    }
    let idx = match reuse {
        Some(i) => i,
        None => {
            let n = nslots(page);
            page.write_u16(NSLOTS_OFF, (n + 1) as u16);
            set_slot(page, n, 0, 0);
            n
        }
    };
    let new_start = cell_start(page) - data.len();
    page.as_bytes_mut()[new_start..new_start + data.len()].copy_from_slice(data);
    set_cell_start(page, new_start);
    set_slot(page, idx, new_start, data.len());
    Ok(idx as u16)
}

/// Read a record by slot index.
pub fn get(page: &PageBuf, idx: u16) -> Option<&[u8]> {
    let idx = idx as usize;
    if idx >= nslots(page) {
        return None;
    }
    let (off, len) = slot(page, idx);
    if off == 0 {
        return None;
    }
    Some(&page.as_bytes()[off..off + len])
}

/// Delete a record (tombstone its slot). Returns whether it was live.
pub fn delete(page: &mut PageBuf, idx: u16) -> bool {
    let idx = idx as usize;
    if idx >= nslots(page) || slot(page, idx).0 == 0 {
        return false;
    }
    set_slot(page, idx, 0, 0);
    true
}

/// Update a record in place when possible, otherwise delete + reinsert at
/// the same slot. Fails with [`StorageError::PageFull`] when the new
/// value does not fit even after compaction (caller then relocates the
/// record to another page).
pub fn update(page: &mut PageBuf, idx: u16, data: &[u8]) -> Result<()> {
    let i = idx as usize;
    if i >= nslots(page) {
        return Err(StorageError::RecordNotFound {
            page: crate::PageId(0),
            slot: idx,
        });
    }
    let (off, len) = slot(page, i);
    if off == 0 {
        return Err(StorageError::RecordNotFound {
            page: crate::PageId(0),
            slot: idx,
        });
    }
    if data.len() <= len {
        // Shrink in place (wastes len - data.len() until next compaction).
        page.as_bytes_mut()[off..off + data.len()].copy_from_slice(data);
        set_slot(page, i, off, data.len());
        return Ok(());
    }
    // Grow: tombstone, then re-add at the same slot index.
    set_slot(page, i, 0, 0);
    if free_space(page) < data.len() {
        // Restore the old slot before failing so the record isn't lost.
        set_slot(page, i, off, len);
        return Err(StorageError::PageFull);
    }
    if contiguous_free(page) < data.len() {
        compact(page);
    }
    let new_start = cell_start(page) - data.len();
    page.as_bytes_mut()[new_start..new_start + data.len()].copy_from_slice(data);
    set_cell_start(page, new_start);
    set_slot(page, i, new_start, data.len());
    Ok(())
}

/// Iterate live slot indexes.
pub fn live_slots(page: &PageBuf) -> impl Iterator<Item = u16> + '_ {
    (0..nslots(page)).filter_map(move |i| {
        if slot(page, i).0 != 0 {
            Some(i as u16)
        } else {
            None
        }
    })
}

/// Rewrite live cells contiguously at the end of the page, squeezing out
/// holes left by deletes and shrinking updates.
pub fn compact(page: &mut PageBuf) {
    let n = nslots(page);
    // Collect live cells (slot, bytes), then rewrite from the end.
    let mut cells: Vec<(usize, Vec<u8>)> = Vec::new();
    for i in 0..n {
        let (off, len) = slot(page, i);
        if off != 0 {
            cells.push((i, page.as_bytes()[off..off + len].to_vec()));
        }
    }
    let mut write_pos = PAGE_SIZE;
    for (i, bytes) in cells {
        write_pos -= bytes.len();
        page.as_bytes_mut()[write_pos..write_pos + bytes.len()].copy_from_slice(&bytes);
        set_slot(page, i, write_pos, bytes.len());
    }
    set_cell_start(page, write_pos);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn fresh() -> PageBuf {
        let mut p = PageBuf::new(PageKind::Heap);
        init(&mut p);
        p
    }

    #[test]
    fn insert_get_round_trip() {
        let mut p = fresh();
        let a = insert(&mut p, b"alpha").unwrap();
        let b = insert(&mut p, b"bravo!").unwrap();
        assert_eq!(get(&p, a).unwrap(), b"alpha");
        assert_eq!(get(&p, b).unwrap(), b"bravo!");
        assert_eq!(live_count(&p), 2);
    }

    #[test]
    fn delete_tombstones_and_slot_reused() {
        let mut p = fresh();
        let a = insert(&mut p, b"one").unwrap();
        let _b = insert(&mut p, b"two").unwrap();
        assert!(delete(&mut p, a));
        assert!(!delete(&mut p, a), "double delete is a no-op");
        assert_eq!(get(&p, a), None);
        let c = insert(&mut p, b"three").unwrap();
        assert_eq!(c, a, "tombstoned slot is reused");
        assert_eq!(get(&p, c).unwrap(), b"three");
    }

    #[test]
    fn update_shrink_and_grow() {
        let mut p = fresh();
        let a = insert(&mut p, b"longer-value").unwrap();
        update(&mut p, a, b"tiny").unwrap();
        assert_eq!(get(&p, a).unwrap(), b"tiny");
        update(&mut p, a, b"now-much-longer-than-before").unwrap();
        assert_eq!(get(&p, a).unwrap(), b"now-much-longer-than-before");
    }

    #[test]
    fn fill_page_then_overflow() {
        let mut p = fresh();
        let rec = vec![7u8; 100];
        let mut count = 0;
        while can_insert(&p, rec.len()) {
            insert(&mut p, &rec).unwrap();
            count += 1;
        }
        assert!(
            count >= 35,
            "expected ~39 records of 104 bytes, got {count}"
        );
        assert!(matches!(insert(&mut p, &rec), Err(StorageError::PageFull)));
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut p = fresh();
        let mut slots = Vec::new();
        for _ in 0..30 {
            slots.push(insert(&mut p, &[1u8; 100]).unwrap());
        }
        // Delete every other record.
        for (i, &s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                delete(&mut p, s);
            }
        }
        // A 1000-byte record needs compaction (contiguous space is gone)
        // but fits in reclaimed space.
        assert!(can_insert(&p, 1000));
        let big = insert(&mut p, &[9u8; 1000]).unwrap();
        assert_eq!(get(&p, big).unwrap(), &[9u8; 1000][..]);
        // Survivors are intact after compaction.
        for (i, &s) in slots.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(get(&p, s).unwrap(), &[1u8; 100][..]);
            }
        }
    }

    #[test]
    fn max_cell_fits_exactly() {
        let mut p = fresh();
        let rec = vec![5u8; MAX_CELL];
        assert!(can_insert(&p, rec.len()));
        let s = insert(&mut p, &rec).unwrap();
        assert_eq!(get(&p, s).unwrap().len(), MAX_CELL);
        assert!(!can_insert(&p, 1));
        assert!(!can_insert(&p, MAX_CELL + 1));
    }

    #[test]
    fn update_grow_beyond_space_restores_record() {
        let mut p = fresh();
        let filler = insert(&mut p, &vec![1u8; MAX_CELL - 200]).unwrap();
        let small = insert(&mut p, b"abc").unwrap();
        let err = update(&mut p, small, &vec![2u8; 500]);
        assert!(matches!(err, Err(StorageError::PageFull)));
        // The record must still be readable with its old value.
        assert_eq!(get(&p, small).unwrap(), b"abc");
        assert_eq!(get(&p, filler).unwrap().len(), MAX_CELL - 200);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let p = fresh();
        assert_eq!(get(&p, 0), None);
        assert_eq!(get(&p, 100), None);
    }

    #[test]
    fn live_slots_iteration() {
        let mut p = fresh();
        let a = insert(&mut p, b"a").unwrap();
        let b = insert(&mut p, b"b").unwrap();
        let c = insert(&mut p, b"c").unwrap();
        delete(&mut p, b);
        let live: Vec<u16> = live_slots(&p).collect();
        assert_eq!(live, vec![a, c]);
    }

    #[test]
    fn zero_length_records_supported() {
        let mut p = fresh();
        let s = insert(&mut p, b"").unwrap();
        assert_eq!(get(&p, s).unwrap(), b"");
        assert!(delete(&mut p, s));
    }
}
