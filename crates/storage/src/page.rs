//! Fixed-size pages and their common header.
//!
//! Every page begins with an 16-byte header:
//!
//! ```text
//! offset  size  field
//! 0       4     crc32 of bytes [4..PAGE_SIZE] (computed at flush time)
//! 4       1     page kind
//! 5       3     reserved (zero)
//! 8       8     kind-specific word (e.g. overflow "next" pointer)
//! ```
//!
//! The checksum is only valid for pages at rest in the database file; the
//! in-memory image may have a stale CRC until flushed.

use std::fmt;

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Byte offset where the page payload (after the common header) begins.
pub const PAGE_HEADER_LEN: usize = 16;

/// Identifier of a page within the database file (its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    /// The header page of the database file.
    pub const HEADER: PageId = PageId(0);

    /// Sentinel meaning "no page" (used for list terminators). Page 0 is
    /// always the store header, so it can double as the null sentinel in
    /// link fields.
    pub const NULL: PageId = PageId(0);

    /// Whether this id is the null sentinel.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Byte offset of this page in the database file.
    pub fn file_offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What a page is used for. Stored in the page header and checked by each
/// layer before interpreting the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageKind {
    /// The store header (page 0 only).
    Header = 1,
    /// A page on the free list.
    Free = 2,
    /// A slotted page holding heap records.
    Heap = 3,
    /// Continuation of a large record.
    Overflow = 4,
    /// B+-tree interior node.
    BTreeInner = 5,
    /// B+-tree leaf node.
    BTreeLeaf = 6,
    /// Heap directory page (head of a heap's page chain).
    HeapDir = 7,
}

impl PageKind {
    /// Parse a stored kind byte.
    pub fn from_u8(v: u8) -> Option<PageKind> {
        Some(match v {
            1 => PageKind::Header,
            2 => PageKind::Free,
            3 => PageKind::Heap,
            4 => PageKind::Overflow,
            5 => PageKind::BTreeInner,
            6 => PageKind::BTreeLeaf,
            7 => PageKind::HeapDir,
            _ => return None,
        })
    }
}

/// An owned, heap-allocated page image.
#[derive(Clone)]
pub struct PageBuf {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageBuf(kind={:?})", self.kind())
    }
}

impl Default for PageBuf {
    fn default() -> Self {
        PageBuf::zeroed()
    }
}

impl PageBuf {
    /// An all-zero page.
    pub fn zeroed() -> Self {
        PageBuf {
            bytes: vec![0u8; PAGE_SIZE]
                .into_boxed_slice()
                .try_into()
                .expect("PAGE_SIZE boxed slice"),
        }
    }

    /// A fresh page of the given kind with a zeroed payload.
    pub fn new(kind: PageKind) -> Self {
        let mut page = PageBuf::zeroed();
        page.set_kind(kind);
        page
    }

    /// Construct from a raw page-sized byte vector.
    pub fn from_vec(v: Vec<u8>) -> Option<Self> {
        if v.len() != PAGE_SIZE {
            return None;
        }
        Some(PageBuf {
            bytes: v.into_boxed_slice().try_into().ok()?,
        })
    }

    /// The full page image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..]
    }

    /// The full mutable page image.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes[..]
    }

    /// The payload after the common header.
    pub fn payload(&self) -> &[u8] {
        &self.bytes[PAGE_HEADER_LEN..]
    }

    /// The mutable payload after the common header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.bytes[PAGE_HEADER_LEN..]
    }

    /// This page's kind, if the kind byte is valid.
    pub fn kind(&self) -> Option<PageKind> {
        PageKind::from_u8(self.bytes[4])
    }

    /// Set the page kind byte.
    pub fn set_kind(&mut self, kind: PageKind) {
        self.bytes[4] = kind as u8;
    }

    /// The kind-specific header word (e.g. "next page" links).
    pub fn link(&self) -> PageId {
        PageId(u64::from_le_bytes(
            self.bytes[8..16].try_into().expect("8-byte header word"),
        ))
    }

    /// Set the kind-specific header word.
    pub fn set_link(&mut self, link: PageId) {
        self.bytes[8..16].copy_from_slice(&link.0.to_le_bytes());
    }

    /// Recompute and store the page checksum (done at flush time).
    pub fn seal(&mut self) {
        let crc = crate::crc32(&self.bytes[4..]);
        self.bytes[0..4].copy_from_slice(&crc.to_le_bytes());
    }

    /// Verify the stored checksum against the contents.
    pub fn verify(&self) -> bool {
        let stored = u32::from_le_bytes(self.bytes[0..4].try_into().expect("4-byte crc"));
        stored == crate::crc32(&self.bytes[4..])
    }

    /// Read a little-endian u16 at `offset`.
    pub fn read_u16(&self, offset: usize) -> u16 {
        u16::from_le_bytes(self.bytes[offset..offset + 2].try_into().expect("2 bytes"))
    }

    /// Write a little-endian u16 at `offset`.
    pub fn write_u16(&mut self, offset: usize, v: u16) {
        self.bytes[offset..offset + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian u32 at `offset`.
    pub fn read_u32(&self, offset: usize) -> u32 {
        u32::from_le_bytes(self.bytes[offset..offset + 4].try_into().expect("4 bytes"))
    }

    /// Write a little-endian u32 at `offset`.
    pub fn write_u32(&mut self, offset: usize, v: u32) {
        self.bytes[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian u64 at `offset`.
    pub fn read_u64(&self, offset: usize) -> u64 {
        u64::from_le_bytes(self.bytes[offset..offset + 8].try_into().expect("8 bytes"))
    }

    /// Write a little-endian u64 at `offset`.
    pub fn write_u64(&mut self, offset: usize, v: u64) {
        self.bytes[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout() {
        let mut p = PageBuf::new(PageKind::Heap);
        assert_eq!(p.kind(), Some(PageKind::Heap));
        p.set_link(PageId(42));
        assert_eq!(p.link(), PageId(42));
        assert_eq!(p.payload().len(), PAGE_SIZE - PAGE_HEADER_LEN);
    }

    #[test]
    fn seal_and_verify() {
        let mut p = PageBuf::new(PageKind::Heap);
        p.payload_mut()[0] = 7;
        p.seal();
        assert!(p.verify());
        p.payload_mut()[0] = 8;
        assert!(!p.verify());
        p.seal();
        assert!(p.verify());
    }

    #[test]
    fn checksum_ignores_crc_field_itself() {
        let mut p = PageBuf::new(PageKind::Free);
        p.seal();
        let crc1 = p.read_u32(0);
        // Re-sealing an unchanged page must be stable.
        p.seal();
        assert_eq!(p.read_u32(0), crc1);
    }

    #[test]
    fn scalar_accessors() {
        let mut p = PageBuf::zeroed();
        p.write_u16(100, 0xBEEF);
        p.write_u32(200, 0xDEAD_BEEF);
        p.write_u64(300, u64::MAX - 1);
        assert_eq!(p.read_u16(100), 0xBEEF);
        assert_eq!(p.read_u32(200), 0xDEAD_BEEF);
        assert_eq!(p.read_u64(300), u64::MAX - 1);
    }

    #[test]
    fn invalid_kind_is_none() {
        let p = PageBuf::zeroed();
        assert_eq!(p.kind(), None);
    }

    #[test]
    fn from_vec_enforces_size() {
        assert!(PageBuf::from_vec(vec![0; PAGE_SIZE]).is_some());
        assert!(PageBuf::from_vec(vec![0; PAGE_SIZE - 1]).is_none());
    }
}
