//! Persistent B+-tree mapping `u64` keys to `u64` values.
//!
//! The object layer uses these trees for its object and version tables
//! (object id → record id, version id → record id).  Values are fixed
//! eight-byte words, which keeps nodes simple and fanout high (~254).
//!
//! Node layouts (offsets relative to the page start; the first 16 bytes
//! are the common page header):
//!
//! ```text
//! leaf :  [u16 nkeys] [key u64, val u64]*      link = next leaf
//! inner:  [u16 nkeys] [child0 u64] [key u64, child u64]*
//! ```
//!
//! Invariants: keys within a node are strictly ascending; `child0` covers
//! keys `< key[0]`; `child[i]` covers `[key[i], key[i+1])`; separators
//! equal the smallest key of their right subtree.  Deletion is lazy (no
//! rebalancing) except that a root with a single child collapses; this
//! trades some space for simplicity and is exercised by the property
//! tests against a `BTreeMap` model.

use crate::page::{PageBuf, PageId, PageKind, PAGE_HEADER_LEN};
use crate::store::{PageRead, PageWrite};
use crate::{Result, StorageError};

const NKEYS_OFF: usize = PAGE_HEADER_LEN;
const LEAF_ENTRIES_OFF: usize = PAGE_HEADER_LEN + 2;
const INNER_CHILD0_OFF: usize = PAGE_HEADER_LEN + 2;
const INNER_ENTRIES_OFF: usize = PAGE_HEADER_LEN + 10;

/// Maximum entries per leaf given the page size.
pub const MAX_LEAF_CAP: usize = (crate::PAGE_SIZE - LEAF_ENTRIES_OFF) / 16;
/// Maximum separator/child pairs per inner node given the page size.
pub const MAX_INNER_CAP: usize = (crate::PAGE_SIZE - INNER_ENTRIES_OFF) / 16;

/// A B+-tree handle. The root page id is owned by the caller (stored in
/// a root slot or another record); mutating operations update
/// [`BTree::root`], which the caller must persist if it changed.
///
/// ```
/// use ode_storage::btree::BTree;
/// use ode_storage::{Store, StoreOptions, PageWrite, PageRead};
///
/// let path = std::env::temp_dir().join(format!("btree-doc-{}", std::process::id()));
/// let store = Store::create(&path, StoreOptions::default()).unwrap();
/// let mut tx = store.begin();
/// let mut tree = BTree::create(&mut tx).unwrap();
/// for k in 0..1000u64 {
///     tree.insert(&mut tx, k, k * 2).unwrap();
/// }
/// assert_eq!(tree.get(&mut tx, 500).unwrap(), Some(1000));
/// assert_eq!(tree.remove(&mut tx, 500).unwrap(), Some(1000));
/// assert_eq!(tree.scan_from(&mut tx, 499, 2).unwrap(), vec![(499, 998), (501, 1002)]);
/// tree.check(&mut tx).unwrap();
/// tx.commit().unwrap();
/// # drop(store);
/// # let _ = std::fs::remove_file(&path);
/// # let mut w = path.into_os_string(); w.push(".wal");
/// # let _ = std::fs::remove_file(std::path::PathBuf::from(w));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTree {
    /// Current root page.
    pub root: PageId,
    leaf_cap: usize,
    inner_cap: usize,
}

impl BTree {
    /// Create an empty tree (a single empty leaf).
    pub fn create(tx: &mut impl PageWrite) -> Result<BTree> {
        let root = tx.allocate(PageKind::BTreeLeaf)?;
        tx.page_mut(root)?.write_u16(NKEYS_OFF, 0);
        Ok(BTree {
            root,
            leaf_cap: MAX_LEAF_CAP,
            inner_cap: MAX_INNER_CAP,
        })
    }

    /// Open an existing tree by its root page.
    pub fn open(root: PageId) -> BTree {
        BTree {
            root,
            leaf_cap: MAX_LEAF_CAP,
            inner_cap: MAX_INNER_CAP,
        }
    }

    /// Override node capacities (testing and fanout-ablation benches).
    /// Must be consistent across every handle that touches this tree.
    pub fn with_caps(mut self, leaf_cap: usize, inner_cap: usize) -> BTree {
        assert!((2..=MAX_LEAF_CAP).contains(&leaf_cap));
        assert!((2..=MAX_INNER_CAP).contains(&inner_cap));
        self.leaf_cap = leaf_cap;
        self.inner_cap = inner_cap;
        self
    }

    // -- node accessors ----------------------------------------------------

    fn nkeys(page: &PageBuf) -> usize {
        page.read_u16(NKEYS_OFF) as usize
    }

    fn leaf_key(page: &PageBuf, i: usize) -> u64 {
        page.read_u64(LEAF_ENTRIES_OFF + i * 16)
    }

    fn leaf_val(page: &PageBuf, i: usize) -> u64 {
        page.read_u64(LEAF_ENTRIES_OFF + i * 16 + 8)
    }

    fn inner_key(page: &PageBuf, i: usize) -> u64 {
        page.read_u64(INNER_ENTRIES_OFF + i * 16)
    }

    fn inner_child(page: &PageBuf, i: usize) -> PageId {
        // child index 0 is child0; i >= 1 pairs with key[i-1].
        if i == 0 {
            PageId(page.read_u64(INNER_CHILD0_OFF))
        } else {
            PageId(page.read_u64(INNER_ENTRIES_OFF + (i - 1) * 16 + 8))
        }
    }

    /// Binary search a leaf; Ok(i) = found at i, Err(i) = insert position.
    fn leaf_search(page: &PageBuf, key: u64) -> std::result::Result<usize, usize> {
        let n = Self::nkeys(page);
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = Self::leaf_key(page, mid);
            if k < key {
                lo = mid + 1;
            } else if k > key {
                hi = mid;
            } else {
                return Ok(mid);
            }
        }
        Err(lo)
    }

    /// Child index to descend into for `key`.
    fn inner_route(page: &PageBuf, key: u64) -> usize {
        let n = Self::nkeys(page);
        let mut lo = 0usize;
        let mut hi = n;
        // Find the number of separators <= key.
        while lo < hi {
            let mid = (lo + hi) / 2;
            if Self::inner_key(page, mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    // -- public operations --------------------------------------------------

    /// Look up `key`.
    pub fn get(&self, tx: &mut impl PageRead, key: u64) -> Result<Option<u64>> {
        let mut page_id = self.root;
        loop {
            let page = tx.page(page_id)?;
            match page.kind() {
                Some(PageKind::BTreeInner) => {
                    let idx = Self::inner_route(page, key);
                    page_id = Self::inner_child(page, idx);
                }
                Some(PageKind::BTreeLeaf) => {
                    return Ok(match Self::leaf_search(page, key) {
                        Ok(i) => Some(Self::leaf_val(page, i)),
                        Err(_) => None,
                    });
                }
                _ => return Err(StorageError::TreeCorrupt("unexpected page kind")),
            }
        }
    }

    /// Insert or overwrite; returns the previous value if any.
    pub fn insert(&mut self, tx: &mut impl PageWrite, key: u64, val: u64) -> Result<Option<u64>> {
        // Descend, recording the path of (inner page, child index).
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut page_id = self.root;
        loop {
            let page = tx.page(page_id)?;
            match page.kind() {
                Some(PageKind::BTreeInner) => {
                    let idx = Self::inner_route(page, key);
                    let child = Self::inner_child(page, idx);
                    path.push((page_id, idx));
                    page_id = child;
                }
                Some(PageKind::BTreeLeaf) => break,
                _ => return Err(StorageError::TreeCorrupt("unexpected page kind")),
            }
        }

        // Leaf insert.
        let (found, pos) = match Self::leaf_search(tx.page(page_id)?, key) {
            Ok(i) => (true, i),
            Err(i) => (false, i),
        };
        if found {
            let page = tx.page_mut(page_id)?;
            let old = Self::leaf_val(page, pos);
            page.write_u64(LEAF_ENTRIES_OFF + pos * 16 + 8, val);
            return Ok(Some(old));
        }

        let n = Self::nkeys(tx.page(page_id)?);
        if n < self.leaf_cap {
            Self::leaf_insert_at(tx.page_mut(page_id)?, pos, key, val);
            return Ok(None);
        }

        // Split the leaf: right half moves to a new page.
        let split = n / 2;
        let new_leaf = tx.allocate(PageKind::BTreeLeaf)?;
        {
            // Copy entries [split..n] into the new leaf.
            let (entries, old_link) = {
                let page = tx.page(page_id)?;
                let mut v = Vec::with_capacity(n - split);
                for i in split..n {
                    v.push((Self::leaf_key(page, i), Self::leaf_val(page, i)));
                }
                (v, page.link())
            };
            let right = tx.page_mut(new_leaf)?;
            right.write_u16(NKEYS_OFF, entries.len() as u16);
            for (i, (k, v)) in entries.iter().enumerate() {
                right.write_u64(LEAF_ENTRIES_OFF + i * 16, *k);
                right.write_u64(LEAF_ENTRIES_OFF + i * 16 + 8, *v);
            }
            right.set_link(old_link);
            let left = tx.page_mut(page_id)?;
            left.write_u16(NKEYS_OFF, split as u16);
            left.set_link(new_leaf);
        }
        let sep = Self::leaf_key(tx.page(new_leaf)?, 0);
        // Insert the pending key into the proper half.
        if key < sep {
            let pos = match Self::leaf_search(tx.page(page_id)?, key) {
                Err(i) => i,
                Ok(_) => unreachable!("key was absent"),
            };
            Self::leaf_insert_at(tx.page_mut(page_id)?, pos, key, val);
        } else {
            let pos = match Self::leaf_search(tx.page(new_leaf)?, key) {
                Err(i) => i,
                Ok(_) => unreachable!("key was absent"),
            };
            Self::leaf_insert_at(tx.page_mut(new_leaf)?, pos, key, val);
        }

        self.propagate_split(tx, path, sep, new_leaf)?;
        Ok(None)
    }

    /// Remove `key`; returns its value if present.
    ///
    /// Underflowing nodes (below half occupancy) borrow from or merge
    /// with a sibling, so space is reclaimed and non-root nodes stay at
    /// least half full — checked by [`BTree::check`].
    pub fn remove(&mut self, tx: &mut impl PageWrite, key: u64) -> Result<Option<u64>> {
        // Descend, recording (parent page, child index) like insert.
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut page_id = self.root;
        loop {
            let page = tx.page(page_id)?;
            match page.kind() {
                Some(PageKind::BTreeInner) => {
                    let idx = Self::inner_route(page, key);
                    let child = Self::inner_child(page, idx);
                    path.push((page_id, idx));
                    page_id = child;
                }
                Some(PageKind::BTreeLeaf) => break,
                _ => return Err(StorageError::TreeCorrupt("unexpected page kind")),
            }
        }
        let pos = match Self::leaf_search(tx.page(page_id)?, key) {
            Ok(i) => i,
            Err(_) => return Ok(None),
        };
        let page = tx.page_mut(page_id)?;
        let old = Self::leaf_val(page, pos);
        let n = Self::nkeys(page);
        // Shift entries left over the removed one.
        for i in pos..n - 1 {
            let k = Self::leaf_key(page, i + 1);
            let v = Self::leaf_val(page, i + 1);
            page.write_u64(LEAF_ENTRIES_OFF + i * 16, k);
            page.write_u64(LEAF_ENTRIES_OFF + i * 16 + 8, v);
        }
        page.write_u16(NKEYS_OFF, (n - 1) as u16);

        self.rebalance_after_delete(tx, page_id, path)?;
        Ok(Some(old))
    }

    // -- deletion rebalancing ------------------------------------------------

    fn leaf_min(&self) -> usize {
        self.leaf_cap / 2
    }

    fn inner_min(&self) -> usize {
        self.inner_cap / 2
    }

    /// Restore occupancy invariants from `node` upwards along `path`.
    fn rebalance_after_delete(
        &mut self,
        tx: &mut impl PageWrite,
        mut node: PageId,
        mut path: Vec<(PageId, usize)>,
    ) -> Result<()> {
        loop {
            let (kind, nkeys) = {
                let page = tx.page(node)?;
                (page.kind(), Self::nkeys(page))
            };
            let min = match kind {
                Some(PageKind::BTreeLeaf) => self.leaf_min(),
                Some(PageKind::BTreeInner) => self.inner_min(),
                _ => return Err(StorageError::TreeCorrupt("unexpected page kind")),
            };
            let Some((parent, child_idx)) = path.pop() else {
                // Root: collapse an empty inner root onto its child.
                return self.collapse_root(tx);
            };
            if nkeys >= min {
                return Ok(());
            }
            // Prefer the left sibling (keeps the leaf chain simple).
            let parent_keys = Self::nkeys(tx.page(parent)?);
            let (sib_idx, node_is_left) = if child_idx > 0 {
                (child_idx - 1, false)
            } else {
                (child_idx + 1, true)
            };
            debug_assert!(sib_idx <= parent_keys);
            let sibling = Self::inner_child(tx.page(parent)?, sib_idx);
            let sib_keys = Self::nkeys(tx.page(sibling)?);
            // The separator between the left and right child of the pair.
            let sep_idx = if node_is_left { child_idx } else { sib_idx };
            let (left, right) = if node_is_left {
                (node, sibling)
            } else {
                (sibling, node)
            };

            if sib_keys > min {
                // Borrow one entry through the parent.
                match kind {
                    Some(PageKind::BTreeLeaf) => {
                        self.leaf_borrow(tx, left, right, parent, sep_idx, node_is_left)?
                    }
                    _ => self.inner_borrow(tx, left, right, parent, sep_idx, node_is_left)?,
                }
                return Ok(());
            }

            // Merge right into left, drop the separator from the parent.
            match kind {
                Some(PageKind::BTreeLeaf) => self.leaf_merge(tx, left, right, parent, sep_idx)?,
                _ => self.inner_merge(tx, left, right, parent, sep_idx)?,
            }
            node = parent;
        }
    }

    fn leaf_borrow(
        &mut self,
        tx: &mut impl PageWrite,
        left: PageId,
        right: PageId,
        parent: PageId,
        sep_idx: usize,
        node_is_left: bool,
    ) -> Result<()> {
        if node_is_left {
            // Move the right sibling's first entry to the left's end.
            let (k, v) = {
                let page = tx.page(right)?;
                (Self::leaf_key(page, 0), Self::leaf_val(page, 0))
            };
            let ln = Self::nkeys(tx.page(left)?);
            {
                let page = tx.page_mut(left)?;
                page.write_u64(LEAF_ENTRIES_OFF + ln * 16, k);
                page.write_u64(LEAF_ENTRIES_OFF + ln * 16 + 8, v);
                page.write_u16(NKEYS_OFF, (ln + 1) as u16);
            }
            {
                let page = tx.page_mut(right)?;
                let rn = Self::nkeys(page);
                for i in 0..rn - 1 {
                    let k = Self::leaf_key(page, i + 1);
                    let v = Self::leaf_val(page, i + 1);
                    page.write_u64(LEAF_ENTRIES_OFF + i * 16, k);
                    page.write_u64(LEAF_ENTRIES_OFF + i * 16 + 8, v);
                }
                page.write_u16(NKEYS_OFF, (rn - 1) as u16);
            }
            let new_sep = Self::leaf_key(tx.page(right)?, 0);
            tx.page_mut(parent)?
                .write_u64(INNER_ENTRIES_OFF + sep_idx * 16, new_sep);
        } else {
            // Move the left sibling's last entry to the right's front.
            let ln = Self::nkeys(tx.page(left)?);
            let (k, v) = {
                let page = tx.page(left)?;
                (Self::leaf_key(page, ln - 1), Self::leaf_val(page, ln - 1))
            };
            tx.page_mut(left)?.write_u16(NKEYS_OFF, (ln - 1) as u16);
            {
                let page = tx.page_mut(right)?;
                let rn = Self::nkeys(page);
                for i in (0..rn).rev() {
                    let mk = Self::leaf_key(page, i);
                    let mv = Self::leaf_val(page, i);
                    page.write_u64(LEAF_ENTRIES_OFF + (i + 1) * 16, mk);
                    page.write_u64(LEAF_ENTRIES_OFF + (i + 1) * 16 + 8, mv);
                }
                page.write_u64(LEAF_ENTRIES_OFF, k);
                page.write_u64(LEAF_ENTRIES_OFF + 8, v);
                page.write_u16(NKEYS_OFF, (rn + 1) as u16);
            }
            tx.page_mut(parent)?
                .write_u64(INNER_ENTRIES_OFF + sep_idx * 16, k);
        }
        Ok(())
    }

    fn leaf_merge(
        &mut self,
        tx: &mut impl PageWrite,
        left: PageId,
        right: PageId,
        parent: PageId,
        sep_idx: usize,
    ) -> Result<()> {
        // Append right's entries to left; splice the leaf chain.
        let (entries, right_link) = {
            let page = tx.page(right)?;
            let rn = Self::nkeys(page);
            let mut v = Vec::with_capacity(rn);
            for i in 0..rn {
                v.push((Self::leaf_key(page, i), Self::leaf_val(page, i)));
            }
            (v, page.link())
        };
        {
            let page = tx.page_mut(left)?;
            let ln = Self::nkeys(page);
            for (i, (k, v)) in entries.iter().enumerate() {
                page.write_u64(LEAF_ENTRIES_OFF + (ln + i) * 16, *k);
                page.write_u64(LEAF_ENTRIES_OFF + (ln + i) * 16 + 8, *v);
            }
            page.write_u16(NKEYS_OFF, (ln + entries.len()) as u16);
            page.set_link(right_link);
        }
        tx.free_page(right)?;
        Self::inner_remove_separator(tx.page_mut(parent)?, sep_idx);
        Ok(())
    }

    fn inner_borrow(
        &mut self,
        tx: &mut impl PageWrite,
        left: PageId,
        right: PageId,
        parent: PageId,
        sep_idx: usize,
        node_is_left: bool,
    ) -> Result<()> {
        let sep = Self::inner_key(tx.page(parent)?, sep_idx);
        if node_is_left {
            // Rotate left: separator comes down to left's end; right's
            // first child moves over; right's first key goes up.
            let (up, child0) = {
                let page = tx.page(right)?;
                (Self::inner_key(page, 0), Self::inner_child(page, 0))
            };
            {
                let page = tx.page_mut(left)?;
                let ln = Self::nkeys(page);
                page.write_u64(INNER_ENTRIES_OFF + ln * 16, sep);
                page.write_u64(INNER_ENTRIES_OFF + ln * 16 + 8, child0.0);
                page.write_u16(NKEYS_OFF, (ln + 1) as u16);
            }
            {
                let page = tx.page_mut(right)?;
                let rn = Self::nkeys(page);
                // child0 = old child1; keys/children shift left by one.
                let new_child0 = Self::inner_child(page, 1);
                page.write_u64(INNER_CHILD0_OFF, new_child0.0);
                for i in 0..rn - 1 {
                    let k = Self::inner_key(page, i + 1);
                    let c = page.read_u64(INNER_ENTRIES_OFF + (i + 1) * 16 + 8);
                    page.write_u64(INNER_ENTRIES_OFF + i * 16, k);
                    page.write_u64(INNER_ENTRIES_OFF + i * 16 + 8, c);
                }
                page.write_u16(NKEYS_OFF, (rn - 1) as u16);
            }
            tx.page_mut(parent)?
                .write_u64(INNER_ENTRIES_OFF + sep_idx * 16, up);
        } else {
            // Rotate right: separator comes down to right's front;
            // left's last child moves over; left's last key goes up.
            let ln = Self::nkeys(tx.page(left)?);
            let (up, moved_child) = {
                let page = tx.page(left)?;
                (Self::inner_key(page, ln - 1), Self::inner_child(page, ln))
            };
            tx.page_mut(left)?.write_u16(NKEYS_OFF, (ln - 1) as u16);
            {
                let page = tx.page_mut(right)?;
                let rn = Self::nkeys(page);
                // Shift keys/children right by one; old child0 pairs
                // with the descending separator.
                let old_child0 = Self::inner_child(page, 0);
                for i in (0..rn).rev() {
                    let k = Self::inner_key(page, i);
                    let c = page.read_u64(INNER_ENTRIES_OFF + i * 16 + 8);
                    page.write_u64(INNER_ENTRIES_OFF + (i + 1) * 16, k);
                    page.write_u64(INNER_ENTRIES_OFF + (i + 1) * 16 + 8, c);
                }
                page.write_u64(INNER_ENTRIES_OFF, sep);
                page.write_u64(INNER_ENTRIES_OFF + 8, old_child0.0);
                page.write_u64(INNER_CHILD0_OFF, moved_child.0);
                page.write_u16(NKEYS_OFF, (rn + 1) as u16);
            }
            tx.page_mut(parent)?
                .write_u64(INNER_ENTRIES_OFF + sep_idx * 16, up);
        }
        Ok(())
    }

    fn inner_merge(
        &mut self,
        tx: &mut impl PageWrite,
        left: PageId,
        right: PageId,
        parent: PageId,
        sep_idx: usize,
    ) -> Result<()> {
        let sep = Self::inner_key(tx.page(parent)?, sep_idx);
        let (keys, children) = {
            let page = tx.page(right)?;
            let rn = Self::nkeys(page);
            let keys: Vec<u64> = (0..rn).map(|i| Self::inner_key(page, i)).collect();
            let children: Vec<PageId> = (0..=rn).map(|i| Self::inner_child(page, i)).collect();
            (keys, children)
        };
        {
            let page = tx.page_mut(left)?;
            let ln = Self::nkeys(page);
            // Separator descends, then right's keys/children append.
            page.write_u64(INNER_ENTRIES_OFF + ln * 16, sep);
            page.write_u64(INNER_ENTRIES_OFF + ln * 16 + 8, children[0].0);
            for (i, k) in keys.iter().enumerate() {
                page.write_u64(INNER_ENTRIES_OFF + (ln + 1 + i) * 16, *k);
                page.write_u64(INNER_ENTRIES_OFF + (ln + 1 + i) * 16 + 8, children[i + 1].0);
            }
            page.write_u16(NKEYS_OFF, (ln + 1 + keys.len()) as u16);
        }
        tx.free_page(right)?;
        Self::inner_remove_separator(tx.page_mut(parent)?, sep_idx);
        Ok(())
    }

    /// Remove key[sep_idx] and child[sep_idx + 1] from an inner node.
    fn inner_remove_separator(page: &mut PageBuf, sep_idx: usize) {
        let n = Self::nkeys(page);
        for i in sep_idx..n - 1 {
            let k = Self::inner_key(page, i + 1);
            let c = page.read_u64(INNER_ENTRIES_OFF + (i + 1) * 16 + 8);
            page.write_u64(INNER_ENTRIES_OFF + i * 16, k);
            page.write_u64(INNER_ENTRIES_OFF + i * 16 + 8, c);
        }
        page.write_u16(NKEYS_OFF, (n - 1) as u16);
    }

    /// Collect up to `limit` entries with keys `>= start`, in key order.
    pub fn scan_from(
        &self,
        tx: &mut impl PageRead,
        start: u64,
        limit: usize,
    ) -> Result<Vec<(u64, u64)>> {
        let mut page_id = self.root;
        loop {
            let page = tx.page(page_id)?;
            match page.kind() {
                Some(PageKind::BTreeInner) => {
                    let idx = Self::inner_route(page, start);
                    page_id = Self::inner_child(page, idx);
                }
                Some(PageKind::BTreeLeaf) => break,
                _ => return Err(StorageError::TreeCorrupt("unexpected page kind")),
            }
        }
        let mut out = Vec::new();
        let mut pos = match Self::leaf_search(tx.page(page_id)?, start) {
            Ok(i) | Err(i) => i,
        };
        while out.len() < limit {
            let page = tx.page(page_id)?;
            let n = Self::nkeys(page);
            while pos < n && out.len() < limit {
                out.push((Self::leaf_key(page, pos), Self::leaf_val(page, pos)));
                pos += 1;
            }
            if out.len() >= limit {
                break;
            }
            let next = page.link();
            if next.is_null() {
                break;
            }
            page_id = next;
            pos = 0;
        }
        Ok(out)
    }

    /// Collect every entry in key order.
    pub fn scan_all(&self, tx: &mut impl PageRead) -> Result<Vec<(u64, u64)>> {
        self.scan_from(tx, 0, usize::MAX)
    }

    /// Number of entries (walks the leaf chain).
    pub fn len(&self, tx: &mut impl PageRead) -> Result<usize> {
        Ok(self.scan_all(tx)?.len())
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self, tx: &mut impl PageRead) -> Result<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Height of the tree (1 = just a root leaf). Diagnostic.
    pub fn height(&self, tx: &mut impl PageRead) -> Result<usize> {
        let mut h = 1;
        let mut page_id = self.root;
        loop {
            let page = tx.page(page_id)?;
            match page.kind() {
                Some(PageKind::BTreeInner) => {
                    page_id = Self::inner_child(page, 0);
                    h += 1;
                }
                Some(PageKind::BTreeLeaf) => return Ok(h),
                _ => return Err(StorageError::TreeCorrupt("unexpected page kind")),
            }
        }
    }

    // -- internals -----------------------------------------------------------

    fn leaf_insert_at(page: &mut PageBuf, pos: usize, key: u64, val: u64) {
        let n = Self::nkeys(page);
        // Shift entries right to open a gap.
        for i in (pos..n).rev() {
            let k = Self::leaf_key(page, i);
            let v = Self::leaf_val(page, i);
            page.write_u64(LEAF_ENTRIES_OFF + (i + 1) * 16, k);
            page.write_u64(LEAF_ENTRIES_OFF + (i + 1) * 16 + 8, v);
        }
        page.write_u64(LEAF_ENTRIES_OFF + pos * 16, key);
        page.write_u64(LEAF_ENTRIES_OFF + pos * 16 + 8, val);
        page.write_u16(NKEYS_OFF, (n + 1) as u16);
    }

    /// Insert separator `sep` (pointing at `right`) into the parents on
    /// `path`, splitting inner nodes as needed; grows a new root if the
    /// split reaches the top.
    fn propagate_split(
        &mut self,
        tx: &mut impl PageWrite,
        mut path: Vec<(PageId, usize)>,
        mut sep: u64,
        mut right: PageId,
    ) -> Result<()> {
        loop {
            let (parent_id, child_idx) = match path.pop() {
                Some(p) => p,
                None => {
                    // Split reached the root: grow the tree.
                    let new_root = tx.allocate(PageKind::BTreeInner)?;
                    let old_root = self.root;
                    let page = tx.page_mut(new_root)?;
                    page.write_u16(NKEYS_OFF, 1);
                    page.write_u64(INNER_CHILD0_OFF, old_root.0);
                    page.write_u64(INNER_ENTRIES_OFF, sep);
                    page.write_u64(INNER_ENTRIES_OFF + 8, right.0);
                    self.root = new_root;
                    return Ok(());
                }
            };

            let n = Self::nkeys(tx.page(parent_id)?);
            if n < self.inner_cap {
                Self::inner_insert_at(tx.page_mut(parent_id)?, child_idx, sep, right);
                return Ok(());
            }

            // Split the inner node. Gather its (key, child) pairs plus the
            // pending separator, then redistribute around a middle key
            // that moves up.
            let (mut keys, mut children) = {
                let page = tx.page(parent_id)?;
                let mut keys = Vec::with_capacity(n + 1);
                let mut children = Vec::with_capacity(n + 2);
                children.push(Self::inner_child(page, 0));
                for i in 0..n {
                    keys.push(Self::inner_key(page, i));
                    children.push(Self::inner_child(page, i + 1));
                }
                (keys, children)
            };
            keys.insert(child_idx, sep);
            children.insert(child_idx + 1, right);

            let mid = keys.len() / 2;
            let up_key = keys[mid];
            let right_keys: Vec<u64> = keys[mid + 1..].to_vec();
            let right_children: Vec<PageId> = children[mid + 1..].to_vec();
            let left_keys: Vec<u64> = keys[..mid].to_vec();
            let left_children: Vec<PageId> = children[..mid + 1].to_vec();

            let new_inner = tx.allocate(PageKind::BTreeInner)?;
            Self::write_inner(tx.page_mut(new_inner)?, &right_keys, &right_children);
            Self::write_inner(tx.page_mut(parent_id)?, &left_keys, &left_children);

            sep = up_key;
            right = new_inner;
        }
    }

    fn inner_insert_at(page: &mut PageBuf, child_idx: usize, sep: u64, right: PageId) {
        let n = Self::nkeys(page);
        // Keys at indexes >= child_idx shift right; same for children
        // beyond child_idx + 1.
        for i in (child_idx..n).rev() {
            let k = Self::inner_key(page, i);
            let c = page.read_u64(INNER_ENTRIES_OFF + i * 16 + 8);
            page.write_u64(INNER_ENTRIES_OFF + (i + 1) * 16, k);
            page.write_u64(INNER_ENTRIES_OFF + (i + 1) * 16 + 8, c);
        }
        page.write_u64(INNER_ENTRIES_OFF + child_idx * 16, sep);
        page.write_u64(INNER_ENTRIES_OFF + child_idx * 16 + 8, right.0);
        page.write_u16(NKEYS_OFF, (n + 1) as u16);
    }

    fn write_inner(page: &mut PageBuf, keys: &[u64], children: &[PageId]) {
        debug_assert_eq!(children.len(), keys.len() + 1);
        page.write_u16(NKEYS_OFF, keys.len() as u16);
        page.write_u64(INNER_CHILD0_OFF, children[0].0);
        for (i, k) in keys.iter().enumerate() {
            page.write_u64(INNER_ENTRIES_OFF + i * 16, *k);
            page.write_u64(INNER_ENTRIES_OFF + i * 16 + 8, children[i + 1].0);
        }
    }

    /// If the root is an inner node with no separators, its single child
    /// becomes the root (the only rebalancing deletion performs).
    fn collapse_root(&mut self, tx: &mut impl PageWrite) -> Result<()> {
        loop {
            let page = tx.page(self.root)?;
            if page.kind() == Some(PageKind::BTreeInner) && Self::nkeys(page) == 0 {
                let child = Self::inner_child(page, 0);
                let old = self.root;
                self.root = child;
                tx.free_page(old)?;
            } else {
                return Ok(());
            }
        }
    }

    /// Validate structural invariants (tests and the `fsck` example).
    pub fn check(&self, tx: &mut impl PageRead) -> Result<()> {
        self.check_node(tx, self.root, None, None)?;
        // Leaf chain must be globally sorted.
        let all = self.scan_all(tx)?;
        for w in all.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(StorageError::TreeCorrupt("leaf chain out of order"));
            }
        }
        Ok(())
    }

    fn check_node(
        &self,
        tx: &mut impl PageRead,
        page_id: PageId,
        lower: Option<u64>,
        upper: Option<u64>,
    ) -> Result<()> {
        let (kind, keys, children) = {
            let page = tx.page(page_id)?;
            let kind = page.kind();
            match kind {
                Some(PageKind::BTreeLeaf) => {
                    let n = Self::nkeys(page);
                    let keys: Vec<u64> = (0..n).map(|i| Self::leaf_key(page, i)).collect();
                    (kind, keys, Vec::new())
                }
                Some(PageKind::BTreeInner) => {
                    let n = Self::nkeys(page);
                    let keys: Vec<u64> = (0..n).map(|i| Self::inner_key(page, i)).collect();
                    let children: Vec<PageId> =
                        (0..=n).map(|i| Self::inner_child(page, i)).collect();
                    (kind, keys, children)
                }
                _ => return Err(StorageError::TreeCorrupt("unexpected page kind")),
            }
        };
        for w in keys.windows(2) {
            if w[0] >= w[1] {
                return Err(StorageError::TreeCorrupt("node keys out of order"));
            }
        }
        for &k in &keys {
            if lower.is_some_and(|lo| k < lo) || upper.is_some_and(|hi| k >= hi) {
                return Err(StorageError::TreeCorrupt("key outside separator bounds"));
            }
        }
        // Occupancy: non-root nodes stay at least half full (deletion
        // rebalancing maintains this).
        if page_id != self.root {
            let min = match kind {
                Some(PageKind::BTreeLeaf) => self.leaf_min(),
                _ => self.inner_min(),
            };
            if keys.len() < min {
                return Err(StorageError::TreeCorrupt("node under-occupied"));
            }
        }
        if kind == Some(PageKind::BTreeInner) {
            if keys.is_empty() && page_id != self.root {
                return Err(StorageError::TreeCorrupt("empty non-root inner node"));
            }
            for i in 0..children.len() {
                let lo = if i == 0 { lower } else { Some(keys[i - 1]) };
                let hi = if i == keys.len() {
                    upper
                } else {
                    Some(keys[i])
                };
                self.check_node(tx, children[i], lo, hi)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreOptions};

    fn temp_store(name: &str) -> (std::path::PathBuf, Store) {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-btree-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let mut wal = p.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        let store = Store::create(&p, StoreOptions::default()).unwrap();
        (p, store)
    }

    fn cleanup(p: &std::path::Path) {
        let _ = std::fs::remove_file(p);
        let mut wal = p.to_path_buf().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }

    #[test]
    fn insert_get_basic() {
        let (path, store) = temp_store("basic");
        let mut tx = store.begin();
        let mut t = BTree::create(&mut tx).unwrap();
        assert_eq!(t.insert(&mut tx, 5, 50).unwrap(), None);
        assert_eq!(t.insert(&mut tx, 3, 30).unwrap(), None);
        assert_eq!(t.insert(&mut tx, 5, 55).unwrap(), Some(50));
        assert_eq!(t.get(&mut tx, 5).unwrap(), Some(55));
        assert_eq!(t.get(&mut tx, 3).unwrap(), Some(30));
        assert_eq!(t.get(&mut tx, 4).unwrap(), None);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn splits_with_sequential_keys() {
        let (path, store) = temp_store("seq");
        let mut tx = store.begin();
        let mut t = BTree::create(&mut tx).unwrap().with_caps(4, 4);
        for k in 0..200u64 {
            t.insert(&mut tx, k, k * 10).unwrap();
        }
        t.check(&mut tx).unwrap();
        assert!(t.height(&mut tx).unwrap() >= 3);
        for k in 0..200u64 {
            assert_eq!(t.get(&mut tx, k).unwrap(), Some(k * 10), "key {k}");
        }
        assert_eq!(t.len(&mut tx).unwrap(), 200);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn splits_with_reverse_and_interleaved_keys() {
        let (path, store) = temp_store("rev");
        let mut tx = store.begin();
        let mut t = BTree::create(&mut tx).unwrap().with_caps(4, 4);
        for k in (0..100u64).rev() {
            t.insert(&mut tx, k * 2, k).unwrap();
        }
        for k in 0..100u64 {
            t.insert(&mut tx, k * 2 + 1, k + 1000).unwrap();
        }
        t.check(&mut tx).unwrap();
        assert_eq!(t.len(&mut tx).unwrap(), 200);
        assert_eq!(t.get(&mut tx, 7).unwrap(), Some(1003));
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn remove_and_lazy_deletion() {
        let (path, store) = temp_store("remove");
        let mut tx = store.begin();
        let mut t = BTree::create(&mut tx).unwrap().with_caps(4, 4);
        for k in 0..100u64 {
            t.insert(&mut tx, k, k).unwrap();
        }
        for k in (0..100u64).filter(|k| k % 2 == 0) {
            assert_eq!(t.remove(&mut tx, k).unwrap(), Some(k));
        }
        assert_eq!(t.remove(&mut tx, 0).unwrap(), None);
        t.check(&mut tx).unwrap();
        for k in 0..100u64 {
            let expect = if k % 2 == 1 { Some(k) } else { None };
            assert_eq!(t.get(&mut tx, k).unwrap(), expect);
        }
        assert_eq!(t.len(&mut tx).unwrap(), 50);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn root_collapses_when_emptied() {
        let (path, store) = temp_store("collapse");
        let mut tx = store.begin();
        let mut t = BTree::create(&mut tx).unwrap().with_caps(4, 4);
        for k in 0..50u64 {
            t.insert(&mut tx, k, k).unwrap();
        }
        assert!(t.height(&mut tx).unwrap() > 1);
        for k in 0..50u64 {
            t.remove(&mut tx, k).unwrap();
        }
        t.check(&mut tx).unwrap();
        assert_eq!(t.len(&mut tx).unwrap(), 0);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn deletion_merges_reclaim_pages() {
        let (path, store) = temp_store("reclaim");
        let mut tx = store.begin();
        let mut t = BTree::create(&mut tx).unwrap().with_caps(4, 4);
        for k in 0..500u64 {
            t.insert(&mut tx, k, k).unwrap();
        }
        let grown = tx.page_count().unwrap();
        for k in 0..500u64 {
            t.remove(&mut tx, k).unwrap();
        }
        t.check(&mut tx).unwrap();
        assert_eq!(t.len(&mut tx).unwrap(), 0);
        assert_eq!(t.height(&mut tx).unwrap(), 1, "tree shrinks to one leaf");
        // The freed nodes go to the free list: re-inserting must not
        // grow the file.
        for k in 0..500u64 {
            t.insert(&mut tx, k, k).unwrap();
        }
        assert_eq!(tx.page_count().unwrap(), grown);
        t.check(&mut tx).unwrap();
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn interleaved_insert_delete_stays_balanced() {
        let (path, store) = temp_store("interleave");
        let mut tx = store.begin();
        let mut t = BTree::create(&mut tx).unwrap().with_caps(4, 4);
        // Waves of inserts and deletes with different strides.
        for wave in 0..6u64 {
            for k in 0..200u64 {
                t.insert(&mut tx, k * 7 + wave, k).unwrap();
            }
            for k in (0..200u64).filter(|k| k % 3 != 0) {
                t.remove(&mut tx, k * 7 + wave).unwrap();
            }
            t.check(&mut tx).unwrap();
        }
        // Survivors are exactly the k % 3 == 0 entries of each wave.
        for wave in 0..6u64 {
            for k in 0..200u64 {
                let expect = if k % 3 == 0 { Some(k) } else { None };
                assert_eq!(t.get(&mut tx, k * 7 + wave).unwrap(), expect);
            }
        }
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn scan_from_and_limits() {
        let (path, store) = temp_store("scan");
        let mut tx = store.begin();
        let mut t = BTree::create(&mut tx).unwrap().with_caps(4, 4);
        for k in (0..100u64).map(|k| k * 3) {
            t.insert(&mut tx, k, k + 1).unwrap();
        }
        let got = t.scan_from(&mut tx, 10, 5).unwrap();
        assert_eq!(got, vec![(12, 13), (15, 16), (18, 19), (21, 22), (24, 25)]);
        let all = t.scan_all(&mut tx).unwrap();
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        // Scan past the end.
        assert!(t.scan_from(&mut tx, 10_000, 10).unwrap().is_empty());
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn persists_across_reopen() {
        let (path, store) = temp_store("persist");
        let root = {
            let mut tx = store.begin();
            let mut t = BTree::create(&mut tx).unwrap();
            for k in 0..1000u64 {
                t.insert(&mut tx, k * 7, k).unwrap();
            }
            tx.set_root(1, t.root.0).unwrap();
            tx.commit().unwrap();
            t.root
        };
        drop(store);
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        assert_eq!(r.root(1).unwrap(), root.0);
        let t = BTree::open(root);
        for k in 0..1000u64 {
            assert_eq!(t.get(&mut r, k * 7).unwrap(), Some(k));
        }
        t.check(&mut r).unwrap();
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn full_capacity_nodes() {
        let (path, store) = temp_store("fullcap");
        let mut tx = store.begin();
        let mut t = BTree::create(&mut tx).unwrap();
        // Enough to split max-capacity leaves (254 entries) several times.
        for k in 0..2000u64 {
            t.insert(&mut tx, k, !k).unwrap();
        }
        t.check(&mut tx).unwrap();
        assert_eq!(t.height(&mut tx).unwrap(), 2);
        assert_eq!(t.len(&mut tx).unwrap(), 2000);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn boundary_keys() {
        let (path, store) = temp_store("boundary");
        let mut tx = store.begin();
        let mut t = BTree::create(&mut tx).unwrap();
        t.insert(&mut tx, 0, 1).unwrap();
        t.insert(&mut tx, u64::MAX, 2).unwrap();
        assert_eq!(t.get(&mut tx, 0).unwrap(), Some(1));
        assert_eq!(t.get(&mut tx, u64::MAX).unwrap(), Some(2));
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }
}
