//! # ode-storage — the persistent store beneath Ode
//!
//! The Ode paper's implementation rests on an in-house "persistence
//! library for C++" (the paper's reference 10) that manages persistent objects on
//! disk.  This crate is that substrate, built from scratch:
//!
//! * [`page`] — 4 KiB pages with typed headers and CRC32 checksums;
//! * [`pager`] — the database file: positional page read/write;
//! * [`buffer`] — a sharded LRU buffer pool with dirty tracking,
//!   shared lock-lightly by concurrent readers;
//! * [`wal`] — a redo-only write-ahead log with CRC-framed records and
//!   torn-tail recovery;
//! * [`gate`] — the writer-priority snapshot gate that keeps read
//!   transactions cross-page consistent while commits publish;
//! * [`store`] — the transactional facade combining all of the above:
//!   a single serialized writer (matching the paper's explicit
//!   "we do not discuss concurrency control" scope) alongside fully
//!   concurrent snapshot readers, with leader/follower WAL group
//!   commit;
//! * [`slotted`] — slotted-page record layout;
//! * [`heap`] — variable-length record storage with overflow chains;
//! * [`btree`] — a persistent B+-tree mapping `u64` keys to `u64` values,
//!   used by the object layer for object/version tables.
//!
//! Everything above the [`store`] API is deterministic given the same
//! sequence of transactions, which the crash-recovery tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
mod checksum;
mod error;
pub mod gate;
pub mod heap;
pub mod page;
pub mod pager;
pub mod slotted;
pub mod store;
pub mod wal;

pub use checksum::crc32;
pub use error::{Result, StorageError};
pub use gate::GateStats;
pub use page::{PageBuf, PageId, PAGE_SIZE};
pub use store::{
    IngestOutcome, PageRead, PageWrite, ReadTx, ReplSnapshot, Store, StoreOptions, StoreStats, Tx,
    WalSpan,
};
