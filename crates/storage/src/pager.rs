//! Raw page file: page-granular reads and writes with checksums.
//!
//! The pager knows nothing about allocation, free lists, or transactions —
//! that logic lives in [`crate::store`], which keeps the store header
//! (page 0) in the buffer pool like any other page.  The pager's only
//! responsibilities are positioned I/O, checksum sealing/verification,
//! and growing the file when a page beyond EOF is written (recovery may
//! apply write-ahead-log images out of order).
//!
//! All I/O is *positional* (`pread`/`pwrite`-style), so every method
//! takes `&self`: concurrent readers never contend on a shared file
//! cursor, which is what lets the buffer pool above serve cache misses
//! without an exclusive lock.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::page::{PageBuf, PageId, PAGE_SIZE};
use crate::{Result, StorageError};

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// File-backed page manager.
pub struct Pager {
    file: File,
    /// Number of whole pages physically present in the file.
    file_pages: AtomicU64,
    /// Cursor lock for the non-`pread` fallback; unused on unix.
    #[cfg(not(unix))]
    cursor: std::sync::Mutex<()>,
}

impl Pager {
    /// Create a new, empty page file (truncating any existing one).
    pub fn create(path: &Path) -> Result<Pager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Pager {
            file,
            file_pages: AtomicU64::new(0),
            #[cfg(not(unix))]
            cursor: std::sync::Mutex::new(()),
        })
    }

    /// Open an existing page file. The length must be page-aligned; a
    /// ragged tail means the file is not an Ode store (the WAL protects
    /// page writes, so torn pages inside the file are caught by
    /// checksums, not length checks).
    pub fn open(path: &Path) -> Result<Pager> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::BadMagic);
        }
        Ok(Pager {
            file,
            file_pages: AtomicU64::new(len / PAGE_SIZE as u64),
            #[cfg(not(unix))]
            cursor: std::sync::Mutex::new(()),
        })
    }

    /// Number of whole pages physically in the file.
    pub fn file_pages(&self) -> u64 {
        self.file_pages.load(Ordering::Acquire)
    }

    /// Read a page, verifying its checksum.
    pub fn read_page(&self, id: PageId) -> Result<PageBuf> {
        let file_pages = self.file_pages();
        if id.0 >= file_pages {
            return Err(StorageError::PageOutOfBounds {
                page: id,
                page_count: file_pages,
            });
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.read_exact_at(&mut buf, id.file_offset())?;
        let page = PageBuf::from_vec(buf).expect("page-sized buffer");
        if !page.verify() {
            return Err(StorageError::ChecksumMismatch { page: id });
        }
        Ok(page)
    }

    /// Write a page image, sealing its checksum. Writing beyond EOF grows
    /// the file; any gap pages are zero-filled (and will fail checksum
    /// verification if ever read before being written, which is the
    /// desired corruption signal).
    ///
    /// Writers are externally serialized (recovery, then the store's
    /// checkpoint path, both run under the store's write lock); `&self`
    /// here only grants lock-free *reads* alongside them.
    pub fn write_page(&self, id: PageId, page: &mut PageBuf) -> Result<()> {
        page.seal();
        if id.0 >= self.file_pages() {
            self.file.set_len((id.0 + 1) * PAGE_SIZE as u64)?;
            self.file_pages.fetch_max(id.0 + 1, Ordering::AcqRel);
        }
        self.write_all_at(page.as_bytes(), id.file_offset())?;
        Ok(())
    }

    /// Replace the whole file with `bytes` (a snapshot of another
    /// store's page file, installed by replication). The caller holds
    /// the store's write lock *and* the snapshot gate exclusively, so
    /// no reader can observe the half-replaced file.
    pub fn replace_contents(&self, bytes: &[u8]) -> Result<()> {
        if !bytes.len().is_multiple_of(PAGE_SIZE) {
            return Err(StorageError::BadMagic);
        }
        self.file.set_len(bytes.len() as u64)?;
        if !bytes.is_empty() {
            self.write_all_at(bytes, 0)?;
        }
        self.file_pages
            .store((bytes.len() / PAGE_SIZE) as u64, Ordering::Release);
        self.file.sync_data()?;
        Ok(())
    }

    /// Read the raw bytes of the whole file (the shipping side of
    /// [`Pager::replace_contents`]). The caller serializes against
    /// writers; concurrent positional reads are unaffected.
    pub fn raw_contents(&self) -> Result<Vec<u8>> {
        let len = (self.file_pages() as usize) * PAGE_SIZE;
        let mut buf = vec![0u8; len];
        if len > 0 {
            self.read_exact_at(&mut buf, 0)?;
        }
        Ok(buf)
    }

    /// fsync the file.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    #[cfg(unix)]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        self.file.read_exact_at(buf, offset)
    }

    #[cfg(unix)]
    fn write_all_at(&self, buf: &[u8], offset: u64) -> std::io::Result<()> {
        self.file.write_all_at(buf, offset)
    }

    #[cfg(not(unix))]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let _cursor = self
            .cursor
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (&self.file).seek(SeekFrom::Start(offset))?;
        (&self.file).read_exact(buf)
    }

    #[cfg(not(unix))]
    fn write_all_at(&self, buf: &[u8], offset: u64) -> std::io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let _cursor = self
            .cursor
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (&self.file).seek(SeekFrom::Start(offset))?;
        (&self.file).write_all(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-pager-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn write_read_round_trip() {
        let path = temp_path("rt");
        let pager = Pager::create(&path).unwrap();
        let mut page = PageBuf::new(PageKind::Heap);
        page.payload_mut()[..4].copy_from_slice(b"data");
        pager.write_page(PageId(0), &mut page).unwrap();
        let back = pager.read_page(PageId(0)).unwrap();
        assert_eq!(&back.payload()[..4], b"data");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn write_beyond_eof_grows_file() {
        let path = temp_path("grow");
        let pager = Pager::create(&path).unwrap();
        let mut page = PageBuf::new(PageKind::Heap);
        pager.write_page(PageId(5), &mut page).unwrap();
        assert_eq!(pager.file_pages(), 6);
        // The zero-filled gap page fails its checksum if read.
        assert!(matches!(
            pager.read_page(PageId(3)),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reopen_preserves_pages() {
        let path = temp_path("reopen");
        {
            let pager = Pager::create(&path).unwrap();
            let mut page = PageBuf::new(PageKind::Heap);
            page.payload_mut()[0] = 7;
            pager.write_page(PageId(2), &mut page).unwrap();
            pager.sync().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.file_pages(), 3);
        assert_eq!(pager.read_page(PageId(2)).unwrap().payload()[0], 7);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn ragged_file_rejected() {
        let path = temp_path("ragged");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(matches!(Pager::open(&path), Err(StorageError::BadMagic)));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn corruption_detected() {
        let path = temp_path("corrupt");
        {
            let pager = Pager::create(&path).unwrap();
            let mut page = PageBuf::new(PageKind::Heap);
            pager.write_page(PageId(0), &mut page).unwrap();
        }
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(100)).unwrap();
            f.write_all(&[0xFF]).unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        assert!(matches!(
            pager.read_page(PageId(0)),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let path = temp_path("oob");
        let pager = Pager::create(&path).unwrap();
        assert!(matches!(
            pager.read_page(PageId(5)),
            Err(StorageError::PageOutOfBounds { .. })
        ));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn concurrent_positional_reads() {
        let path = temp_path("concread");
        let pager = Pager::create(&path).unwrap();
        for i in 0..16u64 {
            let mut page = PageBuf::new(PageKind::Heap);
            page.write_u64(16, i * 3);
            pager.write_page(PageId(i), &mut page).unwrap();
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..16u64 {
                        let page = pager.read_page(PageId(i)).unwrap();
                        assert_eq!(page.read_u64(16), i * 3);
                    }
                });
            }
        });
        std::fs::remove_file(path).unwrap();
    }
}
