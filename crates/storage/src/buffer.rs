//! Buffer pool: an LRU cache of page images between the transactional
//! store and the pager.
//!
//! The pool is the single source of truth for a page once loaded: reads
//! and writes go through it, and dirty pages are only written back to the
//! database file at checkpoint time (the WAL provides durability between
//! checkpoints).  Dirty pages are therefore **never evicted** — eviction
//! only reclaims clean frames.  If every frame is dirty the pool grows
//! past its target capacity until the next checkpoint, which is safe but
//! flagged by [`BufferPool::over_target`] so callers can checkpoint.

use std::collections::HashMap;

use crate::page::{PageBuf, PageId};
use crate::pager::Pager;
use crate::Result;

/// Statistics maintained by the pool (exposed for benches and tests).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Lookups satisfied from the pool.
    pub hits: u64,
    /// Lookups that had to read from the file.
    pub misses: u64,
    /// Clean frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back during checkpoints.
    pub writebacks: u64,
}

struct Frame {
    page: PageBuf,
    dirty: bool,
    /// LRU clock: larger is more recent.
    last_used: u64,
}

/// An LRU page cache over a [`Pager`].
pub struct BufferPool {
    frames: HashMap<u64, Frame>,
    capacity: usize,
    tick: u64,
    stats: BufferStats,
}

impl BufferPool {
    /// Create a pool holding up to `capacity` pages (minimum 4).
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            frames: HashMap::new(),
            capacity: capacity.max(4),
            tick: 0,
            stats: BufferStats::default(),
        }
    }

    fn touch(&mut self, id: PageId) {
        self.tick += 1;
        if let Some(f) = self.frames.get_mut(&id.0) {
            f.last_used = self.tick;
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the pool holds no pages.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether the pool has grown beyond its target capacity because all
    /// frames are dirty (a hint that a checkpoint is due).
    pub fn over_target(&self) -> bool {
        self.frames.len() > self.capacity
    }

    /// Get a read-only view of a page, loading it on miss.
    pub fn get<'a>(&'a mut self, pager: &mut Pager, id: PageId) -> Result<&'a PageBuf> {
        self.ensure_resident(pager, id)?;
        self.touch(id);
        Ok(&self.frames.get(&id.0).expect("just ensured resident").page)
    }

    /// Get a mutable view of a page, marking it dirty.
    pub fn get_mut<'a>(&'a mut self, pager: &mut Pager, id: PageId) -> Result<&'a mut PageBuf> {
        self.ensure_resident(pager, id)?;
        self.touch(id);
        let frame = self.frames.get_mut(&id.0).expect("just ensured resident");
        frame.dirty = true;
        Ok(&mut frame.page)
    }

    /// Insert a freshly allocated page image (already durable in the file
    /// as zeroes; marked dirty so real contents reach the file later).
    pub fn install(
        &mut self,
        pager: &mut Pager,
        id: PageId,
        page: PageBuf,
        dirty: bool,
    ) -> Result<()> {
        self.evict_if_needed(pager)?;
        self.tick += 1;
        self.frames.insert(
            id.0,
            Frame {
                page,
                dirty,
                last_used: self.tick,
            },
        );
        Ok(())
    }

    /// Drop a page from the pool without write-back (used when a page is
    /// freed: its contents are dead).
    pub fn discard(&mut self, id: PageId) {
        self.frames.remove(&id.0);
    }

    /// Mark a resident page clean (after recovery installs a WAL image
    /// that is already durable in the log).
    pub fn mark_clean(&mut self, id: PageId) {
        if let Some(f) = self.frames.get_mut(&id.0) {
            f.dirty = false;
        }
    }

    /// Whether a page is resident and dirty.
    pub fn is_dirty(&self, id: PageId) -> bool {
        self.frames.get(&id.0).is_some_and(|f| f.dirty)
    }

    /// Ids of all dirty resident pages.
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, _)| PageId(id))
            .collect();
        v.sort();
        v
    }

    /// Write all dirty pages back to the file and mark them clean.
    pub fn flush_all(&mut self, pager: &mut Pager) -> Result<()> {
        let dirty = self.dirty_pages();
        for id in dirty {
            let frame = self.frames.get_mut(&id.0).expect("listed as dirty");
            pager.write_page(id, &mut frame.page)?;
            frame.dirty = false;
            self.stats.writebacks += 1;
        }
        Ok(())
    }

    /// Remove everything from the pool (test aid; dirty pages must have
    /// been flushed first).
    pub fn clear(&mut self) {
        debug_assert!(self.dirty_pages().is_empty(), "clearing dirty pool");
        self.frames.clear();
    }

    fn ensure_resident(&mut self, pager: &mut Pager, id: PageId) -> Result<()> {
        if self.frames.contains_key(&id.0) {
            self.stats.hits += 1;
            return Ok(());
        }
        self.stats.misses += 1;
        let page = pager.read_page(id)?;
        self.evict_if_needed(pager)?;
        self.tick += 1;
        self.frames.insert(
            id.0,
            Frame {
                page,
                dirty: false,
                last_used: self.tick,
            },
        );
        Ok(())
    }

    fn evict_if_needed(&mut self, _pager: &mut Pager) -> Result<()> {
        while self.frames.len() >= self.capacity {
            // Find the least recently used *clean* frame.
            let victim = self
                .frames
                .iter()
                .filter(|(_, f)| !f.dirty)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&id, _)| id);
            match victim {
                Some(id) => {
                    self.frames.remove(&id);
                    self.stats.evictions += 1;
                }
                // All frames dirty: allow temporary growth (see module doc).
                None => break,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn temp_pager(name: &str) -> (std::path::PathBuf, Pager) {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-buffer-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let pager = Pager::create(&p).unwrap();
        (p, pager)
    }

    /// Write `n` fresh heap pages to the file, returning their ids.
    fn seed_pages(pager: &mut Pager, n: u64) -> Vec<PageId> {
        (0..n)
            .map(|i| {
                let id = PageId(i);
                let mut page = PageBuf::new(PageKind::Heap);
                pager.write_page(id, &mut page).unwrap();
                id
            })
            .collect()
    }

    #[test]
    fn hit_miss_accounting() {
        let (path, mut pager) = temp_pager("hitmiss");
        let id = seed_pages(&mut pager, 1)[0];
        let page = pager.read_page(id).unwrap();
        let mut pool = BufferPool::new(8);
        pool.install(&mut pager, id, page, false).unwrap();
        pool.get(&mut pager, id).unwrap();
        pool.get(&mut pager, id).unwrap();
        assert_eq!(pool.stats().hits, 2);
        assert_eq!(pool.stats().misses, 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn lru_evicts_least_recent_clean() {
        let (path, mut pager) = temp_pager("lru");
        let ids = seed_pages(&mut pager, 6);
        let mut pool = BufferPool::new(4);
        for &id in &ids[..4] {
            pool.get(&mut pager, id).unwrap();
        }
        // Touch ids[0] so ids[1] becomes the LRU victim.
        pool.get(&mut pager, ids[0]).unwrap();
        pool.get(&mut pager, ids[4]).unwrap(); // evicts ids[1]
        assert_eq!(pool.stats().evictions, 1);
        // ids[1] is a miss now; ids[0] is still a hit.
        let before = pool.stats().misses;
        pool.get(&mut pager, ids[0]).unwrap();
        assert_eq!(pool.stats().misses, before);
        pool.get(&mut pager, ids[1]).unwrap();
        assert_eq!(pool.stats().misses, before + 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn dirty_pages_survive_eviction_pressure() {
        let (path, mut pager) = temp_pager("dirty");
        let ids = seed_pages(&mut pager, 8);
        let mut pool = BufferPool::new(4);
        for &id in &ids[..4] {
            let p = pool.get_mut(&mut pager, id).unwrap();
            p.payload_mut()[0] = id.0 as u8;
        }
        // All four frames dirty; loading more must not evict them.
        for &id in &ids[4..] {
            pool.get(&mut pager, id).unwrap();
        }
        assert!(pool.over_target());
        for &id in &ids[..4] {
            assert!(pool.is_dirty(id));
            let p = pool.get(&mut pager, id).unwrap();
            assert_eq!(p.payload()[0], id.0 as u8);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn flush_all_writes_back_and_cleans() {
        let (path, mut pager) = temp_pager("flush");
        let id = seed_pages(&mut pager, 1)[0];
        let mut pool = BufferPool::new(4);
        pool.get_mut(&mut pager, id).unwrap().payload_mut()[0] = 0xAB;
        pool.flush_all(&mut pager).unwrap();
        assert!(!pool.is_dirty(id));
        assert_eq!(pool.stats().writebacks, 1);
        // Verify via a fresh read from the file.
        let back = pager.read_page(id).unwrap();
        assert_eq!(back.payload()[0], 0xAB);
        std::fs::remove_file(path).unwrap();
    }
}
