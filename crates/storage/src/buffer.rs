//! Buffer pool: a sharded, concurrently readable cache of page images
//! between the transactional store and the pager.
//!
//! The pool is the single source of truth for a page once loaded: reads
//! and writes go through it, and dirty pages are only written back to the
//! database file at checkpoint time (the WAL provides durability between
//! checkpoints).  Dirty pages are therefore **never evicted** — eviction
//! only reclaims clean frames.  If every frame is dirty the pool grows
//! past its target capacity until the next checkpoint, which is safe but
//! flagged by [`BufferPool::over_target`] so callers can checkpoint.
//!
//! Concurrency: frames live in [`SHARDS`] independent hash maps, each
//! behind its own `RwLock`, and hold their page image as an
//! `Arc<PageBuf>`.  A cache hit takes one shard *read* lock just long
//! enough to clone the `Arc` — readers never block other readers, and a
//! reader of shard A never touches shard B's lock.  A miss reads the
//! page from the file *outside* any lock (the pager is positional), then
//! takes the shard write lock only to insert.  Writers publish committed
//! after-images with [`BufferPool::publish`], which replaces the frame
//! wholesale: any reader still holding the old `Arc` keeps its
//! consistent old image (the store's snapshot gate decides *when*
//! publishing is allowed; the pool just makes it safe).
//!
//! The dirty-pages-are-never-evicted rule doubles as the torn-read
//! guard: a page whose latest committed image has not reached the file
//! is always resident, so no reader can miss to the file and observe a
//! half-written page while a checkpoint is streaming it out.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::page::{PageBuf, PageId};
use crate::pager::Pager;
use crate::Result;

/// Number of independent shard locks. Power of two so the shard pick is
/// a mask; 16 is plenty for the thread counts a single store sees.
const SHARDS: usize = 16;

/// Statistics maintained by the pool (exposed for benches and tests).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Lookups satisfied from the pool.
    pub hits: u64,
    /// Lookups that had to read from the file.
    pub misses: u64,
    /// Clean frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back during checkpoints.
    pub writebacks: u64,
}

struct Frame {
    page: Arc<PageBuf>,
    dirty: bool,
    /// Store epoch at which this image was published (0 for images
    /// loaded from the file, which are older than any live commit).
    epoch: u64,
    /// LRU clock: larger is more recent. Atomic so hits can touch it
    /// under the shard *read* lock.
    last_used: AtomicU64,
}

#[derive(Default)]
struct Shard {
    frames: HashMap<u64, Frame>,
}

/// A sharded LRU page cache over a [`Pager`].
pub struct BufferPool {
    shards: Vec<RwLock<Shard>>,
    /// Target capacity in pages across all shards.
    capacity: usize,
    /// Total resident frames (kept outside the shard locks so
    /// [`BufferPool::over_target`] is a single atomic load).
    resident: AtomicUsize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl BufferPool {
    /// Create a pool holding up to `capacity` pages (minimum 4 per shard
    /// so tiny configurations still behave).
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            capacity: capacity.max(4 * SHARDS),
            resident: AtomicUsize::new(0),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: PageId) -> &RwLock<Shard> {
        &self.shards[(id.0 as usize) & (SHARDS - 1)]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current statistics.
    pub fn stats(&self) -> BufferStats {
        BufferStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Whether the pool holds no pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the pool has grown beyond its target capacity because all
    /// frames are dirty (a hint that a checkpoint is due).
    pub fn over_target(&self) -> bool {
        self.len() > self.capacity
    }

    /// Shared lookup: return the page's current image, loading it from
    /// the file on miss. Hits take one shard read lock; misses do the
    /// file read outside any lock and only take the shard write lock to
    /// insert.
    pub fn get(&self, pager: &Pager, id: PageId) -> Result<Arc<PageBuf>> {
        {
            let shard = self.shard(id).read();
            if let Some(frame) = shard.frames.get(&id.0) {
                frame.last_used.store(self.next_tick(), Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&frame.page));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let loaded = Arc::new(pager.read_page(id)?);
        let mut shard = self.shard(id).write();
        // Another thread may have loaded (or a writer published) the page
        // while we read the file; theirs is at least as new — keep it.
        if let Some(frame) = shard.frames.get(&id.0) {
            frame.last_used.store(self.next_tick(), Ordering::Relaxed);
            return Ok(Arc::clone(&frame.page));
        }
        self.evict_from(&mut shard);
        shard.frames.insert(
            id.0,
            Frame {
                page: Arc::clone(&loaded),
                dirty: false,
                epoch: 0,
                last_used: AtomicU64::new(self.next_tick()),
            },
        );
        self.resident.fetch_add(1, Ordering::Relaxed);
        Ok(loaded)
    }

    /// Publish a committed page image, replacing any resident frame.
    /// Readers holding the old `Arc` keep their old image. Called by the
    /// store's commit path (under its snapshot gate) and by recovery.
    pub fn publish(&self, id: PageId, page: Arc<PageBuf>, dirty: bool, epoch: u64) {
        let mut shard = self.shard(id).write();
        let tick = self.next_tick();
        match shard.frames.entry(id.0) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let frame = e.get_mut();
                frame.page = page;
                frame.dirty = dirty;
                frame.epoch = epoch;
                frame.last_used.store(tick, Ordering::Relaxed);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Frame {
                    page,
                    dirty,
                    epoch,
                    last_used: AtomicU64::new(tick),
                });
                self.resident.fetch_add(1, Ordering::Relaxed);
            }
        }
        if !dirty {
            // Clean publishes (recovery installs) may push a shard over
            // its share; reclaim clean LRU frames.
            self.evict_from(&mut shard);
        }
    }

    /// Drop a page from the pool without write-back (used when a page is
    /// freed: its contents are dead).
    pub fn discard(&self, id: PageId) {
        let mut shard = self.shard(id).write();
        if shard.frames.remove(&id.0).is_some() {
            self.resident.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Whether a page is resident and dirty.
    pub fn is_dirty(&self, id: PageId) -> bool {
        self.shard(id)
            .read()
            .frames
            .get(&id.0)
            .is_some_and(|f| f.dirty)
    }

    /// Epoch stamped on the page's resident frame, if any.
    pub fn frame_epoch(&self, id: PageId) -> Option<u64> {
        self.shard(id).read().frames.get(&id.0).map(|f| f.epoch)
    }

    /// Ids of all dirty resident pages, ascending.
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            v.extend(
                shard
                    .frames
                    .iter()
                    .filter(|(_, f)| f.dirty)
                    .map(|(&id, _)| PageId(id)),
            );
        }
        v.sort();
        v
    }

    /// Write all dirty pages back to the file and mark them clean
    /// (checkpoint). The caller (the store) serializes checkpoints under
    /// its write lock; concurrent *readers* are unaffected because each
    /// frame's image is only sealed on a clone.
    pub fn flush_all(&self, pager: &Pager) -> Result<()> {
        for id in self.dirty_pages() {
            // Snapshot the image with a read lock only: the single
            // writer is parked in this very call, so the frame cannot
            // change between the clone and the write-back.
            let image = {
                let shard = self.shard(id).read();
                match shard.frames.get(&id.0) {
                    Some(f) if f.dirty => Arc::clone(&f.page),
                    _ => continue,
                }
            };
            let mut sealed = (*image).clone();
            pager.write_page(id, &mut sealed)?;
            self.writebacks.fetch_add(1, Ordering::Relaxed);
            let mut shard = self.shard(id).write();
            if let Some(f) = shard.frames.get_mut(&id.0) {
                f.dirty = false;
            }
        }
        Ok(())
    }

    /// Drop every frame, dirty or clean, without write-back. Used when
    /// the underlying file is wholesale replaced (a replica installing
    /// a shipped snapshot): all cached state — including dirty pages —
    /// describes the discarded store. The caller holds the snapshot
    /// gate exclusively, so no reader can miss to the file mid-swap.
    pub fn purge(&self) {
        for shard in &self.shards {
            let mut shard = shard.write();
            let n = shard.frames.len();
            shard.frames.clear();
            self.resident.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Remove everything from the pool (test aid; dirty pages must have
    /// been flushed first).
    pub fn clear(&self) {
        debug_assert!(self.dirty_pages().is_empty(), "clearing dirty pool");
        for shard in &self.shards {
            let mut shard = shard.write();
            let n = shard.frames.len();
            shard.frames.clear();
            self.resident.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Evict clean LRU frames while this shard exceeds its share of the
    /// pool capacity. Dirty frames are never evicted (see module docs).
    fn evict_from(&self, shard: &mut Shard) {
        let per_shard = self.capacity / SHARDS;
        while shard.frames.len() >= per_shard {
            let victim = shard
                .frames
                .iter()
                .filter(|(_, f)| !f.dirty)
                .min_by_key(|(_, f)| f.last_used.load(Ordering::Relaxed))
                .map(|(&id, _)| id);
            match victim {
                Some(id) => {
                    shard.frames.remove(&id);
                    self.resident.fetch_sub(1, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // All frames dirty: allow temporary growth (see module doc).
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn temp_pager(name: &str) -> (std::path::PathBuf, Pager) {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-buffer-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let pager = Pager::create(&p).unwrap();
        (p, pager)
    }

    /// Write `n` fresh heap pages to the file, returning their ids.
    fn seed_pages(pager: &Pager, n: u64) -> Vec<PageId> {
        (0..n)
            .map(|i| {
                let id = PageId(i);
                let mut page = PageBuf::new(PageKind::Heap);
                page.write_u64(16, i);
                pager.write_page(id, &mut page).unwrap();
                id
            })
            .collect()
    }

    #[test]
    fn hit_miss_accounting() {
        let (path, pager) = temp_pager("hitmiss");
        let id = seed_pages(&pager, 1)[0];
        let pool = BufferPool::new(8);
        pool.get(&pager, id).unwrap();
        assert_eq!(pool.stats().misses, 1);
        pool.get(&pager, id).unwrap();
        pool.get(&pager, id).unwrap();
        assert_eq!(pool.stats().hits, 2);
        assert_eq!(pool.stats().misses, 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn publish_replaces_but_old_pins_survive() {
        let (path, pager) = temp_pager("publish");
        let id = seed_pages(&pager, 1)[0];
        let pool = BufferPool::new(64);
        let old = pool.get(&pager, id).unwrap();
        assert_eq!(old.read_u64(16), 0);
        let mut new_img = PageBuf::new(PageKind::Heap);
        new_img.write_u64(16, 99);
        pool.publish(id, Arc::new(new_img), true, 7);
        // The pin still sees the old image; a fresh lookup sees the new.
        assert_eq!(old.read_u64(16), 0);
        assert_eq!(pool.get(&pager, id).unwrap().read_u64(16), 99);
        assert!(pool.is_dirty(id));
        assert_eq!(pool.frame_epoch(id), Some(7));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn dirty_pages_survive_eviction_pressure() {
        let (path, pager) = temp_pager("dirty");
        // All ids in one shard (multiples of SHARDS) so they contend for
        // the same per-shard budget.
        let pool = BufferPool::new(0); // floor: 4 per shard
        let ids: Vec<PageId> = (0..8).map(|i| PageId(i * SHARDS as u64)).collect();
        for &id in &ids {
            let mut page = PageBuf::new(PageKind::Heap);
            page.write_u64(16, id.0);
            pager.write_page(id, &mut page).unwrap();
        }
        for &id in &ids[..4] {
            let mut dirty_img = PageBuf::new(PageKind::Heap);
            dirty_img.write_u64(16, id.0 + 1000);
            pool.publish(id, Arc::new(dirty_img), true, 1);
        }
        // Four dirty frames fill the shard's share; loading more clean
        // pages must not evict them.
        for &id in &ids[4..] {
            pool.get(&pager, id).unwrap();
        }
        for &id in &ids[..4] {
            assert!(pool.is_dirty(id));
            assert_eq!(pool.get(&pager, id).unwrap().read_u64(16), id.0 + 1000);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn flush_all_writes_back_and_cleans() {
        let (path, pager) = temp_pager("flush");
        let id = seed_pages(&pager, 1)[0];
        let pool = BufferPool::new(64);
        let mut img = PageBuf::new(PageKind::Heap);
        img.write_u64(16, 0xAB);
        pool.publish(id, Arc::new(img), true, 1);
        pool.flush_all(&pager).unwrap();
        assert!(!pool.is_dirty(id));
        assert_eq!(pool.stats().writebacks, 1);
        // Verify via a fresh read from the file.
        let back = pager.read_page(id).unwrap();
        assert_eq!(back.read_u64(16), 0xAB);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn concurrent_readers_share_one_load() {
        let (path, pager) = temp_pager("concurrent");
        let ids = seed_pages(&pager, 32);
        let pool = BufferPool::new(256);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        for &id in &ids {
                            let page = pool.get(&pager, id).unwrap();
                            assert_eq!(page.read_u64(16), id.0);
                        }
                    }
                });
            }
        });
        // Every page was loaded at most a handful of times (racing
        // first-loads), then served from cache.
        let stats = pool.stats();
        assert!(stats.misses <= 32 * 4);
        assert!(stats.hits >= 4 * 50 * 32 - stats.misses);
        std::fs::remove_file(path).unwrap();
    }
}
