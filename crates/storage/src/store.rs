//! Transactional store: the facade combining pager, buffer pool, WAL,
//! snapshot gate, and group commit.
//!
//! Concurrency model: **many concurrent readers, many concurrent
//! writers (optimistic), with an exclusive-writer mode retained.**
//!
//! * A [`ReadTx`] holds the shared side of the [`SnapshotGate`] and
//!   resolves pages through the sharded buffer pool (or the pager on a
//!   miss) — it takes no exclusive lock anywhere, so read transactions
//!   run fully in parallel with each other, and they can never abort.
//! * An *exclusive* [`Tx`] ([`Store::begin`]) holds the store's write
//!   mutex for its lifetime (writers serialize, matching the paper's
//!   single-writer scope) and buffers every mutation in a **private
//!   write set**.  Nothing a transaction writes is visible to anyone
//!   until commit; abort is simply dropping the write set.
//! * An *optimistic* [`Tx`] ([`Store::begin_optimistic`]) builds the
//!   same private write set with **no lock held**, tracking the page
//!   ids it reads and writes. Commit validates that set against the
//!   commits that landed since the transaction began (a bounded
//!   commit log of recent write sets, first-committer-wins) inside a
//!   short critical section under the write mutex; a loser aborts with
//!   [`StorageError::WriteConflict`] before touching the WAL, and the
//!   caller re-executes it. Each page fetch also revalidates when the
//!   epoch has advanced, so every read view is consistent and doomed
//!   transactions fail at the first stale fetch instead of at commit.
//! * Commit appends after-images (or byte-range deltas) plus a commit
//!   record to the WAL, then takes the snapshot gate's exclusive side
//!   for the brief *publish* step: bump the store epoch and install the
//!   after-images into the buffer pool.  Readers therefore always see a
//!   whole committed prefix — never a torn commit.
//! * With [`StoreOptions::group_commit`] enabled, the WAL fsync is
//!   amortized across concurrent committers (leader/follower): the
//!   commit publishes first and then waits until a group leader's
//!   single `fsync` covers its log position.  `commit()` never returns
//!   before the transaction is durable; the only effect of the
//!   reordering is that *other* transactions may observe data up to
//!   [`StoreOptions::group_commit_window`] before it is durable —
//!   standard early-lock-release semantics.
//!
//! Durability protocol (unchanged from the single-lock engine):
//!
//! * page 0 is the store header (magic, page count, free-list head, and
//!   sixteen named *root slots* used by higher layers);
//! * during a transaction all page mutations stay in the write set;
//! * commit appends after-images + a commit record to the WAL (fsync
//!   governed by [`StoreOptions::sync_on_commit`]);
//! * abort (dropping a [`Tx`] uncommitted) discards the write set;
//! * checkpoint writes dirty pool pages to the database file, fsyncs,
//!   and resets the WAL;
//! * open replays committed WAL images into the database file.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, MutexGuard};

use crate::buffer::{BufferPool, BufferStats};
use crate::gate::SnapshotGate;
use crate::page::{PageBuf, PageId, PageKind, PAGE_SIZE};
use crate::pager::Pager;
use crate::wal::{
    committed_changes, delta_payload_len, page_diff_ops, CommittedChange, FrameScanner, Wal,
    WalRecord, WalSyncHandle,
};
use crate::{Result, StorageError};

/// Magic number identifying an Ode store header page.
pub const MAGIC: u32 = 0x4F44_4531; // "ODE1"
/// Current file-format version.
pub const FORMAT_VERSION: u32 = 1;
/// Number of named root slots in the header.
pub const ROOT_SLOTS: usize = 16;

/// Header-page field offsets (bytes ≥ 16 are past the common page header).
mod hdr {
    pub const MAGIC: usize = 16;
    pub const FORMAT_VERSION: usize = 20;
    pub const PAGE_COUNT: usize = 24;
    pub const FREE_HEAD: usize = 32;
    pub const ROOTS: usize = 40;
}

/// Tuning and durability options for a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Buffer-pool capacity in pages.
    pub buffer_pages: usize,
    /// fsync the WAL on every commit. Disable only for benchmarks where
    /// durability of the tail is irrelevant.
    pub sync_on_commit: bool,
    /// Checkpoint automatically once the WAL exceeds this many bytes.
    pub checkpoint_wal_bytes: u64,
    /// Log changed byte ranges instead of full page images when a page's
    /// delta is small — the storage-level "small changes have small
    /// impact". Full images remain the fallback for heavily rewritten
    /// pages.
    pub wal_deltas: bool,
    /// Amortize commit fsyncs across concurrent committers: the first
    /// committer to reach the sync step fsyncs once for every commit
    /// appended so far (leader/follower). Only meaningful with
    /// [`StoreOptions::sync_on_commit`]; `commit()` still returns only
    /// after the transaction is durable.
    pub group_commit: bool,
    /// How long a group-commit leader waits before fsyncing, letting
    /// more concurrent commits join its cohort. Zero (the default)
    /// means no deliberate wait — batching then comes only from commits
    /// that arrive while a previous fsync is in flight, which keeps
    /// single-writer latency unchanged.
    pub group_commit_window: Duration,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            buffer_pages: 1024,
            sync_on_commit: true,
            checkpoint_wal_bytes: 16 * 1024 * 1024,
            wal_deltas: true,
            group_commit: true,
            group_commit_window: Duration::ZERO,
        }
    }
}

/// Gap tolerance when merging changed byte runs into delta ops.
const DELTA_RUN_GAP: usize = 24;
/// Deltas whose payload exceeds this fall back to a full page image.
const DELTA_MAX_PAYLOAD: usize = (PAGE_SIZE * 3) / 4;

/// Contention and commit statistics (monotone totals; see
/// [`Store::stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Read transactions begun.
    pub read_txs: u64,
    /// Write transactions committed with a non-empty write set.
    pub write_txs: u64,
    /// Read transactions that blocked at the snapshot gate (behind a
    /// publishing or waiting writer).
    pub reader_waits: u64,
    /// Total nanoseconds readers spent blocked at the gate.
    pub reader_wait_nanos: u64,
    /// Writer acquisitions (write mutex or publish gate) that blocked.
    pub writer_waits: u64,
    /// Total nanoseconds writers spent blocked.
    pub writer_wait_nanos: u64,
    /// WAL fsyncs issued (inline and group-leader).
    pub wal_syncs: u64,
    /// fsyncs performed by a group-commit leader.
    pub group_syncs: u64,
    /// Commits made durable by a group-leader fsync.
    pub group_commit_txns: u64,
    /// Largest commit cohort one group fsync covered.
    pub group_batch_max: u64,
    /// WAL bytes shipped to replicas (primary side; counted by the
    /// replication hub via [`Store::note_bytes_shipped`]).
    pub bytes_shipped: u64,
    /// Current replica lag in epochs: the primary's epoch minus the
    /// slowest connected replica's acked epoch (a gauge, set by the
    /// replication hub; 0 with no replicas or when caught up).
    pub replica_lag_epochs: u64,
    /// Times this store was promoted from replica to primary.
    pub failovers: u64,
    /// Optimistic transactions aborted with
    /// [`StorageError::WriteConflict`] because a page they touched was
    /// committed by another writer after they began.
    pub write_conflicts: u64,
    /// Times a caller re-executed a conflicted transaction (counted by
    /// the retry loop above the engine via [`Store::note_write_retry`]).
    pub write_retries: u64,
}

#[derive(Default)]
struct Counters {
    read_txs: AtomicU64,
    write_txs: AtomicU64,
    writer_lock_waits: AtomicU64,
    writer_lock_wait_nanos: AtomicU64,
    wal_syncs: AtomicU64,
    group_syncs: AtomicU64,
    group_commit_txns: AtomicU64,
    group_batch_max: AtomicU64,
    bytes_shipped: AtomicU64,
    replica_lag_epochs: AtomicU64,
    failovers: AtomicU64,
    write_conflicts: AtomicU64,
    write_retries: AtomicU64,
}

/// How many recent commits the [`CommitLog`] retains for optimistic
/// validation. A transaction whose begin epoch has already been trimmed
/// conservatively conflicts — in practice that needs a transaction to
/// stay open across thousands of foreign commits.
const COMMIT_LOG_CAP: usize = 4096;

/// Bounded record of recently committed write sets, consulted by
/// optimistic transactions (see [`Store::begin_optimistic`]) to decide
/// whether any page they observed was overwritten after they observed
/// it. Appended inside every publish critical section (local commits
/// and replica applies alike), so a validator holding either the write
/// mutex or the gate's shared side sees a log exactly consistent with
/// the epoch counter.
struct CommitLog {
    inner: Mutex<CommitLogInner>,
}

struct CommitLogInner {
    /// `(epoch, written page ids)` per publish, oldest first.
    entries: VecDeque<(u64, Box<[u64]>)>,
    /// Highest epoch that has been trimmed from `entries` (or predates
    /// this log). Validation windows starting below it must
    /// conservatively report a conflict.
    horizon: u64,
}

impl CommitLog {
    fn new(horizon: u64) -> CommitLog {
        CommitLog {
            inner: Mutex::new(CommitLogInner {
                entries: VecDeque::new(),
                horizon,
            }),
        }
    }

    /// Record one published commit's write set.
    fn record(&self, epoch: u64, pages: Box<[u64]>) {
        let mut inner = self.inner.lock();
        debug_assert!(inner.entries.back().is_none_or(|(e, _)| *e < epoch));
        inner.entries.push_back((epoch, pages));
        while inner.entries.len() > COMMIT_LOG_CAP {
            let (trimmed, _) = inner.entries.pop_front().expect("len > cap");
            inner.horizon = trimmed;
        }
    }

    /// Drop everything and restart the horizon at `epoch` (snapshot
    /// install rewrites the whole store, so no prior window is valid).
    fn reset(&self, epoch: u64) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.horizon = epoch;
    }

    /// Whether any commit with epoch `> since` wrote a page for which
    /// `touched` returns true. Conservatively true when `since` predates
    /// the retained window.
    fn conflicts_since(&self, since: u64, touched: impl Fn(u64) -> bool) -> bool {
        let inner = self.inner.lock();
        if since < inner.horizon {
            return true;
        }
        inner
            .entries
            .iter()
            .rev()
            .take_while(|(epoch, _)| *epoch > since)
            .any(|(_, pages)| pages.iter().any(|&p| touched(p)))
    }
}

/// State reachable only through the store's write mutex.
struct WriteState {
    wal: Wal,
    /// Monotone count of logical bytes ever appended to the WAL. Unlike
    /// `wal.len()` this survives checkpoint resets, so it can serve as a
    /// group-commit sync target.
    logical_pos: u64,
    /// Logical position of the start of the current WAL file (invariant:
    /// `base_pos == logical_pos - wal.len()`). The shipping coordinate:
    /// a replica asking for bytes below `base_pos` needs a fresh
    /// snapshot, because a checkpoint already recycled that span.
    base_pos: u64,
    /// Monotone count of committed (non-empty) write transactions.
    commit_seq: u64,
    /// Replication apply state, present once this store has ingested
    /// shipped WAL bytes (i.e. it is acting as a replica).
    apply: Option<ReplApply>,
}

/// One page change buffered while a shipped transaction is still open
/// (its Commit record has not arrived yet).
enum PendingChange {
    Image(PageId, Vec<u8>),
    Delta(PageId, Vec<(u32, Vec<u8>)>),
}

/// Incremental replica apply state: shipped bytes land in the local WAL
/// verbatim, a [`FrameScanner`] re-frames them, and complete *commits*
/// are published under the snapshot gate one epoch bump apiece — the
/// same per-commit atomicity the primary's own commit path provides.
struct ReplApply {
    scanner: FrameScanner,
    /// Page changes of transactions whose Commit has not arrived.
    open: HashMap<u64, Vec<PendingChange>>,
    /// Physical WAL offset just past the last *applied* commit record.
    /// Promotion fences here: everything after it was shipped but never
    /// committed on this replica, so it must not survive into the new
    /// primary's log (a recycled tx id could otherwise resurrect it).
    applied_wal_off: u64,
    /// Highest transaction id seen in the shipped stream.
    max_tx: u64,
}

/// Result of one [`Store::replica_ingest`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Commits applied (and epochs advanced) by this ingest.
    pub commits_applied: u64,
    /// The store's epoch after applying.
    pub epoch: u64,
}

/// A point-in-time copy of the store for bootstrapping a replica.
pub struct ReplSnapshot {
    /// Raw bytes of the (just-checkpointed) page file.
    pub db_bytes: Vec<u8>,
    /// Logical WAL position the snapshot corresponds to; shipping
    /// resumes from here.
    pub base_pos: u64,
    /// Commit epoch of the snapshotted state.
    pub epoch: u64,
}

/// One answer from [`Store::read_wal_span`].
pub enum WalSpan {
    /// Raw WAL bytes starting at the requested logical position.
    Data(Vec<u8>),
    /// Nothing shippable past the requested position yet.
    AtEnd,
    /// The requested position predates the current WAL file (a
    /// checkpoint recycled it) or postdates this store's stream (a
    /// fenced ex-primary asking to resume past a divergence): the
    /// replica needs a fresh snapshot.
    SnapshotNeeded,
}

/// A monotone watermark with waiters (shipped-position and applied-epoch
/// signals). `Mutex<u64>` + std `Condvar` compose because the vendored
/// parking_lot guard *is* the std guard type (see the note on
/// [`GroupCommit`]).
struct Watermark {
    value: Mutex<u64>,
    cv: std::sync::Condvar,
}

impl Watermark {
    fn new(value: u64) -> Watermark {
        Watermark {
            value: Mutex::new(value),
            cv: std::sync::Condvar::new(),
        }
    }

    fn get(&self) -> u64 {
        *self.value.lock()
    }

    /// Raise the watermark (monotone; lower values are ignored).
    fn advance(&self, to: u64) {
        let mut v = self.value.lock();
        if to > *v {
            *v = to;
            self.cv.notify_all();
        }
    }

    /// Wait until the watermark exceeds `past` or `timeout` elapses;
    /// returns the current value either way.
    fn wait_past(&self, past: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut v = self.value.lock();
        while *v <= past {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, res) = self
                .cv
                .wait_timeout(v, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            v = guard;
            if res.timed_out() {
                break;
            }
        }
        *v
    }
}

/// Leader/follower group-commit coordinator.
///
/// Commits register their `(logical_pos, commit_seq)` under the write
/// mutex, *release it*, then call [`GroupCommit::sync_to`]. The first
/// committer to arrive becomes leader: it optionally waits out the
/// window, snapshots the registered high-water mark, fsyncs the WAL
/// once through a duplicated file handle, and advances `synced_*` for
/// the whole cohort. Followers just wait for `synced_pos` to cover
/// their target. A checkpoint (which fsyncs the database file and
/// resets the WAL) marks everything synced.
struct GroupCommit {
    state: Mutex<GcState>,
    cv: std::sync::Condvar,
    handle: WalSyncHandle,
    window: Duration,
}

#[derive(Default)]
struct GcState {
    appended_pos: u64,
    appended_seq: u64,
    synced_pos: u64,
    synced_seq: u64,
    leader_active: bool,
    /// Sticky fsync failure: every waiter (current and future) errors.
    failed: Option<std::io::ErrorKind>,
}

impl GroupCommit {
    fn new(handle: WalSyncHandle, window: Duration) -> GroupCommit {
        GroupCommit {
            state: Mutex::new(GcState::default()),
            cv: std::sync::Condvar::new(),
            handle,
            window,
        }
    }

    /// Record a commit's log position (called under the write mutex, so
    /// positions arrive strictly increasing).
    fn register(&self, pos: u64, seq: u64) {
        let mut st = self.state.lock();
        st.appended_pos = pos;
        st.appended_seq = seq;
    }

    /// Everything appended so far is durable through other means (the
    /// checkpoint fsynced the database file and reset the WAL).
    fn mark_all_synced(&self) {
        let mut st = self.state.lock();
        st.synced_pos = st.appended_pos;
        st.synced_seq = st.appended_seq;
        self.cv.notify_all();
    }

    /// Block until the WAL is durable up to `pos`, becoming the group
    /// leader if no fsync is in flight.
    fn sync_to(&self, pos: u64, counters: &Counters) -> Result<()> {
        let mut guard = self.state.lock();
        loop {
            if let Some(kind) = guard.failed {
                return Err(StorageError::Io(std::io::Error::from(kind)));
            }
            if guard.synced_pos >= pos {
                return Ok(());
            }
            if guard.leader_active {
                // Follower: a leader's fsync is in flight; it (or the
                // next leader) will cover us.
                guard = self
                    .cv
                    .wait(guard)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            guard.leader_active = true;
            if !self.window.is_zero() {
                // Let more commits join the cohort. A spurious or early
                // wake just shortens the window, which is harmless.
                let (g, _) = self
                    .cv
                    .wait_timeout(guard, self.window)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                guard = g;
            }
            let goal_pos = guard.appended_pos;
            let goal_seq = guard.appended_seq;
            drop(guard);
            let outcome = self.handle.sync();
            guard = self.state.lock();
            guard.leader_active = false;
            match outcome {
                Ok(()) => {
                    counters.wal_syncs.fetch_add(1, Ordering::Relaxed);
                    if goal_pos > guard.synced_pos {
                        let batch = goal_seq - guard.synced_seq;
                        guard.synced_pos = goal_pos;
                        guard.synced_seq = goal_seq;
                        counters.group_syncs.fetch_add(1, Ordering::Relaxed);
                        counters
                            .group_commit_txns
                            .fetch_add(batch, Ordering::Relaxed);
                        counters.group_batch_max.fetch_max(batch, Ordering::Relaxed);
                    }
                    self.cv.notify_all();
                    // Loop: the goal covered at least our own position
                    // (we registered before calling sync_to), so the
                    // next iteration returns Ok.
                }
                Err(e) => {
                    guard.failed = Some(match &e {
                        StorageError::Io(io) => io.kind(),
                        _ => std::io::ErrorKind::Other,
                    });
                    self.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }
}

// `Mutex` here is the vendored parking_lot wrapper whose `lock()` has no
// poison Result; `GcState`'s lock is used with `std::sync::Condvar`,
// which needs the std guard type — the wrapper's guard *is*
// `std::sync::MutexGuard`, so the two compose.

/// A durable, transactional page store with concurrent readers.
pub struct Store {
    pager: Pager,
    pool: BufferPool,
    write: Mutex<WriteState>,
    gate: SnapshotGate,
    group: GroupCommit,
    /// Bumped (under the gate's exclusive side) by every published
    /// commit. Readers stamp their snapshot with the value sampled
    /// after entering the gate.
    epoch: AtomicU64,
    /// Next transaction id. Atomic (not part of [`WriteState`]) so
    /// optimistic transactions can begin without touching the write
    /// mutex; ids are unique but may appear out of order in the WAL,
    /// which recovery and replica apply tolerate (both key on the id,
    /// not its ordering).
    next_tx: AtomicU64,
    /// Recently committed write sets, for optimistic validation.
    commit_log: CommitLog,
    /// Highest logical WAL position safe to ship to replicas: bytes at
    /// or below it are durable per this store's durability model
    /// (fsynced, group-synced, or merely appended when
    /// `sync_on_commit` is off — the caller opted out of durability, so
    /// shipping follows suit).
    ship: Watermark,
    /// The epoch as a waitable watermark (advanced after every publish),
    /// so a replica server can block a floor-pinned read until the apply
    /// stream catches up.
    applied: Watermark,
    counters: Counters,
    options: StoreOptions,
    db_path: PathBuf,
}

/// Read access to pages, shared by [`Tx`] and [`ReadTx`].
pub trait PageRead {
    /// Read-only view of a page.
    fn page(&mut self, id: PageId) -> Result<&PageBuf>;
    /// Read a named root slot.
    fn root(&mut self, slot: usize) -> Result<u64>;
    /// Total pages tracked by the store header.
    fn page_count(&mut self) -> Result<u64>;
}

/// Mutating access to pages, implemented by [`Tx`] only.
pub trait PageWrite: PageRead {
    /// Mutable view of a page (copied into the private write set on
    /// first touch).
    fn page_mut(&mut self, id: PageId) -> Result<&mut PageBuf>;
    /// Allocate a fresh page of `kind`.
    fn allocate(&mut self, kind: PageKind) -> Result<PageId>;
    /// Return a page to the free list.
    fn free_page(&mut self, id: PageId) -> Result<()>;
    /// Write a named root slot.
    fn set_root(&mut self, slot: usize, value: u64) -> Result<()>;
}

impl Store {
    /// Create a new store, erasing any existing files at `path` (the
    /// database file) and `path` + `".wal"`.
    pub fn create(path: impl AsRef<Path>, options: StoreOptions) -> Result<Store> {
        let db_path = path.as_ref().to_path_buf();
        let wal_path = wal_path_for(&db_path);
        let _ = std::fs::remove_file(&wal_path);
        let pager = Pager::create(&db_path)?;

        let mut header = PageBuf::new(PageKind::Header);
        header.write_u32(hdr::MAGIC, MAGIC);
        header.write_u32(hdr::FORMAT_VERSION, FORMAT_VERSION);
        header.write_u64(hdr::PAGE_COUNT, 1);
        header.write_u64(hdr::FREE_HEAD, 0);
        pager.write_page(PageId::HEADER, &mut header)?;
        pager.sync()?;

        let wal = Wal::open(&wal_path)?;
        Store::assemble(pager, wal, options, db_path)
    }

    /// Open an existing store, running crash recovery from the WAL.
    pub fn open(path: impl AsRef<Path>, options: StoreOptions) -> Result<Store> {
        let db_path = path.as_ref().to_path_buf();
        let wal_path = wal_path_for(&db_path);
        let pager = Pager::open(&db_path)?;
        let mut wal = Wal::open(&wal_path)?;

        // Recovery: apply committed page changes in log order, then clear
        // the log. Idempotent, so a crash during recovery just reruns it.
        // Pages are accumulated in memory so a page touched by many
        // transactions is read and written once. No other thread can
        // hold the store yet, so plain pager writes are safe.
        let (records, tear) = wal.records()?;
        let changes = committed_changes(&records);
        let had_changes = !changes.is_empty();
        let mut recovered: HashMap<u64, PageBuf> = HashMap::new();
        for change in changes {
            match change {
                CommittedChange::Image(page_id, image) => {
                    let page = PageBuf::from_vec(image.clone())
                        .ok_or(StorageError::WalCorrupt { offset: 0 })?;
                    recovered.insert(page_id.0, page);
                }
                CommittedChange::Delta(page_id, ops) => {
                    let page = match recovered.entry(page_id.0) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            // Base = the file state (last checkpoint); a
                            // page past EOF or never-written starts zeroed.
                            let base = pager
                                .read_page(page_id)
                                .unwrap_or_else(|_| PageBuf::zeroed());
                            e.insert(base)
                        }
                    };
                    for (offset, bytes) in ops {
                        let start = *offset as usize;
                        let end = start + bytes.len();
                        if end > PAGE_SIZE {
                            return Err(StorageError::WalCorrupt { offset: 0 });
                        }
                        page.as_bytes_mut()[start..end].copy_from_slice(bytes);
                    }
                }
            }
        }
        for (raw_id, mut page) in recovered {
            pager.write_page(PageId(raw_id), &mut page)?;
        }
        if had_changes {
            pager.sync()?;
        }
        if had_changes || tear.is_some() {
            wal.reset()?;
        }

        // Validate the header now that recovery has run.
        let header = pager.read_page(PageId::HEADER)?;
        if header.read_u32(hdr::MAGIC) != MAGIC
            || header.read_u32(hdr::FORMAT_VERSION) != FORMAT_VERSION
        {
            return Err(StorageError::BadMagic);
        }

        Store::assemble(pager, wal, options, db_path)
    }

    fn assemble(pager: Pager, wal: Wal, options: StoreOptions, db_path: PathBuf) -> Result<Store> {
        let handle = wal.sync_handle()?;
        let window = options.group_commit_window;
        let logical_pos = wal.len();
        Ok(Store {
            pool: BufferPool::new(options.buffer_pages),
            pager,
            write: Mutex::new(WriteState {
                logical_pos,
                wal,
                base_pos: 0,
                commit_seq: 0,
                apply: None,
            }),
            gate: SnapshotGate::new(),
            group: GroupCommit::new(handle, window),
            epoch: AtomicU64::new(1),
            next_tx: AtomicU64::new(1),
            commit_log: CommitLog::new(1),
            ship: Watermark::new(logical_pos),
            applied: Watermark::new(1),
            counters: Counters::default(),
            options,
            db_path,
        })
    }

    /// Open `path`, creating a fresh store when the file does not exist.
    pub fn open_or_create(path: impl AsRef<Path>, options: StoreOptions) -> Result<Store> {
        if path.as_ref().exists() {
            Store::open(path, options)
        } else {
            Store::create(path, options)
        }
    }

    /// Path of the database file.
    pub fn path(&self) -> &Path {
        &self.db_path
    }

    /// The current commit epoch: bumped by every published commit
    /// before that commit's `Tx::commit` returns.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Acquire the write mutex, counting the wait if it blocks.
    fn lock_write(&self) -> MutexGuard<'_, WriteState> {
        if let Some(guard) = self.write.try_lock() {
            return guard;
        }
        let start = Instant::now();
        let guard = self.write.lock();
        self.counters
            .writer_lock_waits
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .writer_lock_wait_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        guard
    }

    /// Begin an exclusive write transaction. Holds the store's write
    /// lock until commit or drop (abort); concurrent [`ReadTx`]s are
    /// unaffected. Exclusive transactions never see
    /// [`StorageError::WriteConflict`] — use this when the caller wants
    /// serialized writers with no retry loop.
    pub fn begin(&self) -> Tx<'_> {
        let guard = self.lock_write();
        let tx_id = self.next_tx.fetch_add(1, Ordering::Relaxed);
        let epoch = self.epoch.load(Ordering::Acquire);
        Tx {
            store: self,
            write: Some(guard),
            tx_id,
            validated_epoch: epoch,
            pages: HashMap::new(),
            base: HashMap::new(),
            order: Vec::new(),
            pins: HashMap::new(),
        }
    }

    /// Begin an *optimistic* write transaction: no lock is taken, so any
    /// number may build private write sets concurrently (and concurrently
    /// with one exclusive writer). Every page the transaction reads or
    /// writes is tracked; [`Tx::commit`] validates that set against the
    /// commits that landed since the transaction began, under a short
    /// critical section — first committer wins, losers abort with
    /// [`StorageError::WriteConflict`] leaving no trace (nothing reaches
    /// the WAL or the pool). The caller is expected to re-execute the
    /// whole transaction on conflict; winners flow through the same
    /// group-commit fsync batching as exclusive commits.
    ///
    /// Reads stay consistent *during* the build phase too: each page
    /// fetch revalidates the set whenever the commit epoch has advanced,
    /// so a conflicted transaction fails fast (at the fetch) rather than
    /// traversing structures torn across epochs.
    pub fn begin_optimistic(&self) -> Tx<'_> {
        let tx_id = self.next_tx.fetch_add(1, Ordering::Relaxed);
        let epoch = self.epoch.load(Ordering::Acquire);
        Tx {
            store: self,
            write: None,
            tx_id,
            validated_epoch: epoch,
            pages: HashMap::new(),
            base: HashMap::new(),
            order: Vec::new(),
            pins: HashMap::new(),
        }
    }

    /// Count one caller-level re-execution of a conflicted transaction
    /// (the engine aborts but cannot retry — only the caller can re-run
    /// the transaction body against fresh reads).
    pub fn note_write_retry(&self) {
        self.counters.write_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Begin a read-only transaction. Takes only the shared side of the
    /// snapshot gate: read transactions run concurrently with each
    /// other and with a writer's build phase, excluding only the brief
    /// publish step of a commit.
    pub fn read(&self) -> ReadTx<'_> {
        let gate = self.gate.read();
        // Sampled under the gate, so it names exactly the committed
        // prefix this transaction can observe.
        let epoch = self.epoch.load(Ordering::Acquire);
        self.counters.read_txs.fetch_add(1, Ordering::Relaxed);
        ReadTx {
            store: self,
            _gate: gate,
            epoch,
            pins: HashMap::new(),
        }
    }

    /// Shared-path page lookup (buffer pool, falling back to the file).
    fn fetch(&self, id: PageId) -> Result<Arc<PageBuf>> {
        self.pool.get(&self.pager, id)
    }

    /// Write all dirty pages to the database file and reset the WAL.
    pub fn checkpoint(&self) -> Result<()> {
        let mut ws = self.lock_write();
        self.checkpoint_locked(&mut ws)
    }

    fn checkpoint_locked(&self, ws: &mut WriteState) -> Result<()> {
        self.pool.flush_all(&self.pager)?;
        self.pager.sync()?;
        ws.wal.reset()?;
        ws.base_pos = ws.logical_pos;
        // Every appended commit is now durable via the database file.
        self.group.mark_all_synced();
        self.ship.advance(ws.logical_pos);
        Ok(())
    }

    /// Buffer-pool statistics snapshot.
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Current WAL size in bytes.
    pub fn wal_len(&self) -> u64 {
        self.lock_write().wal.len()
    }

    /// Contention and commit statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        let gate = self.gate.stats();
        StoreStats {
            read_txs: self.counters.read_txs.load(Ordering::Relaxed),
            write_txs: self.counters.write_txs.load(Ordering::Relaxed),
            reader_waits: gate.reader_waits,
            reader_wait_nanos: gate.reader_wait_nanos,
            writer_waits: gate.writer_waits
                + self.counters.writer_lock_waits.load(Ordering::Relaxed),
            writer_wait_nanos: gate.writer_wait_nanos
                + self.counters.writer_lock_wait_nanos.load(Ordering::Relaxed),
            wal_syncs: self.counters.wal_syncs.load(Ordering::Relaxed),
            group_syncs: self.counters.group_syncs.load(Ordering::Relaxed),
            group_commit_txns: self.counters.group_commit_txns.load(Ordering::Relaxed),
            group_batch_max: self.counters.group_batch_max.load(Ordering::Relaxed),
            bytes_shipped: self.counters.bytes_shipped.load(Ordering::Relaxed),
            replica_lag_epochs: self.counters.replica_lag_epochs.load(Ordering::Relaxed),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            write_conflicts: self.counters.write_conflicts.load(Ordering::Relaxed),
            write_retries: self.counters.write_retries.load(Ordering::Relaxed),
        }
    }

    // -- replication tap -----------------------------------------------------
    //
    // The primary side ships the WAL as an opaque byte stream
    // ([`Store::repl_snapshot`] + [`Store::read_wal_span`], paced by
    // [`Store::wait_shippable`]); the replica side lands those bytes
    // verbatim and applies complete commits under the snapshot gate
    // ([`Store::replica_install_snapshot`] + [`Store::replica_ingest`]).
    // Promotion ([`Store::promote_to_primary`]) fences the log at the
    // last applied commit and reopens the store for writes.

    /// Checkpoint and copy the page file for bootstrapping a replica.
    /// Returns the raw file bytes plus the logical WAL position and
    /// epoch they correspond to; shipping resumes from `base_pos`.
    pub fn repl_snapshot(&self) -> Result<ReplSnapshot> {
        let mut ws = self.lock_write();
        // After the checkpoint the file alone is the whole committed
        // state and the WAL is empty, so `base_pos == logical_pos`.
        self.checkpoint_locked(&mut ws)?;
        let db_bytes = self.pager.raw_contents()?;
        Ok(ReplSnapshot {
            db_bytes,
            base_pos: ws.logical_pos,
            epoch: self.epoch(),
        })
    }

    /// Read up to `max` shippable WAL bytes starting at logical
    /// position `from`. Only durable bytes (per [`StoreOptions`]) are
    /// served, so a replica can never hold commits the primary might
    /// lose in a crash.
    pub fn read_wal_span(&self, from: u64, max: usize) -> Result<WalSpan> {
        let shippable = self.ship.get();
        let mut ws = self.lock_write();
        if from < ws.base_pos || from > ws.logical_pos {
            return Ok(WalSpan::SnapshotNeeded);
        }
        let end = shippable.min(ws.logical_pos);
        if from >= end {
            return Ok(WalSpan::AtEnd);
        }
        let len = ((end - from) as usize).min(max);
        let phys = from - ws.base_pos;
        let bytes = ws.wal.read_span(phys, len)?;
        if bytes.is_empty() {
            return Ok(WalSpan::AtEnd);
        }
        Ok(WalSpan::Data(bytes))
    }

    /// Block until some WAL byte past logical position `from` is
    /// shippable, or `timeout` elapses. Returns the current shippable
    /// watermark either way.
    pub fn wait_shippable(&self, from: u64, timeout: Duration) -> u64 {
        self.ship.wait_past(from, timeout)
    }

    /// Block until the applied epoch reaches at least `floor`, or
    /// `timeout` elapses. Returns the epoch either way. This is the
    /// server-side half of read-your-writes on a replica: a read pinned
    /// at epoch E waits here instead of returning older state.
    pub fn wait_for_epoch(&self, floor: u64, timeout: Duration) -> u64 {
        if floor == 0 {
            return self.epoch();
        }
        self.applied.wait_past(floor - 1, timeout)
    }

    /// Install a snapshot shipped from a primary, discarding this
    /// store's entire current state (both bootstrap and mid-stream
    /// resync after falling behind a checkpoint). Readers in flight
    /// keep their pinned pages; new snapshots see the installed state.
    pub fn replica_install_snapshot(
        &self,
        db_bytes: &[u8],
        base_pos: u64,
        epoch: u64,
    ) -> Result<()> {
        let mut ws = self.lock_write();
        {
            // Exclusive gate for the whole swap: a concurrent reader
            // missing to the file mid-replace would otherwise read a
            // torn page.
            let _publish = self.gate.write();
            self.pager.replace_contents(db_bytes)?;
            self.pool.purge();
            self.epoch.store(epoch, Ordering::Release);
        }
        ws.wal.reset()?;
        ws.logical_pos = base_pos;
        ws.base_pos = base_pos;
        ws.apply = None;
        self.next_tx.store(1, Ordering::Relaxed);
        self.commit_log.reset(epoch);
        self.group.mark_all_synced();
        self.applied.advance(epoch);
        self.ship.advance(base_pos);
        Ok(())
    }

    /// Ingest raw shipped WAL bytes: land them in the local log
    /// verbatim, then apply every complete *commit* they finish, one
    /// epoch bump per commit, under the snapshot gate. Bytes ending
    /// mid-frame (or mid-transaction) stay buffered until the next
    /// call.
    pub fn replica_ingest(&self, bytes: &[u8]) -> Result<IngestOutcome> {
        let mut ws = self.lock_write();
        if ws.apply.is_none() {
            ws.apply = Some(ReplApply {
                scanner: FrameScanner::new(),
                open: HashMap::new(),
                applied_wal_off: ws.wal.len(),
                max_tx: 0,
            });
        }
        ws.wal.append_raw(bytes)?;
        if self.options.sync_on_commit {
            ws.wal.sync()?;
            self.counters.wal_syncs.fetch_add(1, Ordering::Relaxed);
        }
        ws.logical_pos += bytes.len() as u64;
        let wal_len = ws.wal.len();
        let apply = ws.apply.as_mut().expect("apply state just ensured");
        apply.scanner.push(bytes);
        let mut commits_applied = 0u64;
        while let Some(record) = apply.scanner.next_record()? {
            match record {
                WalRecord::Begin { tx } => {
                    apply.max_tx = apply.max_tx.max(tx);
                    apply.open.insert(tx, Vec::new());
                }
                WalRecord::Page { tx, page, image } => {
                    apply.max_tx = apply.max_tx.max(tx);
                    apply
                        .open
                        .entry(tx)
                        .or_default()
                        .push(PendingChange::Image(PageId(page), image));
                }
                WalRecord::PageDelta { tx, page, ops } => {
                    apply.max_tx = apply.max_tx.max(tx);
                    apply
                        .open
                        .entry(tx)
                        .or_default()
                        .push(PendingChange::Delta(PageId(page), ops));
                }
                WalRecord::Commit { tx } => {
                    apply.max_tx = apply.max_tx.max(tx);
                    let changes = apply.open.remove(&tx).unwrap_or_default();
                    let epoch = {
                        let _publish = self.gate.write();
                        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
                        // Applied commits enter the commit log too: after
                        // a promotion, optimistic writers that began
                        // before the last applied commit must still
                        // validate against it.
                        self.commit_log.record(
                            epoch,
                            changes
                                .iter()
                                .map(|c| match c {
                                    PendingChange::Image(id, _) => id.0,
                                    PendingChange::Delta(id, _) => id.0,
                                })
                                .collect(),
                        );
                        for change in changes {
                            match change {
                                PendingChange::Image(id, image) => {
                                    let page = PageBuf::from_vec(image)
                                        .ok_or(StorageError::WalCorrupt { offset: 0 })?;
                                    self.pool.publish(id, Arc::new(page), true, epoch);
                                }
                                PendingChange::Delta(id, ops) => {
                                    // Base = current committed image, or
                                    // zeroes for a page that does not
                                    // exist yet (fresh allocations diff
                                    // against zero on the primary).
                                    let base = self
                                        .fetch(id)
                                        .map(|arc| (*arc).clone())
                                        .unwrap_or_else(|_| PageBuf::zeroed());
                                    let mut page = base;
                                    for (offset, bytes) in ops {
                                        let start = offset as usize;
                                        let end = start + bytes.len();
                                        if end > PAGE_SIZE {
                                            return Err(StorageError::WalCorrupt { offset: 0 });
                                        }
                                        page.as_bytes_mut()[start..end].copy_from_slice(&bytes);
                                    }
                                    self.pool.publish(id, Arc::new(page), true, epoch);
                                }
                            }
                        }
                        epoch
                    };
                    self.applied.advance(epoch);
                    self.counters.write_txs.fetch_add(1, Ordering::Relaxed);
                    apply.applied_wal_off = wal_len - apply.scanner.pending() as u64;
                    commits_applied += 1;
                }
            }
        }
        // Checkpoint only at a clean point (everything ingested is
        // applied): resetting the log mid-frame would desync the
        // on-disk log from the scanner.
        let clean = apply.scanner.pending() == 0 && apply.applied_wal_off == wal_len;
        if clean && (wal_len > self.options.checkpoint_wal_bytes || self.pool.over_target()) {
            self.checkpoint_locked(&mut ws)?;
            let apply = ws.apply.as_mut().expect("apply state survives checkpoint");
            apply.applied_wal_off = 0;
        }
        Ok(IngestOutcome {
            commits_applied,
            epoch: self.epoch(),
        })
    }

    /// Promote a replica to primary: truncate the local log at the last
    /// *applied* commit (the fencing rule — shipped-but-uncommitted
    /// bytes must not survive, or a recycled tx id could resurrect
    /// them), resume tx ids past everything seen in the stream, and
    /// count the failover. Idempotent; a store that never ingested is
    /// left unchanged.
    pub fn promote_to_primary(&self) -> Result<()> {
        let mut ws = self.lock_write();
        let Some(apply) = ws.apply.take() else {
            return Ok(());
        };
        ws.wal.truncate_tail(apply.applied_wal_off)?;
        ws.logical_pos = ws.base_pos + ws.wal.len();
        self.next_tx.fetch_max(apply.max_tx + 1, Ordering::Relaxed);
        self.ship.advance(ws.logical_pos);
        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Whether this store currently holds replica apply state.
    pub fn is_replica_target(&self) -> bool {
        self.lock_write().apply.is_some()
    }

    /// Count WAL bytes shipped to replicas (called by the hub).
    pub fn note_bytes_shipped(&self, n: u64) {
        self.counters.bytes_shipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Record the current worst replica lag in epochs (a gauge).
    pub fn set_replica_lag_epochs(&self, lag: u64) {
        self.counters
            .replica_lag_epochs
            .store(lag, Ordering::Relaxed);
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Best-effort checkpoint so clean shutdowns reopen without replay.
        if let Some(mut ws) = self.write.try_lock() {
            let _ = self.checkpoint_locked(&mut ws);
        }
    }
}

fn wal_path_for(db_path: &Path) -> PathBuf {
    let mut os = db_path.as_os_str().to_owned();
    os.push(".wal");
    PathBuf::from(os)
}

/// A write transaction (RAII guard; drop without [`Tx::commit`] aborts
/// by discarding the private write set — shared state is untouched
/// until commit, so there is nothing to roll back).
///
/// Two flavors share this type: an *exclusive* transaction
/// ([`Store::begin`]) holds the write mutex for its whole life and can
/// never conflict; an *optimistic* one ([`Store::begin_optimistic`])
/// takes no lock while building and validates its page read/write set
/// at commit, aborting with [`StorageError::WriteConflict`] when it
/// lost the race.
pub struct Tx<'a> {
    store: &'a Store,
    /// Present until commit consumes it (exclusive mode); `None` for the
    /// whole build phase of an optimistic transaction, which acquires
    /// the mutex only inside commit.
    write: Option<MutexGuard<'a, WriteState>>,
    tx_id: u64,
    /// Epoch through which this transaction's page set is known
    /// conflict-free. Optimistic fetches and the final commit move it
    /// forward by checking the span it skips against the commit log;
    /// exclusive transactions never consult it (the held mutex excludes
    /// every publish).
    validated_epoch: u64,
    /// The private write set: working images of every page this
    /// transaction has mutated.
    pages: HashMap<u64, PageBuf>,
    /// Pre-transaction image of each written page (`None` for pages
    /// freshly allocated past the old page count), used for delta
    /// logging at commit.
    base: HashMap<u64, Option<Arc<PageBuf>>>,
    /// Write-set page ids in first-touch order (the WAL append order).
    order: Vec<PageId>,
    /// Read-only pins for pages only read, so `page()` can hand out
    /// references with the transaction's lifetime.
    pins: HashMap<u64, Arc<PageBuf>>,
}

impl Tx<'_> {
    /// The transaction id (for diagnostics).
    pub fn id(&self) -> u64 {
        self.tx_id
    }

    /// Whether this transaction validates at commit instead of holding
    /// the write mutex.
    pub fn is_optimistic(&self) -> bool {
        self.write.is_none()
    }

    /// Move the conflict-free window forward to `now`, checking every
    /// page this transaction has touched against the commits published
    /// in `(validated_epoch, now]`. Callers must exclude concurrent
    /// publishes (hold the write mutex or the gate's shared side) so
    /// `now` cannot go stale mid-check.
    fn validate_to(&mut self, now: u64) -> Result<()> {
        if now == self.validated_epoch {
            return Ok(());
        }
        debug_assert!(now > self.validated_epoch, "epoch is monotone");
        let (pages, pins) = (&self.pages, &self.pins);
        let conflict = self
            .store
            .commit_log
            .conflicts_since(self.validated_epoch, |p| {
                pages.contains_key(&p) || pins.contains_key(&p)
            });
        if conflict {
            self.store
                .counters
                .write_conflicts
                .fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::WriteConflict);
        }
        self.validated_epoch = now;
        Ok(())
    }

    /// Resolve a page image coherent with everything this transaction
    /// has observed so far. Exclusive mode needs no ceremony (the held
    /// mutex excludes every publish); optimistic mode takes the gate's
    /// shared side so the epoch sample and the fetch see the same
    /// committed prefix, then revalidates if that prefix has grown.
    fn fetch_coherent(&mut self, id: PageId) -> Result<Arc<PageBuf>> {
        let store = self.store;
        if self.write.is_some() {
            return store.fetch(id);
        }
        let _gate = store.gate.read();
        let now = store.epoch.load(Ordering::Acquire);
        self.validate_to(now)?;
        store.fetch(id)
    }

    /// Copy a page into the write set on first mutation.
    fn materialize(&mut self, id: PageId) -> Result<()> {
        if self.pages.contains_key(&id.0) {
            return Ok(());
        }
        // A page already pinned for reading is coherent by construction
        // (validation would have failed otherwise) and is the image the
        // transaction has been reading — reuse it as the base.
        let current = match self.pins.remove(&id.0) {
            Some(arc) => arc,
            None => self.fetch_coherent(id)?,
        };
        self.pages.insert(id.0, (*current).clone());
        self.base.insert(id.0, Some(current));
        self.order.push(id);
        Ok(())
    }

    /// Enter a freshly allocated page (no prior state anywhere) into the
    /// write set.
    fn materialize_fresh(&mut self, id: PageId, page: PageBuf) {
        debug_assert!(
            !self.pages.contains_key(&id.0),
            "fresh page already in write set"
        );
        self.pages.insert(id.0, page);
        self.base.insert(id.0, None);
        self.order.push(id);
    }

    /// Encode this transaction's WAL records (begin, one per written
    /// page, commit). Pure function of the private write set, so an
    /// optimistic commit runs it *before* taking the write mutex —
    /// page diffing is the expensive part of a commit and must not
    /// lengthen the critical section.
    fn wal_records(&self) -> Vec<WalRecord> {
        let store = self.store;
        let mut records = Vec::with_capacity(self.order.len() + 2);
        records.push(WalRecord::Begin { tx: self.tx_id });
        let zero = PageBuf::zeroed();
        for &id in &self.order {
            let after = self.pages.get(&id.0).expect("ordered page in write set");
            let record = if store.options.wal_deltas {
                let before = match self.base.get(&id.0) {
                    Some(Some(img)) => img.as_bytes(),
                    // Fresh pages diff against zeroes (their content
                    // is usually sparse).
                    _ => zero.as_bytes(),
                };
                let ops = page_diff_ops(before, after.as_bytes(), DELTA_RUN_GAP);
                if delta_payload_len(&ops) <= DELTA_MAX_PAYLOAD {
                    WalRecord::PageDelta {
                        tx: self.tx_id,
                        page: id.0,
                        ops,
                    }
                } else {
                    WalRecord::Page {
                        tx: self.tx_id,
                        page: id.0,
                        image: after.as_bytes().to_vec(),
                    }
                }
            } else {
                WalRecord::Page {
                    tx: self.tx_id,
                    page: id.0,
                    image: after.as_bytes().to_vec(),
                }
            };
            records.push(record);
        }
        records.push(WalRecord::Commit { tx: self.tx_id });
        records
    }

    /// Commit: log after-images (or byte-range deltas, when small) plus
    /// a commit record, publish the write set as the new committed
    /// state, and make it durable (inline fsync, or via the group-commit
    /// leader). Auto-checkpoints when the WAL or pool has grown large.
    ///
    /// An optimistic transaction validates first, under the write
    /// mutex: if any page it touched was committed by someone else
    /// after it began, nothing is appended or published and the commit
    /// returns [`StorageError::WriteConflict`] — the caller re-executes
    /// the transaction (see `Database::transact` in `ode`) rather than
    /// re-submitting the stale write set. Single attempt per call;
    /// losers leave no trace in the WAL.
    pub fn commit(mut self) -> Result<()> {
        let store = self.store;
        let optimistic = self.write.is_none();
        if optimistic && self.order.is_empty() {
            // Read-only optimistic transaction: every fetch already ran
            // incremental validation, so its reads form a consistent
            // snapshot as of `validated_epoch`. Nothing to publish.
            return Ok(());
        }
        // Build the log records outside the critical section (no-op
        // cost for exclusive mode, which holds the mutex anyway).
        let records = if self.order.is_empty() {
            Vec::new()
        } else {
            self.wal_records()
        };
        let mut ws = match self.write.take() {
            Some(guard) => guard,
            None => store.lock_write(),
        };
        if optimistic {
            // First-committer-wins. The write mutex excludes every
            // publish path (local commits and replica applies), so the
            // epoch cannot move past `now` during validation — after
            // this point the write set is known current.
            let now = store.epoch.load(Ordering::Acquire);
            self.validate_to(now)?;
        }
        let mut group_target = None;
        if !self.order.is_empty() {
            let wal_start = ws.wal.len();
            for record in &records {
                ws.wal.append(record)?;
            }
            ws.logical_pos += ws.wal.len() - wal_start;
            ws.commit_seq += 1;

            let grouped = store.options.sync_on_commit && store.options.group_commit;
            if store.options.sync_on_commit && !grouped {
                ws.wal.sync()?;
                store.counters.wal_syncs.fetch_add(1, Ordering::Relaxed);
            }

            // Publish: under the gate's exclusive side, bump the epoch
            // and install every after-image. From here the commit is
            // visible to new snapshots as one atomic step. The bump
            // happens exactly once per non-empty commit, inside both
            // the mutex and the gate — back-to-back winners in one
            // group-commit cohort each pass through here serially, so
            // one epoch always names one committed state.
            let epoch = {
                let _publish = store.gate.write();
                let epoch = store.epoch.fetch_add(1, Ordering::AcqRel) + 1;
                store
                    .commit_log
                    .record(epoch, self.order.iter().map(|id| id.0).collect());
                for &id in &self.order {
                    let image = self.pages.remove(&id.0).expect("ordered page in write set");
                    store.pool.publish(id, Arc::new(image), true, epoch);
                }
                epoch
            };
            store.applied.advance(epoch);
            store.counters.write_txs.fetch_add(1, Ordering::Relaxed);

            if grouped {
                store.group.register(ws.logical_pos, ws.commit_seq);
                group_target = Some(ws.logical_pos);
            } else {
                // Inline-synced (or durability opted out): this commit's
                // bytes are shippable right now.
                store.ship.advance(ws.logical_pos);
            }
        }
        if ws.wal.len() > store.options.checkpoint_wal_bytes || store.pool.over_target() {
            store.checkpoint_locked(&mut ws)?;
            // The checkpoint fsynced everything; no group wait needed.
            group_target = None;
        }
        // Release the write lock *before* waiting on the group fsync —
        // that is the whole point: the next writer appends while the
        // leader's fsync is in flight, forming the next cohort.
        drop(ws);
        if let Some(target) = group_target {
            store.group.sync_to(target, &store.counters)?;
            store.ship.advance(target);
        }
        Ok(())
    }
}

impl PageRead for Tx<'_> {
    fn page(&mut self, id: PageId) -> Result<&PageBuf> {
        if self.pages.contains_key(&id.0) {
            return Ok(&self.pages[&id.0]);
        }
        if !self.pins.contains_key(&id.0) {
            let arc = self.fetch_coherent(id)?;
            self.pins.insert(id.0, arc);
        }
        Ok(&**self.pins.get(&id.0).expect("just pinned"))
    }

    fn root(&mut self, slot: usize) -> Result<u64> {
        assert!(slot < ROOT_SLOTS, "root slot out of range");
        Ok(self.page(PageId::HEADER)?.read_u64(hdr::ROOTS + slot * 8))
    }

    fn page_count(&mut self) -> Result<u64> {
        Ok(self.page(PageId::HEADER)?.read_u64(hdr::PAGE_COUNT))
    }
}

impl PageWrite for Tx<'_> {
    fn page_mut(&mut self, id: PageId) -> Result<&mut PageBuf> {
        self.materialize(id)?;
        Ok(self.pages.get_mut(&id.0).expect("just materialized"))
    }

    fn allocate(&mut self, kind: PageKind) -> Result<PageId> {
        let free_head = PageId(self.page(PageId::HEADER)?.read_u64(hdr::FREE_HEAD));
        if !free_head.is_null() {
            let next = self.page(free_head)?.link();
            self.page_mut(PageId::HEADER)?
                .write_u64(hdr::FREE_HEAD, next.0);
            // A reused free-list page has prior committed state, so it
            // enters the write set through the normal copy path (its
            // base image feeds delta logging), then gets reset.
            *self.page_mut(free_head)? = PageBuf::new(kind);
            Ok(free_head)
        } else {
            let count = self.page_count()?;
            self.page_mut(PageId::HEADER)?
                .write_u64(hdr::PAGE_COUNT, count + 1);
            let id = PageId(count);
            self.materialize_fresh(id, PageBuf::new(kind));
            Ok(id)
        }
    }

    fn free_page(&mut self, id: PageId) -> Result<()> {
        assert!(!id.is_null(), "cannot free the header page");
        let head = self.page(PageId::HEADER)?.read_u64(hdr::FREE_HEAD);
        let page = self.page_mut(id)?;
        let mut fresh = PageBuf::new(PageKind::Free);
        fresh.set_link(PageId(head));
        *page = fresh;
        self.page_mut(PageId::HEADER)?
            .write_u64(hdr::FREE_HEAD, id.0);
        Ok(())
    }

    fn set_root(&mut self, slot: usize, value: u64) -> Result<()> {
        assert!(slot < ROOT_SLOTS, "root slot out of range");
        self.page_mut(PageId::HEADER)?
            .write_u64(hdr::ROOTS + slot * 8, value);
        Ok(())
    }
}

/// A read-only transaction: a consistent snapshot of the committed
/// state as of [`ReadTx::epoch`]. Holds only the shared side of the
/// snapshot gate, so any number of read transactions run in parallel.
pub struct ReadTx<'a> {
    store: &'a Store,
    _gate: crate::gate::ReadGuard<'a>,
    epoch: u64,
    /// Pages resolved so far. Pinning the `Arc` (rather than re-fetching)
    /// both stabilizes `page()`'s returned references and keeps every
    /// observed image alive for the transaction's lifetime.
    pins: HashMap<u64, Arc<PageBuf>>,
}

impl ReadTx<'_> {
    /// The commit epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl PageRead for ReadTx<'_> {
    fn page(&mut self, id: PageId) -> Result<&PageBuf> {
        let store = self.store;
        match self.pins.entry(id.0) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(&**e.into_mut()),
            std::collections::hash_map::Entry::Vacant(e) => {
                let arc = store.fetch(id)?;
                Ok(&**e.insert(arc))
            }
        }
    }

    fn root(&mut self, slot: usize) -> Result<u64> {
        assert!(slot < ROOT_SLOTS, "root slot out of range");
        Ok(self.page(PageId::HEADER)?.read_u64(hdr::ROOTS + slot * 8))
    }

    fn page_count(&mut self) -> Result<u64> {
        Ok(self.page(PageId::HEADER)?.read_u64(hdr::PAGE_COUNT))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_db(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(wal_path_for(&p));
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(wal_path_for(p));
    }

    #[test]
    fn allocate_and_read_back() {
        let path = temp_db("alloc");
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let id = {
            let mut tx = store.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[0] = 42;
            tx.commit().unwrap();
            id
        };
        let mut r = store.read();
        assert_eq!(r.page(id).unwrap().payload()[0], 42);
        drop(r);
        cleanup(&path);
    }

    #[test]
    fn abort_rolls_back_everything() {
        let path = temp_db("abort");
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let id = {
            let mut tx = store.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[0] = 1;
            tx.commit().unwrap();
            id
        };
        {
            let mut tx = store.begin();
            tx.page_mut(id).unwrap().payload_mut()[0] = 99;
            let id2 = tx.allocate(PageKind::Heap).unwrap();
            tx.set_root(0, id2.0).unwrap();
            // Dropped without commit.
        }
        let mut r = store.read();
        assert_eq!(r.page(id).unwrap().payload()[0], 1);
        assert_eq!(r.root(0).unwrap(), 0);
        // The aborted allocation was never published: page_count still 2.
        assert_eq!(r.page_count().unwrap(), 2);
        drop(r);
        cleanup(&path);
    }

    #[test]
    fn uncommitted_writes_invisible_to_concurrent_reader() {
        let path = temp_db("invisible");
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let id = {
            let mut tx = store.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[0] = 1;
            tx.commit().unwrap();
            id
        };
        let mut tx = store.begin();
        tx.page_mut(id).unwrap().payload_mut()[0] = 99;
        // A snapshot opened *while the writer holds uncommitted state*
        // must see the old image — the seed engine could not even open
        // one here.
        let mut r = store.read();
        assert_eq!(r.page(id).unwrap().payload()[0], 1);
        drop(r);
        tx.commit().unwrap();
        let mut r = store.read();
        assert_eq!(r.page(id).unwrap().payload()[0], 99);
        drop(r);
        cleanup(&path);
    }

    #[test]
    fn concurrent_read_txs_coexist() {
        let path = temp_db("coexist");
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        {
            let mut tx = store.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[0] = 5;
            tx.set_root(0, id.0).unwrap();
            tx.commit().unwrap();
        }
        // Two snapshots alive at once on one thread: instant deadlock on
        // the old single-mutex engine.
        let mut a = store.read();
        let mut b = store.read();
        let id = PageId(a.root(0).unwrap());
        assert_eq!(a.page(id).unwrap().payload()[0], 5);
        assert_eq!(b.page(id).unwrap().payload()[0], 5);
        assert_eq!(a.epoch(), b.epoch());
        drop(a);
        drop(b);
        assert!(store.stats().read_txs >= 2);
        cleanup(&path);
    }

    #[test]
    fn epoch_advances_per_commit_and_stamps_snapshots() {
        let path = temp_db("epoch");
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let e0 = store.epoch();
        let id = {
            let mut tx = store.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.commit().unwrap();
            id
        };
        assert_eq!(store.epoch(), e0 + 1);
        let r = store.read();
        assert_eq!(r.epoch(), e0 + 1);
        drop(r);
        {
            let mut tx = store.begin();
            tx.page_mut(id).unwrap().payload_mut()[0] = 9;
            tx.commit().unwrap();
        }
        assert_eq!(store.epoch(), e0 + 2);
        // An empty commit publishes nothing and does not bump the epoch.
        store.begin().commit().unwrap();
        assert_eq!(store.epoch(), e0 + 2);
        cleanup(&path);
    }

    #[test]
    fn committed_data_survives_reopen_without_checkpoint() {
        let path = temp_db("walrecover");
        let id;
        {
            let store = Store::create(&path, StoreOptions::default()).unwrap();
            let mut tx = store.begin();
            id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[..5].copy_from_slice(b"hello");
            tx.set_root(2, id.0).unwrap();
            tx.commit().unwrap();
            // Simulate crash: leak the store so Drop's checkpoint never
            // runs and the data exists only in the WAL.
            std::mem::forget(store);
        }
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        assert_eq!(r.root(2).unwrap(), id.0);
        assert_eq!(&r.page(id).unwrap().payload()[..5], b"hello");
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn uncommitted_wal_tail_discarded_on_reopen() {
        let path = temp_db("tornrecover");
        {
            let store = Store::create(&path, StoreOptions::default()).unwrap();
            {
                let mut tx = store.begin();
                let id = tx.allocate(PageKind::Heap).unwrap();
                tx.page_mut(id).unwrap().payload_mut()[0] = 7;
                tx.set_root(0, id.0).unwrap();
                tx.commit().unwrap();
            }
            std::mem::forget(store);
        }
        // Append a torn record to the WAL by hand.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(wal_path_for(&path))
                .unwrap();
            f.write_all(&[0xAB, 0xCD, 0x01]).unwrap();
        }
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        let id = PageId(r.root(0).unwrap());
        assert_eq!(r.page(id).unwrap().payload()[0], 7);
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn checkpoint_resets_wal() {
        let path = temp_db("ckpt");
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        {
            let mut tx = store.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[0] = 3;
            tx.commit().unwrap();
        }
        assert!(store.wal_len() > 0);
        store.checkpoint().unwrap();
        assert_eq!(store.wal_len(), 0);
        drop(store);
        // Reopen: data must come from the database file alone.
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        assert_eq!(r.page(PageId(1)).unwrap().payload()[0], 3);
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn free_pages_are_reused_lifo() {
        let path = temp_db("freelist");
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let (a, b) = {
            let mut tx = store.begin();
            let a = tx.allocate(PageKind::Heap).unwrap();
            let b = tx.allocate(PageKind::Heap).unwrap();
            tx.commit().unwrap();
            (a, b)
        };
        {
            let mut tx = store.begin();
            tx.free_page(a).unwrap();
            tx.free_page(b).unwrap();
            tx.commit().unwrap();
        }
        {
            let mut tx = store.begin();
            let c = tx.allocate(PageKind::Heap).unwrap();
            let d = tx.allocate(PageKind::Heap).unwrap();
            assert_eq!(c, b); // LIFO
            assert_eq!(d, a);
            assert_eq!(tx.page_count().unwrap(), 3);
            tx.commit().unwrap();
        }
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn root_slots_persist() {
        let path = temp_db("roots");
        {
            let store = Store::create(&path, StoreOptions::default()).unwrap();
            let mut tx = store.begin();
            for slot in 0..ROOT_SLOTS {
                tx.set_root(slot, (slot as u64 + 1) * 11).unwrap();
            }
            tx.commit().unwrap();
        }
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        for slot in 0..ROOT_SLOTS {
            assert_eq!(r.root(slot).unwrap(), (slot as u64 + 1) * 11);
        }
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn delta_wal_is_small_for_small_edits() {
        let path_d = temp_db("deltasmall");
        let path_f = temp_db("fullsmall");
        let mk = |path: &Path, deltas: bool| {
            let store = Store::create(
                path,
                StoreOptions {
                    wal_deltas: deltas,
                    sync_on_commit: false,
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            // One big page, then many single-byte edits.
            let id = {
                let mut tx = store.begin();
                let id = tx.allocate(PageKind::Heap).unwrap();
                tx.commit().unwrap();
                id
            };
            for i in 0..50u64 {
                let mut tx = store.begin();
                tx.page_mut(id)
                    .unwrap()
                    .write_u64(16 + (i as usize % 100) * 8, i);
                tx.commit().unwrap();
            }
            store.wal_len()
        };
        let delta_bytes = mk(&path_d, true);
        let full_bytes = mk(&path_f, false);
        assert!(
            delta_bytes * 10 < full_bytes,
            "delta WAL {delta_bytes} should be far below full-image WAL {full_bytes}"
        );
        cleanup(&path_d);
        cleanup(&path_f);
    }

    #[test]
    fn delta_wal_recovers_identically_to_full() {
        for deltas in [true, false] {
            let path = temp_db(if deltas { "recdelta" } else { "recfull" });
            let options = StoreOptions {
                wal_deltas: deltas,
                ..StoreOptions::default()
            };
            let id = {
                let store = Store::create(&path, options.clone()).unwrap();
                let id = {
                    let mut tx = store.begin();
                    let id = tx.allocate(PageKind::Heap).unwrap();
                    tx.page_mut(id).unwrap().write_u64(100, 1);
                    tx.commit().unwrap();
                    id
                };
                // Several transactions editing the same and fresh pages.
                for i in 2..20u64 {
                    let mut tx = store.begin();
                    tx.page_mut(id).unwrap().write_u64(100, i);
                    let extra = tx.allocate(PageKind::Heap).unwrap();
                    tx.page_mut(extra).unwrap().write_u64(24, i * 7);
                    tx.commit().unwrap();
                }
                std::mem::forget(store); // crash
                id
            };
            let store = Store::open(&path, options).unwrap();
            let mut r = store.read();
            assert_eq!(r.page(id).unwrap().read_u64(100), 19, "deltas={deltas}");
            assert_eq!(r.page_count().unwrap(), 20, "deltas={deltas}");
            for extra in 2..20u64 {
                assert_eq!(
                    r.page(PageId(extra)).unwrap().read_u64(24),
                    (extra) * 7,
                    "deltas={deltas}"
                );
            }
            drop(r);
            drop(store);
            cleanup(&path);
        }
    }

    #[test]
    fn heavily_rewritten_pages_fall_back_to_full_images() {
        let path = temp_db("fallback");
        let store = Store::create(
            &path,
            StoreOptions {
                sync_on_commit: false,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let id = {
            let mut tx = store.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.commit().unwrap();
            id
        };
        let before = store.wal_len();
        {
            let mut tx = store.begin();
            // Rewrite nearly the whole payload: delta would exceed the
            // threshold, so a full image is logged (~PAGE_SIZE).
            let page = tx.page_mut(id).unwrap();
            for (i, b) in page.payload_mut().iter_mut().enumerate() {
                *b = (i % 251) as u8;
            }
            tx.commit().unwrap();
        }
        let grew = store.wal_len() - before;
        assert!(grew >= PAGE_SIZE as u64, "full image logged, got {grew}");
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn many_transactions_interleaved_with_reopen() {
        let path = temp_db("many");
        {
            let store = Store::create(&path, StoreOptions::default()).unwrap();
            for i in 0..20u64 {
                let mut tx = store.begin();
                let id = tx.allocate(PageKind::Heap).unwrap();
                tx.page_mut(id).unwrap().write_u64(16, i);
                tx.commit().unwrap();
            }
        }
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        for i in 0..20u64 {
            assert_eq!(r.page(PageId(i + 1)).unwrap().read_u64(16), i);
        }
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn group_commit_counts_batches() {
        let path = temp_db("groupbatch");
        let store = Store::create(
            &path,
            StoreOptions {
                group_commit: true,
                group_commit_window: Duration::from_millis(2),
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let id = {
            let mut tx = store.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.commit().unwrap();
            id
        };
        std::thread::scope(|scope| {
            for w in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..10u64 {
                        let mut tx = store.begin();
                        tx.page_mut(id).unwrap().write_u64(200 + w * 8, i);
                        tx.commit().unwrap();
                    }
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.group_commit_txns, 41);
        assert!(stats.group_syncs <= stats.group_commit_txns);
        assert!(stats.group_batch_max >= 1);
        drop(store);
        cleanup(&path);
    }

    /// Drive one full shipping cycle between two in-process stores:
    /// snapshot bootstrap, then tail spans in `chunk`-byte pieces.
    fn ship_all(primary: &Store, replica: &Store, from: &mut u64, chunk: usize) {
        loop {
            match primary.read_wal_span(*from, chunk).unwrap() {
                WalSpan::Data(bytes) => {
                    *from += bytes.len() as u64;
                    replica.replica_ingest(&bytes).unwrap();
                }
                WalSpan::AtEnd => break,
                WalSpan::SnapshotNeeded => {
                    let snap = primary.repl_snapshot().unwrap();
                    replica
                        .replica_install_snapshot(&snap.db_bytes, snap.base_pos, snap.epoch)
                        .unwrap();
                    *from = snap.base_pos;
                }
            }
        }
    }

    #[test]
    fn snapshot_and_tail_replicate_state_and_epoch() {
        let p_path = temp_db("repl-primary");
        let r_path = temp_db("repl-replica");
        let primary = Store::create(&p_path, StoreOptions::default()).unwrap();
        let replica = Store::create(&r_path, StoreOptions::default()).unwrap();
        let id = {
            let mut tx = primary.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[0] = 1;
            tx.set_root(0, id.0).unwrap();
            tx.commit().unwrap();
            id
        };
        // Bootstrap: snapshot carries the first commit.
        let snap = primary.repl_snapshot().unwrap();
        replica
            .replica_install_snapshot(&snap.db_bytes, snap.base_pos, snap.epoch)
            .unwrap();
        assert_eq!(replica.epoch(), primary.epoch());
        let mut pos = snap.base_pos;
        // Tail: more commits, shipped in deliberately tiny spans so
        // frames split across ingests.
        for i in 2..30u8 {
            let mut tx = primary.begin();
            tx.page_mut(id).unwrap().payload_mut()[0] = i;
            tx.commit().unwrap();
            ship_all(&primary, &replica, &mut pos, 11);
        }
        assert_eq!(replica.epoch(), primary.epoch());
        let mut r = replica.read();
        let rid = PageId(r.root(0).unwrap());
        assert_eq!(rid, id);
        assert_eq!(r.page(rid).unwrap().payload()[0], 29);
        drop(r);
        cleanup(&p_path);
        cleanup(&r_path);
    }

    #[test]
    fn checkpointed_primary_forces_snapshot_resync() {
        let p_path = temp_db("repl-ckpt-p");
        let r_path = temp_db("repl-ckpt-r");
        let primary = Store::create(&p_path, StoreOptions::default()).unwrap();
        let replica = Store::create(&r_path, StoreOptions::default()).unwrap();
        let snap = primary.repl_snapshot().unwrap();
        replica
            .replica_install_snapshot(&snap.db_bytes, snap.base_pos, snap.epoch)
            .unwrap();
        let mut pos = snap.base_pos;
        let id = {
            let mut tx = primary.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[0] = 7;
            tx.commit().unwrap();
            id
        };
        // The replica never sees that commit before a checkpoint
        // recycles the WAL; its position is now below base_pos.
        primary.checkpoint().unwrap();
        assert!(matches!(
            primary.read_wal_span(pos, 4096).unwrap(),
            WalSpan::SnapshotNeeded
        ));
        ship_all(&primary, &replica, &mut pos, 4096);
        assert_eq!(replica.epoch(), primary.epoch());
        let mut r = replica.read();
        assert_eq!(r.page(id).unwrap().payload()[0], 7);
        drop(r);
        cleanup(&p_path);
        cleanup(&r_path);
    }

    #[test]
    fn promotion_fences_unapplied_tail_and_resumes_writes() {
        let p_path = temp_db("repl-fence-p");
        let r_path = temp_db("repl-fence-r");
        let primary = Store::create(&p_path, StoreOptions::default()).unwrap();
        let replica = Store::create(&r_path, StoreOptions::default()).unwrap();
        let snap = primary.repl_snapshot().unwrap();
        replica
            .replica_install_snapshot(&snap.db_bytes, snap.base_pos, snap.epoch)
            .unwrap();
        let mut pos = snap.base_pos;
        let id = {
            let mut tx = primary.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[0] = 1;
            tx.commit().unwrap();
            id
        };
        ship_all(&primary, &replica, &mut pos, 4096);
        // Second commit ships only partially: the replica holds its
        // Begin+Page bytes but never the Commit.
        {
            let mut tx = primary.begin();
            tx.page_mut(id).unwrap().payload_mut()[0] = 2;
            tx.commit().unwrap();
        }
        if let WalSpan::Data(bytes) = primary.read_wal_span(pos, 4096).unwrap() {
            let half = bytes.len() / 2;
            replica.replica_ingest(&bytes[..half]).unwrap();
        } else {
            panic!("expected shippable bytes");
        }
        let pre_promote_epoch = replica.epoch();
        replica.promote_to_primary().unwrap();
        assert_eq!(replica.stats().failovers, 1);
        // The half-shipped transaction is fenced out: state and epoch
        // unchanged, and the log replays cleanly after a crash.
        assert_eq!(replica.epoch(), pre_promote_epoch);
        {
            let mut tx = replica.begin();
            tx.page_mut(id).unwrap().payload_mut()[0] = 9;
            tx.commit().unwrap();
        }
        std::mem::forget(replica); // crash the new primary: WAL only
        let reopened = Store::open(&r_path, StoreOptions::default()).unwrap();
        let mut r = reopened.read();
        assert_eq!(r.page(id).unwrap().payload()[0], 9);
        drop(r);
        drop(reopened);
        cleanup(&p_path);
        cleanup(&r_path);
    }

    #[test]
    fn wait_for_epoch_blocks_until_apply_catches_up() {
        let p_path = temp_db("repl-wait-p");
        let r_path = temp_db("repl-wait-r");
        let primary = Store::create(&p_path, StoreOptions::default()).unwrap();
        let replica = Store::create(&r_path, StoreOptions::default()).unwrap();
        let snap = primary.repl_snapshot().unwrap();
        replica
            .replica_install_snapshot(&snap.db_bytes, snap.base_pos, snap.epoch)
            .unwrap();
        let mut pos = snap.base_pos;
        {
            let mut tx = primary.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[0] = 3;
            tx.commit().unwrap();
        }
        let floor = primary.epoch();
        // Lagging replica times out below the floor...
        assert!(replica.wait_for_epoch(floor, Duration::from_millis(20)) < floor);
        // ...and a waiter wakes as soon as the apply stream catches up.
        std::thread::scope(|scope| {
            let replica = &replica;
            let waiter =
                scope.spawn(move || replica.wait_for_epoch(floor, Duration::from_secs(10)));
            ship_all(&primary, replica, &mut pos, 4096);
            assert!(waiter.join().unwrap() >= floor);
        });
        cleanup(&p_path);
        cleanup(&r_path);
    }

    #[test]
    fn group_commit_data_recovers_after_crash() {
        let path = temp_db("grouprecover");
        let options = StoreOptions {
            group_commit: true,
            group_commit_window: Duration::from_millis(1),
            ..StoreOptions::default()
        };
        let id = {
            let store = Store::create(&path, options.clone()).unwrap();
            let id = {
                let mut tx = store.begin();
                let id = tx.allocate(PageKind::Heap).unwrap();
                tx.commit().unwrap();
                id
            };
            std::thread::scope(|scope| {
                for w in 0..4u64 {
                    let store = &store;
                    scope.spawn(move || {
                        let mut tx = store.begin();
                        tx.page_mut(id)
                            .unwrap()
                            .write_u64(300 + (w as usize) * 8, w + 1);
                        tx.commit().unwrap();
                    });
                }
            });
            std::mem::forget(store); // crash: WAL only
            id
        };
        let store = Store::open(&path, options).unwrap();
        let mut r = store.read();
        for w in 0..4u64 {
            // Every commit was acked (commit() returned), so every write
            // must be recovered.
            assert_eq!(r.page(id).unwrap().read_u64(300 + (w as usize) * 8), w + 1);
        }
        drop(r);
        drop(store);
        cleanup(&path);
    }
}
