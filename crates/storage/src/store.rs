//! Transactional store: the facade combining pager, buffer pool, and WAL.
//!
//! Concurrency model: one coarse lock serializes sessions, matching the
//! paper's scope ("We do not discuss concurrency control issues in this
//! paper").  A [`Tx`] is the single writer; [`ReadTx`] gives read access
//! through the same lock.  Both are RAII guards.
//!
//! Durability protocol:
//!
//! * page 0 is the store header (magic, page count, free-list head, and
//!   sixteen named *root slots* used by higher layers);
//! * during a transaction all page mutations stay in the buffer pool;
//! * commit appends after-images + a commit record to the WAL (fsync
//!   governed by [`StoreOptions::sync_on_commit`]);
//! * abort (dropping a [`Tx`] uncommitted) restores before-images;
//! * checkpoint writes dirty pages to the database file, fsyncs, and
//!   resets the WAL;
//! * open replays committed WAL images into the database file.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use parking_lot::{Mutex, MutexGuard};

use crate::buffer::{BufferPool, BufferStats};
use crate::page::{PageBuf, PageId, PageKind, PAGE_SIZE};
use crate::pager::Pager;
use crate::wal::{
    committed_changes, delta_payload_len, page_diff_ops, CommittedChange, Wal, WalRecord,
};
use crate::{Result, StorageError};

/// Magic number identifying an Ode store header page.
pub const MAGIC: u32 = 0x4F44_4531; // "ODE1"
/// Current file-format version.
pub const FORMAT_VERSION: u32 = 1;
/// Number of named root slots in the header.
pub const ROOT_SLOTS: usize = 16;

/// Header-page field offsets (bytes ≥ 16 are past the common page header).
mod hdr {
    pub const MAGIC: usize = 16;
    pub const FORMAT_VERSION: usize = 20;
    pub const PAGE_COUNT: usize = 24;
    pub const FREE_HEAD: usize = 32;
    pub const ROOTS: usize = 40;
}

/// Tuning and durability options for a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Buffer-pool capacity in pages.
    pub buffer_pages: usize,
    /// fsync the WAL on every commit. Disable only for benchmarks where
    /// durability of the tail is irrelevant.
    pub sync_on_commit: bool,
    /// Checkpoint automatically once the WAL exceeds this many bytes.
    pub checkpoint_wal_bytes: u64,
    /// Log changed byte ranges instead of full page images when a page's
    /// delta is small — the storage-level "small changes have small
    /// impact". Full images remain the fallback for heavily rewritten
    /// pages.
    pub wal_deltas: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            buffer_pages: 1024,
            sync_on_commit: true,
            checkpoint_wal_bytes: 16 * 1024 * 1024,
            wal_deltas: true,
        }
    }
}

/// Gap tolerance when merging changed byte runs into delta ops.
const DELTA_RUN_GAP: usize = 24;
/// Deltas whose payload exceeds this fall back to a full page image.
const DELTA_MAX_PAYLOAD: usize = (PAGE_SIZE * 3) / 4;

struct Inner {
    pager: Pager,
    pool: BufferPool,
    wal: Wal,
    options: StoreOptions,
    next_tx: u64,
}

/// A durable, transactional page store.
pub struct Store {
    inner: Mutex<Inner>,
    db_path: PathBuf,
}

/// Read access to pages, shared by [`Tx`] and [`ReadTx`].
pub trait PageRead {
    /// Read-only view of a page.
    fn page(&mut self, id: PageId) -> Result<&PageBuf>;
    /// Read a named root slot.
    fn root(&mut self, slot: usize) -> Result<u64>;
    /// Total pages tracked by the store header.
    fn page_count(&mut self) -> Result<u64>;
}

/// Mutating access to pages, implemented by [`Tx`] only.
pub trait PageWrite: PageRead {
    /// Mutable view of a page (captures an undo image on first touch).
    fn page_mut(&mut self, id: PageId) -> Result<&mut PageBuf>;
    /// Allocate a fresh page of `kind`.
    fn allocate(&mut self, kind: PageKind) -> Result<PageId>;
    /// Return a page to the free list.
    fn free_page(&mut self, id: PageId) -> Result<()>;
    /// Write a named root slot.
    fn set_root(&mut self, slot: usize, value: u64) -> Result<()>;
}

impl Store {
    /// Create a new store, erasing any existing files at `path` (the
    /// database file) and `path` + `".wal"`.
    pub fn create(path: impl AsRef<Path>, options: StoreOptions) -> Result<Store> {
        let db_path = path.as_ref().to_path_buf();
        let wal_path = wal_path_for(&db_path);
        let _ = std::fs::remove_file(&wal_path);
        let mut pager = Pager::create(&db_path)?;

        let mut header = PageBuf::new(PageKind::Header);
        header.write_u32(hdr::MAGIC, MAGIC);
        header.write_u32(hdr::FORMAT_VERSION, FORMAT_VERSION);
        header.write_u64(hdr::PAGE_COUNT, 1);
        header.write_u64(hdr::FREE_HEAD, 0);
        pager.write_page(PageId::HEADER, &mut header)?;
        pager.sync()?;

        let wal = Wal::open(&wal_path)?;
        Ok(Store {
            inner: Mutex::new(Inner {
                pool: BufferPool::new(options.buffer_pages),
                pager,
                wal,
                options,
                next_tx: 1,
            }),
            db_path,
        })
    }

    /// Open an existing store, running crash recovery from the WAL.
    pub fn open(path: impl AsRef<Path>, options: StoreOptions) -> Result<Store> {
        let db_path = path.as_ref().to_path_buf();
        let wal_path = wal_path_for(&db_path);
        let mut pager = Pager::open(&db_path)?;
        let mut wal = Wal::open(&wal_path)?;

        // Recovery: apply committed page changes in log order, then clear
        // the log. Idempotent, so a crash during recovery just reruns it.
        // Pages are accumulated in memory so a page touched by many
        // transactions is read and written once.
        let (records, tear) = wal.records()?;
        let changes = committed_changes(&records);
        let had_changes = !changes.is_empty();
        let mut recovered: HashMap<u64, PageBuf> = HashMap::new();
        for change in changes {
            match change {
                CommittedChange::Image(page_id, image) => {
                    let page = PageBuf::from_vec(image.clone())
                        .ok_or(StorageError::WalCorrupt { offset: 0 })?;
                    recovered.insert(page_id.0, page);
                }
                CommittedChange::Delta(page_id, ops) => {
                    let page = match recovered.entry(page_id.0) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            // Base = the file state (last checkpoint); a
                            // page past EOF or never-written starts zeroed.
                            let base = pager
                                .read_page(page_id)
                                .unwrap_or_else(|_| PageBuf::zeroed());
                            e.insert(base)
                        }
                    };
                    for (offset, bytes) in ops {
                        let start = *offset as usize;
                        let end = start + bytes.len();
                        if end > PAGE_SIZE {
                            return Err(StorageError::WalCorrupt { offset: 0 });
                        }
                        page.as_bytes_mut()[start..end].copy_from_slice(bytes);
                    }
                }
            }
        }
        for (raw_id, mut page) in recovered {
            pager.write_page(PageId(raw_id), &mut page)?;
        }
        if had_changes {
            pager.sync()?;
        }
        if had_changes || tear.is_some() {
            wal.reset()?;
        }

        // Validate the header now that recovery has run.
        let header = pager.read_page(PageId::HEADER)?;
        if header.read_u32(hdr::MAGIC) != MAGIC
            || header.read_u32(hdr::FORMAT_VERSION) != FORMAT_VERSION
        {
            return Err(StorageError::BadMagic);
        }

        Ok(Store {
            inner: Mutex::new(Inner {
                pool: BufferPool::new(options.buffer_pages),
                pager,
                wal,
                options,
                next_tx: 1,
            }),
            db_path,
        })
    }

    /// Open `path`, creating a fresh store when the file does not exist.
    pub fn open_or_create(path: impl AsRef<Path>, options: StoreOptions) -> Result<Store> {
        if path.as_ref().exists() {
            Store::open(path, options)
        } else {
            Store::create(path, options)
        }
    }

    /// Path of the database file.
    pub fn path(&self) -> &Path {
        &self.db_path
    }

    /// Begin a write transaction. Holds the store lock until commit or
    /// drop (abort).
    pub fn begin(&self) -> Tx<'_> {
        let mut guard = self.inner.lock();
        let tx_id = guard.next_tx;
        guard.next_tx += 1;
        Tx {
            guard,
            tx_id,
            undo: HashMap::new(),
            dirtied: Vec::new(),
            committed: false,
        }
    }

    /// Begin a read-only transaction.
    pub fn read(&self) -> ReadTx<'_> {
        ReadTx {
            guard: self.inner.lock(),
        }
    }

    /// Write all dirty pages to the database file and reset the WAL.
    pub fn checkpoint(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.checkpoint()
    }

    /// Buffer-pool statistics snapshot.
    pub fn buffer_stats(&self) -> BufferStats {
        self.inner.lock().pool.stats()
    }

    /// Current WAL size in bytes.
    pub fn wal_len(&self) -> u64 {
        self.inner.lock().wal.len()
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Best-effort checkpoint so clean shutdowns reopen without replay.
        if let Some(mut inner) = self.inner.try_lock() {
            let _ = inner.checkpoint();
        }
    }
}

fn wal_path_for(db_path: &Path) -> PathBuf {
    let mut os = db_path.as_os_str().to_owned();
    os.push(".wal");
    PathBuf::from(os)
}

impl Inner {
    fn header(&mut self) -> Result<&PageBuf> {
        self.pool.get(&mut self.pager, PageId::HEADER)
    }

    fn header_mut(&mut self) -> Result<&mut PageBuf> {
        self.pool.get_mut(&mut self.pager, PageId::HEADER)
    }

    fn checkpoint(&mut self) -> Result<()> {
        self.pool.flush_all(&mut self.pager)?;
        self.pager.sync()?;
        self.wal.reset()?;
        Ok(())
    }
}

/// What rollback must do with a page this transaction touched.
enum UndoEntry {
    /// Restore this pre-transaction image (and dirty flag).
    Restore(PageBuf, bool),
    /// The page did not exist before (fresh allocation past the file
    /// end): drop it from the pool.
    Discard,
}

/// A write transaction (RAII guard; drop without
/// [`Tx::commit`] aborts and rolls back).
pub struct Tx<'a> {
    guard: MutexGuard<'a, Inner>,
    tx_id: u64,
    /// Before-images for rollback and delta logging, keyed by page id.
    undo: HashMap<u64, UndoEntry>,
    /// Pages dirtied by this transaction, in first-touch order.
    dirtied: Vec<PageId>,
    committed: bool,
}

impl Tx<'_> {
    /// The transaction id (for diagnostics).
    pub fn id(&self) -> u64 {
        self.tx_id
    }

    fn capture_undo(&mut self, id: PageId) -> Result<()> {
        if self.undo.contains_key(&id.0) {
            return Ok(());
        }
        // Always capture the pre-transaction image: rollback restores
        // it, and commit diffs against it for delta logging.
        let inner = &mut *self.guard;
        let dirty = inner.pool.is_dirty(id);
        let image = inner.pool.get(&mut inner.pager, id)?.clone();
        self.undo.insert(id.0, UndoEntry::Restore(image, dirty));
        self.dirtied.push(id);
        Ok(())
    }

    /// Mark a freshly allocated page (no prior state anywhere).
    fn capture_fresh(&mut self, id: PageId) {
        if self.undo.contains_key(&id.0) {
            return;
        }
        self.undo.insert(id.0, UndoEntry::Discard);
        self.dirtied.push(id);
    }

    /// Commit: log after-images (or byte-range deltas, when small) plus
    /// a commit record, then clear undo state. Auto-checkpoints when the
    /// WAL or pool has grown large.
    pub fn commit(mut self) -> Result<()> {
        if !self.dirtied.is_empty() {
            let inner = &mut *self.guard;
            inner.wal.append(&WalRecord::Begin { tx: self.tx_id })?;
            let zero = PageBuf::zeroed();
            for &id in &self.dirtied {
                // Every dirtied page is still resident (dirty pages are
                // never evicted).
                let after = inner.pool.get(&mut inner.pager, id)?.as_bytes().to_vec();
                let record = if inner.options.wal_deltas {
                    let before = match self.undo.get(&id.0) {
                        Some(UndoEntry::Restore(img, _)) => img.as_bytes(),
                        // Fresh pages diff against zeroes (their content
                        // is usually sparse).
                        Some(UndoEntry::Discard) | None => zero.as_bytes(),
                    };
                    let ops = page_diff_ops(before, &after, DELTA_RUN_GAP);
                    if delta_payload_len(&ops) <= DELTA_MAX_PAYLOAD {
                        WalRecord::PageDelta {
                            tx: self.tx_id,
                            page: id.0,
                            ops,
                        }
                    } else {
                        WalRecord::Page {
                            tx: self.tx_id,
                            page: id.0,
                            image: after,
                        }
                    }
                } else {
                    WalRecord::Page {
                        tx: self.tx_id,
                        page: id.0,
                        image: after,
                    }
                };
                inner.wal.append(&record)?;
            }
            inner.wal.append(&WalRecord::Commit { tx: self.tx_id })?;
            if inner.options.sync_on_commit {
                inner.wal.sync()?;
            }
        }
        self.committed = true;
        self.undo.clear();
        let inner = &mut *self.guard;
        if inner.wal.len() > inner.options.checkpoint_wal_bytes || inner.pool.over_target() {
            inner.checkpoint()?;
        }
        Ok(())
    }
}

impl Drop for Tx<'_> {
    fn drop(&mut self) {
        if self.committed {
            return;
        }
        // Abort: restore before-images / discard pages first touched here.
        let undo = std::mem::take(&mut self.undo);
        for (raw_id, prior) in undo {
            let id = PageId(raw_id);
            match prior {
                UndoEntry::Restore(image, dirty) => {
                    let inner = &mut *self.guard;
                    // Install ignores errors here deliberately: rollback
                    // in Drop must not panic; worst case the page stays
                    // evicted and is re-read from the file.
                    let _ = inner.pool.install(&mut inner.pager, id, image, dirty);
                }
                UndoEntry::Discard => {
                    self.guard.pool.discard(id);
                }
            }
        }
    }
}

impl PageRead for Tx<'_> {
    fn page(&mut self, id: PageId) -> Result<&PageBuf> {
        let inner = &mut *self.guard;
        inner.pool.get(&mut inner.pager, id)
    }

    fn root(&mut self, slot: usize) -> Result<u64> {
        assert!(slot < ROOT_SLOTS, "root slot out of range");
        Ok(self.guard.header()?.read_u64(hdr::ROOTS + slot * 8))
    }

    fn page_count(&mut self) -> Result<u64> {
        Ok(self.guard.header()?.read_u64(hdr::PAGE_COUNT))
    }
}

impl PageWrite for Tx<'_> {
    fn page_mut(&mut self, id: PageId) -> Result<&mut PageBuf> {
        self.capture_undo(id)?;
        let inner = &mut *self.guard;
        inner.pool.get_mut(&mut inner.pager, id)
    }

    fn allocate(&mut self, kind: PageKind) -> Result<PageId> {
        let free_head = PageId(self.guard.header()?.read_u64(hdr::FREE_HEAD));
        let id = if !free_head.is_null() {
            let next = self.page(free_head)?.link();
            self.page_mut(PageId::HEADER)?
                .write_u64(hdr::FREE_HEAD, next.0);
            free_head
        } else {
            let count = self.page_count()?;
            self.page_mut(PageId::HEADER)?
                .write_u64(hdr::PAGE_COUNT, count + 1);
            PageId(count)
        };
        // Capture undo before overwriting: a reused free-list page has a
        // prior image to restore; a fresh page past the file end does not.
        if id.0 < self.guard.pager.file_pages() {
            self.capture_undo(id)?;
        } else {
            self.capture_fresh(id);
        }
        let inner = &mut *self.guard;
        inner
            .pool
            .install(&mut inner.pager, id, PageBuf::new(kind), true)?;
        Ok(id)
    }

    fn free_page(&mut self, id: PageId) -> Result<()> {
        assert!(!id.is_null(), "cannot free the header page");
        let head = self.guard.header()?.read_u64(hdr::FREE_HEAD);
        let page = self.page_mut(id)?;
        let mut fresh = PageBuf::new(PageKind::Free);
        fresh.set_link(PageId(head));
        *page = fresh;
        self.page_mut(PageId::HEADER)?
            .write_u64(hdr::FREE_HEAD, id.0);
        Ok(())
    }

    fn set_root(&mut self, slot: usize, value: u64) -> Result<()> {
        assert!(slot < ROOT_SLOTS, "root slot out of range");
        self.capture_undo(PageId::HEADER)?;
        self.guard
            .header_mut()?
            .write_u64(hdr::ROOTS + slot * 8, value);
        Ok(())
    }
}

/// A read-only transaction.
pub struct ReadTx<'a> {
    guard: MutexGuard<'a, Inner>,
}

impl PageRead for ReadTx<'_> {
    fn page(&mut self, id: PageId) -> Result<&PageBuf> {
        let inner = &mut *self.guard;
        inner.pool.get(&mut inner.pager, id)
    }

    fn root(&mut self, slot: usize) -> Result<u64> {
        assert!(slot < ROOT_SLOTS, "root slot out of range");
        Ok(self.guard.header()?.read_u64(hdr::ROOTS + slot * 8))
    }

    fn page_count(&mut self) -> Result<u64> {
        Ok(self.guard.header()?.read_u64(hdr::PAGE_COUNT))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_db(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(wal_path_for(&p));
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(wal_path_for(p));
    }

    #[test]
    fn allocate_and_read_back() {
        let path = temp_db("alloc");
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let id = {
            let mut tx = store.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[0] = 42;
            tx.commit().unwrap();
            id
        };
        let mut r = store.read();
        assert_eq!(r.page(id).unwrap().payload()[0], 42);
        drop(r);
        cleanup(&path);
    }

    #[test]
    fn abort_rolls_back_everything() {
        let path = temp_db("abort");
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let id = {
            let mut tx = store.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[0] = 1;
            tx.commit().unwrap();
            id
        };
        {
            let mut tx = store.begin();
            tx.page_mut(id).unwrap().payload_mut()[0] = 99;
            let id2 = tx.allocate(PageKind::Heap).unwrap();
            tx.set_root(0, id2.0).unwrap();
            // Dropped without commit.
        }
        let mut r = store.read();
        assert_eq!(r.page(id).unwrap().payload()[0], 1);
        assert_eq!(r.root(0).unwrap(), 0);
        // The aborted allocation is rolled back: page_count back to 2.
        assert_eq!(r.page_count().unwrap(), 2);
        drop(r);
        cleanup(&path);
    }

    #[test]
    fn committed_data_survives_reopen_without_checkpoint() {
        let path = temp_db("walrecover");
        let id;
        {
            let store = Store::create(&path, StoreOptions::default()).unwrap();
            let mut tx = store.begin();
            id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[..5].copy_from_slice(b"hello");
            tx.set_root(2, id.0).unwrap();
            tx.commit().unwrap();
            // Simulate crash: leak the store so Drop's checkpoint never
            // runs and the data exists only in the WAL.
            std::mem::forget(store);
        }
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        assert_eq!(r.root(2).unwrap(), id.0);
        assert_eq!(&r.page(id).unwrap().payload()[..5], b"hello");
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn uncommitted_wal_tail_discarded_on_reopen() {
        let path = temp_db("tornrecover");
        {
            let store = Store::create(&path, StoreOptions::default()).unwrap();
            {
                let mut tx = store.begin();
                let id = tx.allocate(PageKind::Heap).unwrap();
                tx.page_mut(id).unwrap().payload_mut()[0] = 7;
                tx.set_root(0, id.0).unwrap();
                tx.commit().unwrap();
            }
            std::mem::forget(store);
        }
        // Append a torn record to the WAL by hand.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(wal_path_for(&path))
                .unwrap();
            f.write_all(&[0xAB, 0xCD, 0x01]).unwrap();
        }
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        let id = PageId(r.root(0).unwrap());
        assert_eq!(r.page(id).unwrap().payload()[0], 7);
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn checkpoint_resets_wal() {
        let path = temp_db("ckpt");
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        {
            let mut tx = store.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.page_mut(id).unwrap().payload_mut()[0] = 3;
            tx.commit().unwrap();
        }
        assert!(store.wal_len() > 0);
        store.checkpoint().unwrap();
        assert_eq!(store.wal_len(), 0);
        drop(store);
        // Reopen: data must come from the database file alone.
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        assert_eq!(r.page(PageId(1)).unwrap().payload()[0], 3);
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn free_pages_are_reused_lifo() {
        let path = temp_db("freelist");
        let store = Store::create(&path, StoreOptions::default()).unwrap();
        let (a, b) = {
            let mut tx = store.begin();
            let a = tx.allocate(PageKind::Heap).unwrap();
            let b = tx.allocate(PageKind::Heap).unwrap();
            tx.commit().unwrap();
            (a, b)
        };
        {
            let mut tx = store.begin();
            tx.free_page(a).unwrap();
            tx.free_page(b).unwrap();
            tx.commit().unwrap();
        }
        {
            let mut tx = store.begin();
            let c = tx.allocate(PageKind::Heap).unwrap();
            let d = tx.allocate(PageKind::Heap).unwrap();
            assert_eq!(c, b); // LIFO
            assert_eq!(d, a);
            assert_eq!(tx.page_count().unwrap(), 3);
            tx.commit().unwrap();
        }
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn root_slots_persist() {
        let path = temp_db("roots");
        {
            let store = Store::create(&path, StoreOptions::default()).unwrap();
            let mut tx = store.begin();
            for slot in 0..ROOT_SLOTS {
                tx.set_root(slot, (slot as u64 + 1) * 11).unwrap();
            }
            tx.commit().unwrap();
        }
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        for slot in 0..ROOT_SLOTS {
            assert_eq!(r.root(slot).unwrap(), (slot as u64 + 1) * 11);
        }
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn delta_wal_is_small_for_small_edits() {
        let path_d = temp_db("deltasmall");
        let path_f = temp_db("fullsmall");
        let mk = |path: &Path, deltas: bool| {
            let store = Store::create(
                path,
                StoreOptions {
                    wal_deltas: deltas,
                    sync_on_commit: false,
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            // One big page, then many single-byte edits.
            let id = {
                let mut tx = store.begin();
                let id = tx.allocate(PageKind::Heap).unwrap();
                tx.commit().unwrap();
                id
            };
            for i in 0..50u64 {
                let mut tx = store.begin();
                tx.page_mut(id)
                    .unwrap()
                    .write_u64(16 + (i as usize % 100) * 8, i);
                tx.commit().unwrap();
            }
            store.wal_len()
        };
        let delta_bytes = mk(&path_d, true);
        let full_bytes = mk(&path_f, false);
        assert!(
            delta_bytes * 10 < full_bytes,
            "delta WAL {delta_bytes} should be far below full-image WAL {full_bytes}"
        );
        cleanup(&path_d);
        cleanup(&path_f);
    }

    #[test]
    fn delta_wal_recovers_identically_to_full() {
        for deltas in [true, false] {
            let path = temp_db(if deltas { "recdelta" } else { "recfull" });
            let options = StoreOptions {
                wal_deltas: deltas,
                ..StoreOptions::default()
            };
            let id = {
                let store = Store::create(&path, options.clone()).unwrap();
                let id = {
                    let mut tx = store.begin();
                    let id = tx.allocate(PageKind::Heap).unwrap();
                    tx.page_mut(id).unwrap().write_u64(100, 1);
                    tx.commit().unwrap();
                    id
                };
                // Several transactions editing the same and fresh pages.
                for i in 2..20u64 {
                    let mut tx = store.begin();
                    tx.page_mut(id).unwrap().write_u64(100, i);
                    let extra = tx.allocate(PageKind::Heap).unwrap();
                    tx.page_mut(extra).unwrap().write_u64(24, i * 7);
                    tx.commit().unwrap();
                }
                std::mem::forget(store); // crash
                id
            };
            let store = Store::open(&path, options).unwrap();
            let mut r = store.read();
            assert_eq!(r.page(id).unwrap().read_u64(100), 19, "deltas={deltas}");
            assert_eq!(r.page_count().unwrap(), 20, "deltas={deltas}");
            for extra in 2..20u64 {
                assert_eq!(
                    r.page(PageId(extra)).unwrap().read_u64(24),
                    (extra) * 7,
                    "deltas={deltas}"
                );
            }
            drop(r);
            drop(store);
            cleanup(&path);
        }
    }

    #[test]
    fn heavily_rewritten_pages_fall_back_to_full_images() {
        let path = temp_db("fallback");
        let store = Store::create(
            &path,
            StoreOptions {
                sync_on_commit: false,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let id = {
            let mut tx = store.begin();
            let id = tx.allocate(PageKind::Heap).unwrap();
            tx.commit().unwrap();
            id
        };
        let before = store.wal_len();
        {
            let mut tx = store.begin();
            // Rewrite nearly the whole payload: delta would exceed the
            // threshold, so a full image is logged (~PAGE_SIZE).
            let page = tx.page_mut(id).unwrap();
            for (i, b) in page.payload_mut().iter_mut().enumerate() {
                *b = (i % 251) as u8;
            }
            tx.commit().unwrap();
        }
        let grew = store.wal_len() - before;
        assert!(grew >= PAGE_SIZE as u64, "full image logged, got {grew}");
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn many_transactions_interleaved_with_reopen() {
        let path = temp_db("many");
        {
            let store = Store::create(&path, StoreOptions::default()).unwrap();
            for i in 0..20u64 {
                let mut tx = store.begin();
                let id = tx.allocate(PageKind::Heap).unwrap();
                tx.page_mut(id).unwrap().write_u64(16, i);
                tx.commit().unwrap();
            }
        }
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        for i in 0..20u64 {
            assert_eq!(r.page(PageId(i + 1)).unwrap().read_u64(16), i);
        }
        drop(r);
        drop(store);
        cleanup(&path);
    }
}
