//! Heap record storage: variable-length records addressed by stable
//! [`RecordId`]s, with overflow chains for values larger than a page.
//!
//! A heap is identified by its *directory page*, which holds the head of
//! the data-page chain and an insert hint.  [`Heap::replace`] rewrites a
//! record **in place** (same id, only its own page written) whenever the
//! new value still fits its page; only when it does not — or when
//! overflow chains are involved — does it fall back to delete + insert,
//! and the object layer remaps its table entry to the new record id.
//! The in-place path matters for the optimistic-concurrency engine:
//! it keeps updates of records on different pages from ever touching a
//! shared page (the directory's record count only moves on insert and
//! delete), so they validate cleanly against each other.
//!
//! Record cell encoding:
//!
//! ```text
//! [0x00][data...]                       inline record
//! [0x01][u32 total_len][u64 first_pg]   overflow stub
//! ```
//!
//! Overflow pages use the common header link word for the chain and store
//! `[u32 chunk_len]` at the start of their payload.

use crate::page::{PageId, PageKind, PAGE_HEADER_LEN, PAGE_SIZE};
use crate::slotted;
use crate::store::{PageRead, PageWrite};
use crate::{Result, StorageError};

/// Directory-page payload offsets.
mod dir {
    use crate::page::PAGE_HEADER_LEN;
    pub const FIRST: usize = PAGE_HEADER_LEN;
    pub const HINT: usize = PAGE_HEADER_LEN + 8;
    pub const RECORD_COUNT: usize = PAGE_HEADER_LEN + 16;
}

const TAG_INLINE: u8 = 0x00;
const TAG_OVERFLOW: u8 = 0x01;
const OVERFLOW_STUB_LEN: usize = 1 + 4 + 8;
/// Payload bytes available per overflow page.
const OVERFLOW_CHUNK: usize = PAGE_SIZE - PAGE_HEADER_LEN - 4;
/// Records up to this size are stored inline in a slotted cell.
pub const INLINE_MAX: usize = slotted::MAX_CELL - 1;

/// Stable identifier of a heap record: page and slot, packed into a u64
/// (48-bit page, 16-bit slot) for storage in B+-tree values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Page holding the record's slot.
    pub page: PageId,
    /// Slot index within the page.
    pub slot: u16,
}

impl RecordId {
    /// Pack into a u64 (page in the high 48 bits).
    pub fn to_u64(self) -> u64 {
        debug_assert!(self.page.0 < (1 << 48), "page id exceeds 48 bits");
        (self.page.0 << 16) | self.slot as u64
    }

    /// Unpack from [`RecordId::to_u64`].
    pub fn from_u64(v: u64) -> RecordId {
        RecordId {
            page: PageId(v >> 16),
            slot: (v & 0xFFFF) as u16,
        }
    }
}

/// A heap handle: the directory page id.
///
/// ```
/// use ode_storage::heap::Heap;
/// use ode_storage::{Store, StoreOptions};
///
/// let path = std::env::temp_dir().join(format!("heap-doc-{}", std::process::id()));
/// let store = Store::create(&path, StoreOptions::default()).unwrap();
/// let mut tx = store.begin();
/// let heap = Heap::create(&mut tx).unwrap();
/// let rid = heap.insert(&mut tx, b"record bytes").unwrap();
/// assert_eq!(heap.get(&mut tx, rid).unwrap(), b"record bytes");
/// // Large records transparently use overflow page chains.
/// let big = vec![7u8; 20_000];
/// let rid2 = heap.insert(&mut tx, &big).unwrap();
/// assert_eq!(heap.get(&mut tx, rid2).unwrap(), big);
/// tx.commit().unwrap();
/// # drop(store);
/// # let _ = std::fs::remove_file(&path);
/// # let mut w = path.into_os_string(); w.push(".wal");
/// # let _ = std::fs::remove_file(std::path::PathBuf::from(w));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heap {
    /// The heap's directory page.
    pub dir: PageId,
}

impl Heap {
    /// Create a new, empty heap.
    pub fn create(tx: &mut impl PageWrite) -> Result<Heap> {
        let dir_id = tx.allocate(PageKind::HeapDir)?;
        let page = tx.page_mut(dir_id)?;
        page.write_u64(dir::FIRST, 0);
        page.write_u64(dir::HINT, 0);
        page.write_u64(dir::RECORD_COUNT, 0);
        Ok(Heap { dir: dir_id })
    }

    /// Open an existing heap by its directory page.
    pub fn open(dir: PageId) -> Heap {
        Heap { dir }
    }

    /// Number of live records.
    pub fn len(&self, tx: &mut impl PageRead) -> Result<u64> {
        Ok(tx.page(self.dir)?.read_u64(dir::RECORD_COUNT))
    }

    /// Whether the heap holds no records.
    pub fn is_empty(&self, tx: &mut impl PageRead) -> Result<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Insert a record of any size, returning its stable id.
    pub fn insert(&self, tx: &mut impl PageWrite, data: &[u8]) -> Result<RecordId> {
        let cell = if data.len() <= INLINE_MAX {
            let mut cell = Vec::with_capacity(data.len() + 1);
            cell.push(TAG_INLINE);
            cell.extend_from_slice(data);
            cell
        } else {
            let first = self.write_overflow_chain(tx, data)?;
            let mut cell = Vec::with_capacity(OVERFLOW_STUB_LEN);
            cell.push(TAG_OVERFLOW);
            cell.extend_from_slice(&(data.len() as u32).to_le_bytes());
            cell.extend_from_slice(&first.0.to_le_bytes());
            cell
        };

        let page_id = self.page_for_insert(tx, cell.len())?;
        let slot = slotted::insert(tx.page_mut(page_id)?, &cell)?;
        self.bump_count(tx, 1)?;
        Ok(RecordId {
            page: page_id,
            slot,
        })
    }

    /// Read a record.
    pub fn get(&self, tx: &mut impl PageRead, rid: RecordId) -> Result<Vec<u8>> {
        let page = tx.page(rid.page)?;
        if page.kind() != Some(PageKind::Heap) {
            return Err(StorageError::RecordNotFound {
                page: rid.page,
                slot: rid.slot,
            });
        }
        let cell = slotted::get(page, rid.slot).ok_or(StorageError::RecordNotFound {
            page: rid.page,
            slot: rid.slot,
        })?;
        match cell.first().copied() {
            Some(TAG_INLINE) => Ok(cell[1..].to_vec()),
            Some(TAG_OVERFLOW) => {
                if cell.len() != OVERFLOW_STUB_LEN {
                    return Err(StorageError::TreeCorrupt("bad overflow stub"));
                }
                let total = u32::from_le_bytes(cell[1..5].try_into().expect("4 bytes")) as usize;
                let first = PageId(u64::from_le_bytes(cell[5..13].try_into().expect("8 bytes")));
                self.read_overflow_chain(tx, first, total)
            }
            _ => Err(StorageError::TreeCorrupt("bad record tag")),
        }
    }

    /// Delete a record, freeing any overflow pages. Returns whether it
    /// existed.
    pub fn delete(&self, tx: &mut impl PageWrite, rid: RecordId) -> Result<bool> {
        let cell = match slotted::get(tx.page(rid.page)?, rid.slot) {
            Some(c) => c.to_vec(),
            None => return Ok(false),
        };
        if cell.first().copied() == Some(TAG_OVERFLOW) && cell.len() == OVERFLOW_STUB_LEN {
            let mut next = PageId(u64::from_le_bytes(cell[5..13].try_into().expect("8 bytes")));
            while !next.is_null() {
                let after = tx.page(next)?.link();
                tx.free_page(next)?;
                next = after;
            }
        }
        let page = tx.page_mut(rid.page)?;
        let existed = slotted::delete(page, rid.slot);
        if existed {
            // Pages with reclaimed space become the insert hint.
            if slotted::free_space(tx.page(rid.page)?) > PAGE_SIZE / 2 {
                tx.page_mut(self.dir)?.write_u64(dir::HINT, rid.page.0);
            }
            self.bump_count(tx, -1)?;
        }
        Ok(existed)
    }

    /// Replace a record's contents. When both the old and new value are
    /// inline and the new one fits its page (in place or after
    /// compaction), the record is rewritten under the **same id** and
    /// only that one page is touched — no directory-page write, so
    /// concurrent optimistic transactions replacing records on
    /// different pages do not conflict. Otherwise falls back to
    /// delete + insert, returning the new id; callers own remapping any
    /// references (see module docs).
    pub fn replace(&self, tx: &mut impl PageWrite, rid: RecordId, data: &[u8]) -> Result<RecordId> {
        if data.len() <= INLINE_MAX {
            let page = tx.page(rid.page)?;
            if page.kind() == Some(PageKind::Heap)
                && slotted::get(page, rid.slot).is_some_and(|c| c.first() == Some(&TAG_INLINE))
            {
                let mut cell = Vec::with_capacity(data.len() + 1);
                cell.push(TAG_INLINE);
                cell.extend_from_slice(data);
                match slotted::update(tx.page_mut(rid.page)?, rid.slot, &cell) {
                    Ok(()) => return Ok(rid),
                    // Doesn't fit even after compaction: relocate below.
                    Err(StorageError::PageFull) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        if !self.delete(tx, rid)? {
            return Err(StorageError::RecordNotFound {
                page: rid.page,
                slot: rid.slot,
            });
        }
        self.insert(tx, data)
    }

    /// Collect every live record (id, bytes), in page-chain order.
    ///
    /// This materializes the result: scans are used by extent iteration in
    /// the object layer, which decodes records immediately anyway.
    pub fn scan(&self, tx: &mut impl PageRead) -> Result<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut page_id = PageId(tx.page(self.dir)?.read_u64(dir::FIRST));
        while !page_id.is_null() {
            let page = tx.page(page_id)?;
            let next = page.link();
            let slots: Vec<u16> = slotted::live_slots(page).collect();
            for slot in slots {
                let rid = RecordId {
                    page: page_id,
                    slot,
                };
                let data = self.get(tx, rid)?;
                out.push((rid, data));
            }
            page_id = next;
        }
        Ok(out)
    }

    fn bump_count(&self, tx: &mut impl PageWrite, delta: i64) -> Result<()> {
        let count = tx.page(self.dir)?.read_u64(dir::RECORD_COUNT);
        let new = count
            .checked_add_signed(delta)
            .expect("record count underflow");
        tx.page_mut(self.dir)?.write_u64(dir::RECORD_COUNT, new);
        Ok(())
    }

    /// Find (or allocate) a data page that can hold a cell of `len` bytes.
    fn page_for_insert(&self, tx: &mut impl PageWrite, len: usize) -> Result<PageId> {
        let hint = PageId(tx.page(self.dir)?.read_u64(dir::HINT));
        if !hint.is_null() && slotted::can_insert(tx.page(hint)?, len) {
            return Ok(hint);
        }
        let first = PageId(tx.page(self.dir)?.read_u64(dir::FIRST));
        if !first.is_null() && slotted::can_insert(tx.page(first)?, len) {
            return Ok(first);
        }
        // Allocate a fresh data page at the chain head.
        let new_id = tx.allocate(PageKind::Heap)?;
        {
            let page = tx.page_mut(new_id)?;
            slotted::init(page);
            page.set_link(first);
        }
        let dir_page = tx.page_mut(self.dir)?;
        dir_page.write_u64(dir::FIRST, new_id.0);
        dir_page.write_u64(dir::HINT, new_id.0);
        Ok(new_id)
    }

    fn write_overflow_chain(&self, tx: &mut impl PageWrite, data: &[u8]) -> Result<PageId> {
        // Build the chain back-to-front so each page links to its
        // successor at allocation time.
        let mut next = PageId::NULL;
        let chunks: Vec<&[u8]> = data.chunks(OVERFLOW_CHUNK).collect();
        for chunk in chunks.into_iter().rev() {
            let id = tx.allocate(PageKind::Overflow)?;
            let page = tx.page_mut(id)?;
            page.set_link(next);
            page.write_u32(PAGE_HEADER_LEN, chunk.len() as u32);
            let start = PAGE_HEADER_LEN + 4;
            page.as_bytes_mut()[start..start + chunk.len()].copy_from_slice(chunk);
            next = id;
        }
        Ok(next)
    }

    fn read_overflow_chain(
        &self,
        tx: &mut impl PageRead,
        first: PageId,
        total: usize,
    ) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(total);
        let mut cur = first;
        while !cur.is_null() {
            let page = tx.page(cur)?;
            if page.kind() != Some(PageKind::Overflow) {
                return Err(StorageError::TreeCorrupt("overflow chain broken"));
            }
            let len = page.read_u32(PAGE_HEADER_LEN) as usize;
            if len > OVERFLOW_CHUNK {
                return Err(StorageError::TreeCorrupt("overflow chunk too long"));
            }
            let start = PAGE_HEADER_LEN + 4;
            out.extend_from_slice(&page.as_bytes()[start..start + len]);
            cur = page.link();
        }
        if out.len() != total {
            return Err(StorageError::TreeCorrupt("overflow length mismatch"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreOptions};

    fn temp_store(name: &str) -> (std::path::PathBuf, Store) {
        let mut p = std::env::temp_dir();
        p.push(format!("ode-heap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(p.with_extension("db.wal"));
        let mut wal = p.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        let store = Store::create(&p, StoreOptions::default()).unwrap();
        (p, store)
    }

    fn cleanup(p: &std::path::Path) {
        let _ = std::fs::remove_file(p);
        let mut wal = p.to_path_buf().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }

    #[test]
    fn record_id_packing() {
        let rid = RecordId {
            page: PageId(0x0000_1234_5678_9ABC),
            slot: 0xFEDC,
        };
        assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
    }

    #[test]
    fn insert_get_delete_small() {
        let (path, store) = temp_store("small");
        let mut tx = store.begin();
        let heap = Heap::create(&mut tx).unwrap();
        let rid = heap.insert(&mut tx, b"hello heap").unwrap();
        assert_eq!(heap.get(&mut tx, rid).unwrap(), b"hello heap");
        assert_eq!(heap.len(&mut tx).unwrap(), 1);
        assert!(heap.delete(&mut tx, rid).unwrap());
        assert!(!heap.delete(&mut tx, rid).unwrap());
        assert_eq!(heap.len(&mut tx).unwrap(), 0);
        assert!(heap.get(&mut tx, rid).is_err());
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn large_records_use_overflow() {
        let (path, store) = temp_store("overflow");
        let mut tx = store.begin();
        let heap = Heap::create(&mut tx).unwrap();
        // 3 pages worth of data plus a ragged tail.
        let data: Vec<u8> = (0..3 * OVERFLOW_CHUNK + 123)
            .map(|i| (i % 251) as u8)
            .collect();
        let rid = heap.insert(&mut tx, &data).unwrap();
        assert_eq!(heap.get(&mut tx, rid).unwrap(), data);
        let pages_before = tx.page_count().unwrap();
        assert!(heap.delete(&mut tx, rid).unwrap());
        // Deleting frees all 4 overflow pages (they return to the free
        // list rather than shrinking the file).
        assert_eq!(tx.page_count().unwrap(), pages_before);
        // Re-inserting reuses them instead of growing the file.
        let rid2 = heap.insert(&mut tx, &data).unwrap();
        assert_eq!(tx.page_count().unwrap(), pages_before);
        assert_eq!(heap.get(&mut tx, rid2).unwrap(), data);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn replace_changes_rid_and_preserves_data() {
        let (path, store) = temp_store("replace");
        let mut tx = store.begin();
        let heap = Heap::create(&mut tx).unwrap();
        let rid = heap.insert(&mut tx, b"v0").unwrap();
        let rid2 = heap.replace(&mut tx, rid, b"v1-much-longer").unwrap();
        assert_eq!(heap.get(&mut tx, rid2).unwrap(), b"v1-much-longer");
        assert_eq!(heap.len(&mut tx).unwrap(), 1);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn replace_in_place_keeps_rid_and_touches_one_page() {
        let (path, store) = temp_store("replace-in-place");
        let mut tx = store.begin();
        let heap = Heap::create(&mut tx).unwrap();
        let rid = heap.insert(&mut tx, &[1u8; 64]).unwrap();
        tx.commit().unwrap();

        // Same-size, shrinking, and growing (within the page) rewrites
        // all stay at the same record id.
        let mut tx = store.begin();
        assert_eq!(heap.replace(&mut tx, rid, &[2u8; 64]).unwrap(), rid);
        assert_eq!(heap.replace(&mut tx, rid, &[3u8; 16]).unwrap(), rid);
        assert_eq!(heap.replace(&mut tx, rid, &[4u8; 512]).unwrap(), rid);
        assert_eq!(heap.get(&mut tx, rid).unwrap(), vec![4u8; 512]);
        assert_eq!(heap.len(&mut tx).unwrap(), 1);
        tx.commit().unwrap();

        // An in-place replace's write set is the record's page alone —
        // the directory page is only read. Checked through the
        // optimistic engine: two concurrent replaces of records on
        // different pages must not conflict (a directory write would
        // make them).
        let mut setup = store.begin();
        // Fill past one page so the second record lands elsewhere.
        let filler: Vec<RecordId> = (0..6)
            .map(|_| heap.insert(&mut setup, &[9u8; 700]).unwrap())
            .collect();
        setup.commit().unwrap();
        let other = filler[5];
        assert_ne!(rid.page, other.page, "records must sit on different pages");
        let mut a = store.begin_optimistic();
        let mut b = store.begin_optimistic();
        assert_eq!(heap.replace(&mut a, rid, &[5u8; 64]).unwrap(), rid);
        assert_eq!(heap.replace(&mut b, other, &[6u8; 700]).unwrap(), other);
        a.commit().unwrap();
        b.commit().unwrap();
        let mut check = store.begin();
        assert_eq!(heap.get(&mut check, rid).unwrap(), vec![5u8; 64]);
        assert_eq!(heap.get(&mut check, other).unwrap(), vec![6u8; 700]);
        drop(check);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn replace_relocates_when_page_cannot_hold_growth() {
        let (path, store) = temp_store("replace-relocate");
        let mut tx = store.begin();
        let heap = Heap::create(&mut tx).unwrap();
        // Nearly fill one page so growing the first record must move it.
        let rid = heap.insert(&mut tx, &[1u8; 800]).unwrap();
        let mut sibling = rid;
        while sibling.page == rid.page {
            sibling = heap.insert(&mut tx, &[2u8; 800]).unwrap();
        }
        let grown = vec![7u8; 3000];
        let new_rid = heap.replace(&mut tx, rid, &grown).unwrap();
        assert_ne!(new_rid, rid, "growth past the page must relocate");
        assert_eq!(heap.get(&mut tx, new_rid).unwrap(), grown);
        // Overflow-sized values always relocate too (the inline slot
        // becomes a stub pointing at a fresh chain).
        let huge = vec![8u8; 20_000];
        let huge_rid = heap.replace(&mut tx, new_rid, &huge).unwrap();
        assert_eq!(heap.get(&mut tx, huge_rid).unwrap(), huge);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn scan_returns_all_live_records() {
        let (path, store) = temp_store("scan");
        let mut tx = store.begin();
        let heap = Heap::create(&mut tx).unwrap();
        let mut expected = Vec::new();
        for i in 0..500u32 {
            let data = format!("record-{i}").into_bytes();
            let rid = heap.insert(&mut tx, &data).unwrap();
            expected.push((rid, data));
        }
        // Delete a third of them.
        for (rid, _) in expected.iter().step_by(3) {
            heap.delete(&mut tx, *rid).unwrap();
        }
        let kept: Vec<_> = expected
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, e)| e.clone())
            .collect();
        let mut scanned = heap.scan(&mut tx).unwrap();
        scanned.sort();
        let mut kept_sorted = kept.clone();
        kept_sorted.sort();
        assert_eq!(scanned, kept_sorted);
        assert_eq!(heap.len(&mut tx).unwrap(), kept.len() as u64);
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn many_records_span_many_pages() {
        let (path, store) = temp_store("manypages");
        let mut tx = store.begin();
        let heap = Heap::create(&mut tx).unwrap();
        let data = vec![0xAAu8; 1000];
        let rids: Vec<RecordId> = (0..100)
            .map(|_| heap.insert(&mut tx, &data).unwrap())
            .collect();
        let distinct_pages: std::collections::HashSet<u64> =
            rids.iter().map(|r| r.page.0).collect();
        assert!(distinct_pages.len() > 20, "1000-byte records spread pages");
        for rid in rids {
            assert_eq!(heap.get(&mut tx, rid).unwrap(), data);
        }
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn heap_persists_across_reopen() {
        let (path, store) = temp_store("persist");
        let (heap_dir, rid) = {
            let mut tx = store.begin();
            let heap = Heap::create(&mut tx).unwrap();
            let rid = heap.insert(&mut tx, b"durable").unwrap();
            tx.set_root(0, heap.dir.0).unwrap();
            tx.commit().unwrap();
            (heap.dir, rid)
        };
        drop(store);
        let store = Store::open(&path, StoreOptions::default()).unwrap();
        let mut r = store.read();
        assert_eq!(r.root(0).unwrap(), heap_dir.0);
        let heap = Heap::open(heap_dir);
        assert_eq!(heap.get(&mut r, rid).unwrap(), b"durable");
        drop(r);
        drop(store);
        cleanup(&path);
    }

    #[test]
    fn empty_record_round_trips() {
        let (path, store) = temp_store("empty");
        let mut tx = store.begin();
        let heap = Heap::create(&mut tx).unwrap();
        let rid = heap.insert(&mut tx, b"").unwrap();
        assert_eq!(heap.get(&mut tx, rid).unwrap(), b"");
        tx.commit().unwrap();
        drop(store);
        cleanup(&path);
    }
}
