//! `core_bench` — multi-threaded storage-engine throughput.
//!
//! ```text
//! core_bench [engine-label] [objects] [ms-per-phase] [stall-us] [commits-per-writer]
//! ```
//!
//! Three phases over one seeded database, JSON on stdout (the shape
//! checked into `BENCH_core.json`):
//!
//! - **read_scaling** — 1/2/4/8 reader threads, each looping
//!   snapshot-open + `Deref` over a shared object pool. Run twice:
//!   *raw* (CPU-bound) and *io-model*, where every snapshot holds for
//!   `stall-us` microseconds, modeling a device read while the snapshot
//!   is open. On the pre-concurrency engine snapshots serialize behind
//!   the store mutex, so modeled stalls cannot overlap and throughput
//!   stays flat as threads are added; on the concurrent engine the
//!   stalls overlap and throughput scales with the thread count even on
//!   a single core.
//! - **mixed** — 4 readers against 1 continuously committing writer
//!   (fsync on): read throughput while the write path holds its commit
//!   section and fsyncs.
//! - **group_commit** — 8 writer threads each committing
//!   `commits-per-writer` small updates with fsync on, group commit off
//!   vs on; the engine's fsync and batch counters show how many
//!   commits each WAL sync amortizes.
//! - **multi_writer** — optimistic concurrency. One exclusive writer
//!   vs 4 concurrent optimistic writers on page-disjoint objects
//!   (uncontended: validation always passes, commits share group-commit
//!   fsync cohorts) and on one shared object (contended: abort/retry
//!   rates). Both runs fsync with a deliberate 1 ms leader window, so
//!   the uncontended speedup comes from cohort sharing — it holds even
//!   on one CPU.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::thread;
use std::time::{Duration, Instant};

use ode::{Database, DatabaseOptions, ObjPtr, RetryPolicy};
use ode_codec::{impl_persist_struct, impl_type_name};

#[derive(Debug, Clone, PartialEq)]
struct Item {
    id: u64,
    payload: Vec<u8>,
}
impl_persist_struct!(Item { id, payload });
impl_type_name!(Item = "bench/core/Item");

struct Scratch(std::path::PathBuf);

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }
}

fn fresh_db(name: &str, options: DatabaseOptions) -> (Scratch, Database) {
    let mut path = std::env::temp_dir();
    path.push(format!("ode-core-bench-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let db = Database::create(&path, options).expect("create bench db");
    (Scratch(path), db)
}

fn seed(db: &Database, objects: usize) -> Vec<ObjPtr<Item>> {
    let mut txn = db.begin();
    let ptrs = (0..objects)
        .map(|i| {
            txn.pnew(&Item {
                id: i as u64,
                payload: vec![i as u8; 64],
            })
            .expect("seed pnew")
        })
        .collect();
    txn.commit().expect("seed commit");
    ptrs
}

/// Aggregate read ops/sec of `threads` readers over `window`, each
/// iteration opening a snapshot, dereferencing one object, and (in
/// io-model mode) holding the snapshot open for `stall` to model a
/// device read.
fn read_phase(
    db: &Database,
    ptrs: &[ObjPtr<Item>],
    threads: usize,
    window: Duration,
    stall: Duration,
) -> f64 {
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    thread::scope(|scope| {
        for t in 0..threads {
            let (stop, total, barrier) = (&stop, &total, &barrier);
            scope.spawn(move || {
                let mut i = t;
                let mut ops = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let mut snap = db.snapshot();
                    let item = snap.deref(&ptrs[i % ptrs.len()]).expect("deref");
                    assert_eq!(item.payload.len(), 64);
                    if !stall.is_zero() {
                        // The stall happens *while the snapshot is
                        // open*: an engine that serializes snapshots
                        // cannot overlap these.
                        thread::sleep(stall);
                    }
                    drop(snap);
                    i += 1;
                    ops += 1;
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        barrier.wait();
        let start = Instant::now();
        thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        start
    });
    let elapsed = window.as_secs_f64();
    total.load(Ordering::Relaxed) as f64 / elapsed
}

fn json_f(v: f64) -> String {
    format!("{:.1}", v)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let engine = args.first().cloned().unwrap_or_else(|| "unknown".into());
    let objects: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let window_ms: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
    let stall_us: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(200);
    let commits_per_writer: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(40);
    let window = Duration::from_millis(window_ms);
    let stall = Duration::from_micros(stall_us);
    let cpus = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let threads = [1usize, 2, 4, 8];

    // -- read_scaling -----------------------------------------------------
    let (_scratch, db) = fresh_db("reads", DatabaseOptions::no_sync());
    let ptrs = seed(&db, objects);
    let raw: Vec<f64> = threads
        .iter()
        .map(|&t| read_phase(&db, &ptrs, t, window, Duration::ZERO))
        .collect();
    let modeled: Vec<f64> = threads
        .iter()
        .map(|&t| read_phase(&db, &ptrs, t, window, stall))
        .collect();

    // -- mixed ------------------------------------------------------------
    let (_scratch2, db2) = fresh_db("mixed", DatabaseOptions::default());
    let ptrs2 = seed(&db2, objects);
    let stop = AtomicBool::new(false);
    let commits = AtomicU64::new(0);
    let mixed_reads = thread::scope(|scope| {
        let writer = {
            let (stop, commits) = (&stop, &commits);
            let db2 = &db2;
            let ptrs2 = &ptrs2;
            scope.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = db2.begin();
                    txn.update(&ptrs2[i % ptrs2.len()], |item| item.id += 1)
                        .expect("update");
                    txn.commit().expect("commit");
                    commits.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        };
        let reads = read_phase(&db2, &ptrs2, 4, window, Duration::ZERO);
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("join writer");
        reads
    });
    let mixed_commits = commits.load(Ordering::Relaxed) as f64 / window.as_secs_f64();

    // -- group_commit -----------------------------------------------------
    let group = group_commit_phase(objects, commits_per_writer);

    // -- multi_writer -----------------------------------------------------
    let multi = multi_writer_phase(commits_per_writer, stall);

    println!("{{");
    println!("  \"benchmark\": \"core_storage_concurrency\",");
    println!("  \"engine\": \"{engine}\",");
    println!("  \"cpus\": {cpus},");
    println!("  \"objects\": {objects},");
    println!("  \"window_ms\": {window_ms},");
    println!("  \"read_scaling\": {{");
    println!(
        "    \"raw_ops_per_sec\": {{\"t1\": {}, \"t2\": {}, \"t4\": {}, \"t8\": {}}},",
        json_f(raw[0]),
        json_f(raw[1]),
        json_f(raw[2]),
        json_f(raw[3])
    );
    println!(
        "    \"io_model_{stall_us}us_ops_per_sec\": {{\"t1\": {}, \"t2\": {}, \"t4\": {}, \"t8\": {}}},",
        json_f(modeled[0]),
        json_f(modeled[1]),
        json_f(modeled[2]),
        json_f(modeled[3])
    );
    println!(
        "    \"io_model_scaling_1_to_4\": {}",
        json_f(modeled[2] / modeled[0].max(1.0))
    );
    println!("  }},");
    println!("  \"mixed\": {{");
    println!("    \"readers\": 4,");
    println!("    \"read_ops_per_sec\": {},", json_f(mixed_reads));
    println!("    \"commits_per_sec\": {}", json_f(mixed_commits));
    println!("  }},");
    println!("{group},");
    println!("{multi}");
    println!("}}");
}

/// Optimistic multi-writer phase: exclusive single-writer baseline vs 4
/// optimistic writers, first on page-disjoint objects (each object's
/// version record fills most of a page, so the write sets never touch)
/// and then all contending for one object. Every run fsyncs with group
/// commit on and a 1 ms leader window — identical durability, so the
/// uncontended speedup measures fsync-cohort sharing, not an easier
/// configuration. The contended run inserts `stall` of think time
/// between each transaction's read and its write — without it, attempts
/// on a single CPU rarely overlap and the abort rate degenerates to 0.
fn multi_writer_phase(commits_per_writer: usize, stall: Duration) -> String {
    const WRITERS: usize = 4;
    const PER_WRITER_OBJECTS: usize = 8;
    let window = Duration::from_millis(1);
    let options = || {
        let mut o = DatabaseOptions::default();
        o.storage.group_commit = true;
        o.storage.group_commit_window = window;
        o
    };
    // Contention is the point of the last run: never give up on it.
    let policy = RetryPolicy {
        max_attempts: 1_000_000,
        backoff: Duration::from_micros(50),
        max_backoff: Duration::from_millis(1),
    };
    // ~2.5 KiB bodies: one version record per heap page, so distinct
    // objects mean disjoint write sets.
    let seed_paged = |db: &Database, n: usize| -> Vec<ObjPtr<Item>> {
        let mut txn = db.begin();
        let ptrs = (0..n)
            .map(|i| {
                txn.pnew(&Item {
                    id: i as u64,
                    payload: vec![i as u8; 2500],
                })
                .expect("seed pnew")
            })
            .collect();
        txn.commit().expect("seed commit");
        ptrs
    };
    let total = (WRITERS * commits_per_writer) as f64;

    // Baseline: one exclusive writer, same commit count and options.
    let (_s1, db1) = fresh_db("mw-single", options());
    let ptrs1 = seed_paged(&db1, PER_WRITER_OBJECTS);
    let start = Instant::now();
    for i in 0..WRITERS * commits_per_writer {
        let mut txn = db1.begin();
        txn.update(&ptrs1[i % ptrs1.len()], |item| item.id += 1)
            .expect("update");
        txn.commit().expect("commit");
    }
    let single = total / start.elapsed().as_secs_f64();

    // Uncontended: each writer owns a page-disjoint slice of objects.
    let (_s2, db2) = fresh_db("mw-disjoint", options());
    let ptrs2 = seed_paged(&db2, WRITERS * PER_WRITER_OBJECTS);
    let before2 = db2.storage_stats();
    let barrier = Barrier::new(WRITERS + 1);
    let start = Instant::now();
    thread::scope(|scope| {
        for w in 0..WRITERS {
            let (db2, ptrs2, barrier, policy) = (&db2, &ptrs2, &barrier, &policy);
            scope.spawn(move || {
                barrier.wait();
                for i in 0..commits_per_writer {
                    let ptr = &ptrs2[w * PER_WRITER_OBJECTS + i % PER_WRITER_OBJECTS];
                    db2.transact(*policy, |txn| txn.update(ptr, |item| item.id += 1))
                        .expect("transact");
                }
            });
        }
        barrier.wait();
    });
    let uncontended = total / start.elapsed().as_secs_f64();
    let after2 = db2.storage_stats();

    // Contended: everyone read-modify-writes the same object.
    let (_s3, db3) = fresh_db("mw-contended", options());
    let ptrs3 = seed_paged(&db3, 1);
    let before3 = db3.storage_stats();
    let barrier = Barrier::new(WRITERS + 1);
    let start = Instant::now();
    thread::scope(|scope| {
        for _ in 0..WRITERS {
            let (db3, ptrs3, barrier, policy) = (&db3, &ptrs3, &barrier, &policy);
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..commits_per_writer {
                    db3.transact(*policy, |txn| {
                        let seen = txn.deref(&ptrs3[0])?.id;
                        if !stall.is_zero() {
                            // Think time between read and write: the
                            // window a concurrent winner can invalidate.
                            thread::sleep(stall);
                        }
                        txn.update(&ptrs3[0], |item| item.id = seen + 1)
                    })
                    .expect("transact");
                }
            });
        }
        barrier.wait();
    });
    let contended = total / start.elapsed().as_secs_f64();
    let after3 = db3.storage_stats();

    let conflict_block = |before: &ode_storage::StoreStats, after: &ode_storage::StoreStats| {
        let conflicts = after.write_conflicts - before.write_conflicts;
        let retries = after.write_retries - before.write_retries;
        format!(
            "\"write_conflicts\": {conflicts}, \"write_retries\": {retries}, \
             \"abort_rate\": {}",
            json_f(conflicts as f64 / (total + conflicts as f64))
        )
    };
    format!(
        "  \"multi_writer\": {{\n    \"writers\": {WRITERS},\n    \"commits_per_writer\": {commits_per_writer},\n    \"group_commit_window_ms\": 1,\n    \"single_writer\": {{\"commits_per_sec\": {}}},\n    \"uncontended\": {{\"commits_per_sec\": {}, \"speedup_vs_single\": {}, {}}},\n    \"contended\": {{\"commits_per_sec\": {}, {}}}\n  }}",
        json_f(single),
        json_f(uncontended),
        json_f(uncontended / single.max(1.0)),
        conflict_block(&before2, &after2),
        json_f(contended),
        conflict_block(&before3, &after3),
    )
}

/// 8 writers, `commits_per_writer` fsynced commits each, group commit
/// off vs on. Returns the pre-rendered JSON block.
fn group_commit_phase(objects: usize, commits_per_writer: usize) -> String {
    const WRITERS: usize = 8;
    let mut blocks = Vec::new();
    for on in [false, true] {
        let options = group_options(on);
        let (_scratch, db) = fresh_db(if on { "gc-on" } else { "gc-off" }, options);
        let ptrs = seed(&db, objects);
        let barrier = Barrier::new(WRITERS + 1);
        let start = Instant::now();
        thread::scope(|scope| {
            for w in 0..WRITERS {
                let (db, ptrs, barrier) = (&db, &ptrs, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..commits_per_writer {
                        let mut txn = db.begin();
                        txn.update(&ptrs[(w * commits_per_writer + i) % ptrs.len()], |item| {
                            item.id += 1
                        })
                        .expect("update");
                        txn.commit().expect("commit");
                    }
                });
            }
            barrier.wait();
        });
        let elapsed = start.elapsed().as_secs_f64();
        let total = (WRITERS * commits_per_writer) as f64;
        blocks.push(format!(
            "    \"{}\": {{\"commits_per_sec\": {}{}}}",
            if on { "on" } else { "off" },
            json_f(total / elapsed),
            group_counters(&db, total)
        ));
    }
    format!(
        "  \"group_commit\": {{\n    \"writers\": {WRITERS},\n    \"commits_per_writer\": {commits_per_writer},\n{}\n  }}",
        blocks.join(",\n")
    )
}

/// Engine options for the group-commit phase: fsync on commit in both
/// runs, with the leader/follower group commit toggled. A small window
/// lets leaders pick up cohorts even when the writers momentarily drain.
fn group_options(on: bool) -> DatabaseOptions {
    let mut options = DatabaseOptions::default();
    options.storage.group_commit = on;
    // No deliberate window: cohorts form from commits that land while a
    // leader's fsync is in flight, so batching never costs latency.
    options.storage.group_commit_window = Duration::ZERO;
    options
}

/// Engine fsync/batch counters: how many WAL fsyncs the run issued, how
/// many commits group leaders covered, and the largest cohort one fsync
/// amortized.
fn group_counters(db: &Database, commits: f64) -> String {
    let stats = db.storage_stats();
    format!(
        ", \"wal_syncs\": {}, \"group_syncs\": {}, \"group_commit_txns\": {}, \
         \"group_batch_max\": {}, \"commits_per_sync\": {}",
        stats.wal_syncs,
        stats.group_syncs,
        stats.group_commit_txns,
        stats.group_batch_max,
        json_f(commits / stats.wal_syncs.max(1) as f64)
    )
}
