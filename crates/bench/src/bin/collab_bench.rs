//! `collab_bench` — k-client collaborative editing through the router.
//!
//! ```text
//! collab_bench [clients] [rounds] [slice_bytes] [contended_rounds]
//! ```
//!
//! One object, `clients` router clients, a 4-shard in-process tier.
//! The body is `clients` fixed-width slices with 4-byte separators, so
//! every edit is a byte-range splice at a known offset. Two phases:
//!
//! - **disjoint** — every round, each client forks the current tip and
//!   rewrites its own slice; the forks are merged pairwise back to a
//!   single tip. All merges must resolve cleanly under the strict
//!   policy, and after every round each client's read must byte-match
//!   the oracle (the tip with every slice rewritten). Reported:
//!   per-merge wire latency (mean/p50/p95/max) and clean-merge count.
//!
//! - **contended** — two clients fork the tip; one always rewrites
//!   slice 0, the other rewrites slice 0 too (collision) or slice 1,
//!   on a seeded coin flip. The strict merge must conflict exactly
//!   when the edits collide — the measured conflict rate equals the
//!   coin's — and each collision is then resolved with the
//!   theirs-policy. Resolution is hunk-level (non-conflicting hunks
//!   from both sides still apply), so the resolved body is read back
//!   from the server rather than predicted, and convergence means
//!   every client reads those same bytes.
//!
//! The report (JSON on stdout, shape recorded in BENCH_core.json under
//! `collab_bench`) is a correctness gate as much as a benchmark: any
//! divergence, silent conflict, or spurious conflict panics.

use std::time::Instant;

use ode::{MergePolicy, Oid, TypeTag, Vid};
use ode_net::{ClientConfig, Cluster, ClusterConfig, OdeClient, Request, Response};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TAG: TypeTag = TypeTag(0x636f6c6c61625f62); // "collab_b"

/// Separator between client slices: wider than the merge layer's
/// minimum split, so adjacent slice edits always present clean gaps.
const SEP: &[u8] = b"::::";

fn call(c: &mut OdeClient, req: &Request) -> Response {
    let seq = c.send(req).expect("send");
    c.recv_for(seq).expect("recv")
}

fn fork_from(c: &mut OdeClient, base: Vid) -> Vid {
    match call(c, &Request::NewVersionFrom { vid: base }) {
        Response::Version(vid) => vid,
        other => panic!("fork: unexpected {other:?}"),
    }
}

fn write_version(c: &mut OdeClient, vid: Vid, body: Vec<u8>) {
    match call(
        c,
        &Request::UpdateVersion {
            vid,
            tag: TAG,
            body,
        },
    ) {
        Response::Unit => {}
        other => panic!("write: unexpected {other:?}"),
    }
}

fn slice_range(i: usize, slice_bytes: usize) -> std::ops::Range<usize> {
    let start = i * (slice_bytes + SEP.len());
    start..start + slice_bytes
}

/// Slice content for client `i` at edit stamp `stamp`.
fn fill(i: usize, stamp: u64, slice_bytes: usize) -> Vec<u8> {
    format!("c{i}r{stamp}-")
        .bytes()
        .cycle()
        .take(slice_bytes)
        .collect()
}

/// `body` with client `i`'s slice replaced by `content`.
fn spliced(body: &[u8], i: usize, content: &[u8], slice_bytes: usize) -> Vec<u8> {
    let mut out = body.to_vec();
    out[slice_range(i, slice_bytes)].copy_from_slice(content);
    out
}

/// Every client reads the object; all reads must agree on version and
/// bytes. Returns the agreed body.
fn converged_body(conns: &mut [OdeClient], oid: Oid, tip: Vid, what: &str) -> Vec<u8> {
    let mut agreed: Option<Vec<u8>> = None;
    for c in conns.iter_mut() {
        let (at, bytes) = c.deref_raw(oid, TAG).expect("deref");
        assert_eq!(at, tip, "client tip diverged: {what}");
        match &agreed {
            Some(prev) => assert_eq!(*prev, bytes, "client bytes diverged: {what}"),
            None => agreed = Some(bytes),
        }
    }
    agreed.expect("at least one client")
}

struct LatencyStats {
    mean_us: f64,
    p50_us: f64,
    p95_us: f64,
    max_us: f64,
}

fn stats(mut samples: Vec<f64>) -> LatencyStats {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pick = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
    LatencyStats {
        mean_us: samples.iter().sum::<f64>() / samples.len() as f64,
        p50_us: pick(0.50),
        p95_us: pick(0.95),
        max_us: *samples.last().expect("non-empty"),
    }
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let clients = args.first().copied().unwrap_or(4).max(2);
    let rounds = args.get(1).copied().unwrap_or(32);
    let slice_bytes = args.get(2).copied().unwrap_or(256).max(16);
    let contended_rounds = args.get(3).copied().unwrap_or(64);

    let cluster = Cluster::start(ClusterConfig {
        shards: 4,
        ..ClusterConfig::default()
    });
    let mut conns: Vec<OdeClient> = (0..clients)
        .map(|_| {
            OdeClient::connect(cluster.router_addr(), ClientConfig::default()).expect("connect")
        })
        .collect();

    // -- seed ----------------------------------------------------------------
    let mut tip_body: Vec<u8> = Vec::new();
    for i in 0..clients {
        if i > 0 {
            tip_body.extend_from_slice(SEP);
        }
        tip_body.extend(fill(i, 0, slice_bytes));
    }
    let (oid, mut tip) = conns[0].pnew_raw(TAG, tip_body.clone()).expect("pnew");

    // -- phase 1: disjoint ---------------------------------------------------
    let mut merge_latency_us: Vec<f64> = Vec::new();
    let mut clean_merges = 0u64;
    for round in 1..=rounds as u64 {
        // Every client forks the tip and rewrites its own slice.
        let mut forks: Vec<Vid> = Vec::new();
        for (i, c) in conns.iter_mut().enumerate() {
            let fork = fork_from(c, tip);
            let body = spliced(&tip_body, i, &fill(i, round, slice_bytes), slice_bytes);
            write_version(c, fork, body);
            forks.push(fork);
        }
        // Pairwise reduction back to one tip; every merge is timed and
        // must be clean.
        let mut frontier = forks;
        while frontier.len() > 1 {
            let mut next = Vec::new();
            for (j, pair) in frontier.chunks(2).enumerate() {
                if pair.len() == 1 {
                    next.push(pair[0]);
                    continue;
                }
                let c = &mut conns[j % clients];
                let start = Instant::now();
                let (vid, conflicts) = c
                    .merge_raw(pair[0], pair[1], MergePolicy::Fail)
                    .expect("merge");
                merge_latency_us.push(start.elapsed().as_secs_f64() * 1e6);
                assert!(
                    conflicts.is_empty(),
                    "disjoint round {round} conflicted: {conflicts:?}"
                );
                next.push(vid.expect("clean merge must check in"));
                clean_merges += 1;
            }
            frontier = next;
        }
        tip = frontier[0];

        // Convergence gate: every client reads exactly the oracle — the
        // previous tip with every slice rewritten.
        for i in 0..clients {
            let range = slice_range(i, slice_bytes);
            tip_body[range].copy_from_slice(&fill(i, round, slice_bytes));
        }
        let body = converged_body(&mut conns, oid, tip, &format!("disjoint round {round}"));
        assert_eq!(body, tip_body, "round {round} missed an edit");
    }
    let disjoint = stats(merge_latency_us);

    // -- phase 2: contended --------------------------------------------------
    let mut rng = StdRng::seed_from_u64(0xC011AB);
    let mut conflicted = 0u64;
    let mut collisions = 0u64;
    let mut resolve_latency_us: Vec<f64> = Vec::new();
    for round in 1..=contended_rounds as u64 {
        let stamp = rounds as u64 + round;
        let collide = rng.random_bool(0.5);

        let a = fork_from(&mut conns[0], tip);
        write_version(
            &mut conns[0],
            a,
            spliced(&tip_body, 0, &fill(0, stamp, slice_bytes), slice_bytes),
        );

        let b = fork_from(&mut conns[1], tip);
        let theirs_body = if collide {
            // Same slice, different bytes: the strict merge must
            // conflict, and every conflict must name bytes inside the
            // contested slice.
            collisions += 1;
            spliced(
                &tip_body,
                0,
                &fill(0, stamp + 1_000_000, slice_bytes),
                slice_bytes,
            )
        } else {
            spliced(&tip_body, 1, &fill(1, stamp, slice_bytes), slice_bytes)
        };
        write_version(&mut conns[1], b, theirs_body);

        let (vid, conflicts) = conns[0]
            .merge_raw(a, b, MergePolicy::Fail)
            .expect("strict merge");
        if collide {
            assert!(vid.is_none(), "colliding edits merged silently");
            assert!(!conflicts.is_empty(), "collision reported no conflict");
            let limit = (slice_bytes + SEP.len()) as u64;
            for c in &conflicts {
                assert!(
                    c.base_end <= limit,
                    "conflict [{}, {}) escaped the contested slice",
                    c.base_start,
                    c.base_end
                );
            }
            conflicted += 1;
            // Resolve in their favor. Resolution is hunk-level, so the
            // authoritative body is whatever the server checked in.
            let start = Instant::now();
            let (vid, conflicts) = conns[1]
                .merge_raw(a, b, MergePolicy::Theirs)
                .expect("resolving merge");
            resolve_latency_us.push(start.elapsed().as_secs_f64() * 1e6);
            assert!(!conflicts.is_empty());
            tip = vid.expect("theirs-policy must resolve");
            tip_body = converged_body(
                &mut conns,
                oid,
                tip,
                &format!("contended round {round} (resolved)"),
            );
        } else {
            assert!(conflicts.is_empty(), "disjoint edits conflicted");
            tip = vid.expect("clean merge must check in");
            // Clean merges are deterministic: both splices applied.
            tip_body = spliced(&tip_body, 0, &fill(0, stamp, slice_bytes), slice_bytes);
            tip_body = spliced(&tip_body, 1, &fill(1, stamp, slice_bytes), slice_bytes);
            let body = converged_body(&mut conns, oid, tip, &format!("contended round {round}"));
            assert_eq!(body, tip_body, "round {round} missed an edit");
        }
    }
    assert_eq!(
        conflicted, collisions,
        "conflict count must equal collision count"
    );
    let conflict_rate = conflicted as f64 / contended_rounds as f64;
    let resolve = stats(resolve_latency_us);

    println!("{{");
    println!("  \"benchmark\": \"collab_merge\",");
    println!("  \"clients\": {clients},");
    println!("  \"slice_bytes\": {slice_bytes},");
    println!("  \"disjoint\": {{");
    println!("    \"rounds\": {rounds},");
    println!("    \"clean_merges\": {clean_merges},");
    println!("    \"merge_latency_us\": {{");
    println!("      \"mean\": {:.1},", disjoint.mean_us);
    println!("      \"p50\": {:.1},", disjoint.p50_us);
    println!("      \"p95\": {:.1},", disjoint.p95_us);
    println!("      \"max\": {:.1}", disjoint.max_us);
    println!("    }},");
    println!("    \"converged\": true");
    println!("  }},");
    println!("  \"contended\": {{");
    println!("    \"rounds\": {contended_rounds},");
    println!("    \"collisions\": {collisions},");
    println!("    \"conflicted_merges\": {conflicted},");
    println!("    \"conflict_rate\": {conflict_rate:.3},");
    println!("    \"resolve_latency_us\": {{");
    println!("      \"mean\": {:.1},", resolve.mean_us);
    println!("      \"p50\": {:.1},", resolve.p50_us);
    println!("      \"p95\": {:.1},", resolve.p95_us);
    println!("      \"max\": {:.1}", resolve.max_us);
    println!("    }},");
    println!("    \"converged\": true");
    println!("  }}");
    println!("}}");
}
