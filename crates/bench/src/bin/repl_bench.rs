//! `repl_bench` — aggregate read throughput of replica reads.
//!
//! ```text
//! repl_bench [clients] [reads_per_client] [batch] [objects] [repeats] [replicas]
//! ```
//!
//! Two topologies over the same pipelined-read workload, both behind a
//! router (so the hop and the epoch bookkeeping are priced equally):
//!
//! - **primary_only** — one shard, no replicas: every read lands on
//!   the primary, the pre-replication ceiling;
//! - **replicated** — the same shard with `replicas` (default 2)
//!   WAL-shipped replicas: read-only sessions are spread across the
//!   replica bank by the router, each read pinned at the router's last
//!   probed primary epoch (the read-your-writes gate is in the
//!   measured path, not bypassed).
//!
//! Each session reads its own slice of the working set (sessions are
//! how real read traffic partitions). The whole set (default 6144
//! objects) exceeds one server's snapshot-cache capacity (4096), so
//! the primary-only topology thrashes its cache and pays the decode
//! path on most reads — while the router spreads read-only sessions
//! across replicas, each of which caches only the slices it serves.
//! Replicas thus add serving capacity (cache + decode) without moving
//! any data off the shard. Each topology is measured `repeats` times
//! warm and the fastest phase reported (see `router_bench` for why the
//! repeat maximum is the stable estimator). The report (JSON on
//! stdout, shape checked into BENCH_net.json) ends with
//! `replicated_over_primary`, the aggregate read speedup replicas buy.

use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use ode::{Database, DatabaseOptions, Oid, TypeTag};
use ode_net::{
    ClientConfig, OdeClient, OdeRouter, OdeServer, Request, Response, RouterConfig, ServerConfig,
    ShardMembership,
};
use ode_repl::{HubOptions, ReplicaNode, ReplicationHub};

const TAG: TypeTag = TypeTag(0x7265706c625f5f5f); // "replb___"

struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(label: &str) -> Scratch {
        let path =
            std::env::temp_dir().join(format!("ode-repl-bench-{}-{label}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }
}

struct PhaseResult {
    elapsed_secs: f64,
    ops_per_sec: f64,
    replica_reads: u64,
}

fn seed(addr: SocketAddr, objects: usize) -> Vec<Oid> {
    let mut seeder = OdeClient::connect(addr, ClientConfig::default()).expect("connect seeder");
    let body = vec![0xABu8; 128];
    let oids: Vec<Oid> = (0..objects)
        .map(|_| seeder.pnew_raw(TAG, body.clone()).expect("seed").0)
        .collect();
    for &oid in &oids {
        seeder.deref_raw(oid, TAG).expect("warm");
    }
    oids
}

/// Every thread is a fresh, read-only session (so the router routes it
/// to the replica bank) performing `reads` pipelined Derefs over its
/// own slice of the pool.
fn run_phase(
    router: &OdeRouter,
    clients: usize,
    reads: usize,
    batch: usize,
    oids: &[Oid],
) -> PhaseResult {
    let addr = router.local_addr();
    let before = router.stats().replica_reads;
    let barrier = Arc::new(Barrier::new(clients + 1));
    let start = Instant::now();
    thread::scope(|scope| {
        for t in 0..clients {
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut c = OdeClient::connect(addr, ClientConfig::default()).expect("connect");
                let lo = t * oids.len() / clients;
                let hi = ((t + 1) * oids.len() / clients).max(lo + 1);
                let slice = &oids[lo..hi];
                barrier.wait();
                let mut i = 0usize;
                let mut done = 0usize;
                while done < reads {
                    let n = batch.min(reads - done);
                    let mut pipe = c.pipeline();
                    for _ in 0..n {
                        let oid = slice[i % slice.len()];
                        i += 1;
                        pipe.push(&Request::Deref { oid, tag: TAG }).expect("push");
                    }
                    for r in pipe.run().expect("pipeline") {
                        assert!(matches!(r, Response::Body { .. }));
                    }
                    done += n;
                }
            });
        }
        barrier.wait();
    });
    let elapsed = start.elapsed().as_secs_f64();
    PhaseResult {
        elapsed_secs: elapsed,
        ops_per_sec: (clients * reads) as f64 / elapsed,
        replica_reads: router.stats().replica_reads - before,
    }
}

fn best_phase(
    router: &OdeRouter,
    clients: usize,
    reads: usize,
    batch: usize,
    oids: &[Oid],
    repeats: usize,
) -> PhaseResult {
    (0..repeats.max(1))
        .map(|_| run_phase(router, clients, reads, batch, oids))
        .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec))
        .expect("at least one phase")
}

fn run_topology(
    label: &str,
    replicas: usize,
    clients: usize,
    reads: usize,
    batch: usize,
    objects: usize,
    repeats: usize,
) -> PhaseResult {
    let workers = clients + 2;
    let pscratch = Scratch::new(&format!("{label}-p"));
    let pdb = Arc::new(
        Database::create(&pscratch.0, DatabaseOptions::no_sync()).expect("create primary"),
    );
    let hub = (replicas > 0).then(|| {
        ReplicationHub::start(Arc::clone(&pdb), "127.0.0.1:0", HubOptions::default())
            .expect("start hub")
    });
    let server_config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    let pserver =
        OdeServer::bind(Arc::clone(&pdb), "127.0.0.1:0", server_config.clone()).expect("bind");

    let rscratches: Vec<Scratch> = (0..replicas)
        .map(|i| Scratch::new(&format!("{label}-r{i}")))
        .collect();
    let mut rnodes = Vec::new();
    let mut rservers = Vec::new();
    for scratch in &rscratches {
        let db =
            Arc::new(Database::create(&scratch.0, DatabaseOptions::no_sync()).expect("replica db"));
        let node = ReplicaNode::start(
            Arc::clone(&db),
            hub.as_ref().expect("hub").local_addr().to_string(),
        );
        let config = ServerConfig {
            replica: true,
            ..server_config.clone()
        };
        let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", config).expect("bind replica");
        rnodes.push((db, node));
        rservers.push(server);
    }

    let members = vec![ShardMembership {
        primary: pserver.local_addr(),
        replicas: rservers.iter().map(|s| s.local_addr()).collect(),
    }];
    let router_config = RouterConfig {
        workers,
        probe_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    };
    let router =
        OdeRouter::bind_with_members("127.0.0.1:0", members, router_config).expect("bind router");

    let oids = seed(router.local_addr(), objects);

    // Replicas must be caught up and probed before measuring, or the
    // epoch gate stalls the first reads instead of serving them.
    if replicas > 0 {
        let target = pdb.snapshot_epoch();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (_, _, probed) = router.shard_members(0);
            if probed.len() == replicas
                && probed.iter().all(|(_, e)| e.is_some_and(|e| e >= target))
            {
                break;
            }
            assert!(Instant::now() < deadline, "replicas never caught up");
            thread::sleep(Duration::from_millis(10));
        }
    }

    let result = best_phase(&router, clients, reads, batch, &oids, repeats);

    router.shutdown();
    for (_, node) in &rnodes {
        node.stop();
    }
    for server in rservers {
        server.shutdown();
    }
    if let Some(hub) = hub {
        hub.shutdown();
    }
    pserver.shutdown();
    result
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let clients = args.first().copied().unwrap_or(8);
    let reads = args.get(1).copied().unwrap_or(20_000);
    let batch = args.get(2).copied().unwrap_or(128);
    let objects = args.get(3).copied().unwrap_or(6_144);
    let repeats = args.get(4).copied().unwrap_or(5);
    let replicas = args.get(5).copied().unwrap_or(2);

    let primary_only = run_topology("p", 0, clients, reads, batch, objects, repeats);
    let replicated = run_topology("r", replicas, clients, reads, batch, objects, repeats);
    let speedup = replicated.ops_per_sec / primary_only.ops_per_sec;
    assert!(
        replicated.replica_reads > 0,
        "the replicated phase must actually read from replicas"
    );

    println!("{{");
    println!("  \"benchmark\": \"replicated_reads\",");
    println!("  \"clients\": {clients},");
    println!("  \"reads_per_client\": {reads},");
    println!("  \"batch\": {batch},");
    println!("  \"objects\": {objects},");
    println!("  \"repeats\": {repeats},");
    println!("  \"replicas\": {replicas},");
    for (name, phase, comma) in [
        ("primary_only", &primary_only, ","),
        ("replicated", &replicated, ","),
    ] {
        println!("  \"{name}\": {{");
        println!("    \"ops_per_sec\": {:.0},", phase.ops_per_sec);
        println!("    \"elapsed_secs\": {:.3},", phase.elapsed_secs);
        println!("    \"replica_reads\": {}", phase.replica_reads);
        println!("  }}{comma}");
    }
    println!("  \"replicated_over_primary\": {speedup:.2}");
    println!("}}");
}
