//! `version_bench` — delta-chain version storage vs whole-body copies.
//!
//! ```text
//! version_bench [objects] [versions-per-object] [body-bytes] [read-rounds]
//! ```
//!
//! Builds identical version histories (evolving documents: shared
//! prefix, point edits, slight growth per revision) in three engines —
//! whole-body storage, and chain storage at anchor intervals 4 and
//! 16 — then reports, as JSON on stdout (the shape checked into
//! `BENCH_core.json` under `version_bench`):
//!
//! - **space** — bytes the store holds per engine, and the chain/whole
//!   ratio. The paper's claim is that at ≥ 20 versions per object the
//!   chain stores at most a third of the whole-copy bytes.
//! - **latest reads** — ns per `deref` of the newest version. The chain
//!   keeps the newest body whole, so this must stay within noise of the
//!   whole-body engine (the acceptance bar is 10%).
//! - **historical reads** — ns per `deref_v` of a non-latest version,
//!   cold (every vid read once: true materialization cost, at most
//!   `interval − 1` delta applications) and warm (second pass served by
//!   the materialization cache), with the cache's hit/miss counters.

use std::time::Instant;

use ode::{ChainConfig, Database, DatabaseOptions, ObjPtr, VersionPtr};
use ode_codec::{impl_persist_struct, impl_type_name};

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    rev: u64,
    text: Vec<u8>,
}
impl_persist_struct!(Doc { rev, text });
impl_type_name!(Doc = "bench/version/Doc");

struct Scratch(std::path::PathBuf);

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }
}

/// Revision `rev` of object `obj`: a mostly-stable body with a few
/// point edits and a short appended suffix per revision — the shape
/// delta compression exists for.
fn body(obj: usize, rev: usize, bytes: usize) -> Vec<u8> {
    let mut b: Vec<u8> = (0..bytes)
        .map(|j| ((j * 31 + obj * 7) % 251) as u8)
        .collect();
    for k in 0..4 {
        let at = (rev * 97 + k * 53) % bytes.max(1);
        b[at] = (rev + k) as u8;
    }
    b.extend_from_slice(format!("-o{obj}r{rev}").as_bytes());
    b
}

struct Built {
    _scratch: Scratch,
    db: Database,
    objects: Vec<ObjPtr<Doc>>,
    versions: Vec<Vec<VersionPtr<Doc>>>,
    /// Sum of encoded body bytes as written — exactly what whole-body
    /// storage holds for this history.
    whole_bytes: u64,
}

fn build(
    name: &str,
    options: DatabaseOptions,
    objects: usize,
    versions: usize,
    body_bytes: usize,
) -> Built {
    let mut path = std::env::temp_dir();
    path.push(format!("ode-version-bench-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let db = Database::create(&path, options).expect("create bench db");
    let mut ptrs = Vec::with_capacity(objects);
    let mut vids = Vec::with_capacity(objects);
    let mut whole_bytes = 0u64;
    let mut txn = db.begin();
    for o in 0..objects {
        let doc = Doc {
            rev: 0,
            text: body(o, 0, body_bytes),
        };
        whole_bytes += ode_codec::to_bytes(&doc).len() as u64;
        let p = txn.pnew(&doc).expect("pnew");
        let mut history = vec![txn.current_version(&p).expect("current")];
        for r in 1..versions {
            let v = txn.newversion(&p).expect("newversion");
            let doc = Doc {
                rev: r as u64,
                text: body(o, r, body_bytes),
            };
            whole_bytes += ode_codec::to_bytes(&doc).len() as u64;
            txn.put_version(&v, &doc).expect("put_version");
            history.push(v);
        }
        ptrs.push(p);
        vids.push(history);
    }
    txn.commit().expect("commit");
    Built {
        _scratch: Scratch(path),
        db,
        objects: ptrs,
        versions: vids,
        whole_bytes,
    }
}

/// Bytes the store actually holds for version bodies: summed chain
/// records where objects are chained, whole-body sums otherwise.
fn stored_bytes(b: &Built) -> u64 {
    let mut snap = b.db.snapshot();
    let mut total = 0u64;
    let mut chained = false;
    for p in &b.objects {
        if let Some(s) = snap.chain_stats_raw(p.oid()).expect("chain stats") {
            total += s.encoded_bytes;
            chained = true;
        }
    }
    if chained {
        total
    } else {
        b.whole_bytes
    }
}

/// ns per latest-version read: fresh snapshot + `deref` per iteration,
/// the network tier's serving pattern.
fn latest_ns(b: &Built, rounds: usize) -> f64 {
    let start = Instant::now();
    let mut reads = 0u64;
    for _ in 0..rounds {
        for p in &b.objects {
            let mut snap = b.db.snapshot();
            let doc = snap.deref(p).expect("deref");
            assert!(!doc.text.is_empty());
            reads += 1;
        }
    }
    start.elapsed().as_nanos() as f64 / reads as f64
}

/// ns per historical (non-latest) read, visiting every historical vid
/// exactly once per call — the first call after a commit is all
/// materialization-cache misses, a repeat call is all hits.
fn historical_ns(b: &Built) -> f64 {
    let start = Instant::now();
    let mut reads = 0u64;
    for history in &b.versions {
        for v in &history[..history.len() - 1] {
            let mut snap = b.db.snapshot();
            let doc = snap.deref_v(v).expect("deref_v");
            assert!(!doc.text.is_empty());
            reads += 1;
        }
    }
    start.elapsed().as_nanos() as f64 / reads as f64
}

fn json_f(v: f64) -> String {
    format!("{:.1}", v)
}

fn engine_block(b: &Built, whole_bytes: u64, interval: Option<u64>, rounds: usize) -> String {
    let bytes = stored_bytes(b);
    let latest = latest_ns(b, rounds);
    let (h0, m0) = b.db.materialize_cache_counters();
    let cold = historical_ns(b);
    let warm = historical_ns(b);
    let (h1, m1) = b.db.materialize_cache_counters();
    let chain_fields = match interval {
        Some(i) => format!(
            ", \"max_delta_applies\": {}, \"materialize_hits\": {}, \"materialize_misses\": {}",
            i - 1,
            h1 - h0,
            m1 - m0
        ),
        None => String::new(),
    };
    format!(
        "{{\"stored_bytes\": {bytes}, \"space_ratio\": {:.3}, \"latest_ns_per_read\": {}, \
         \"historical_cold_ns_per_read\": {}, \"historical_warm_ns_per_read\": {}{chain_fields}}}",
        bytes as f64 / whole_bytes.max(1) as f64,
        json_f(latest),
        json_f(cold),
        json_f(warm),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let objects: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(32);
    let versions: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(24);
    let body_bytes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2048);
    let rounds: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(64);

    let whole = build(
        "whole",
        DatabaseOptions::no_sync(),
        objects,
        versions,
        body_bytes,
    );
    let chain4 = build(
        "chain4",
        DatabaseOptions::no_sync().with_chain(ChainConfig::with_interval(4)),
        objects,
        versions,
        body_bytes,
    );
    let chain16 = build(
        "chain16",
        DatabaseOptions::no_sync().with_chain(ChainConfig::with_interval(16)),
        objects,
        versions,
        body_bytes,
    );
    assert_eq!(whole.whole_bytes, chain4.whole_bytes);
    assert_eq!(whole.whole_bytes, chain16.whole_bytes);
    let whole_bytes = whole.whole_bytes;

    let whole_block = engine_block(&whole, whole_bytes, None, rounds);
    let c4_block = engine_block(&chain4, whole_bytes, Some(4), rounds);
    let c16_block = engine_block(&chain16, whole_bytes, Some(16), rounds);

    let whole_latest = latest_ns(&whole, rounds);
    let c16_latest = latest_ns(&chain16, rounds);
    let overhead_pct = (c16_latest - whole_latest) / whole_latest.max(1.0) * 100.0;
    let ratio16 = stored_bytes(&chain16) as f64 / whole_bytes.max(1) as f64;

    println!("{{");
    println!("  \"benchmark\": \"version_delta_storage\",");
    println!("  \"objects\": {objects},");
    println!("  \"versions_per_object\": {versions},");
    println!("  \"body_bytes\": {body_bytes},");
    println!("  \"read_rounds\": {rounds},");
    println!("  \"whole_copy\": {whole_block},");
    println!("  \"chain_interval_4\": {c4_block},");
    println!("  \"chain_interval_16\": {c16_block},");
    println!("  \"headline\": {{");
    println!("    \"space_ratio_interval_16\": {:.3},", ratio16);
    println!("    \"latest_read_overhead_pct\": {}", json_f(overhead_pct));
    println!("  }}");
    println!("}}");
}
