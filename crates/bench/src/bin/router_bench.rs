//! `router_bench` — aggregate read throughput of the sharded tier.
//!
//! ```text
//! router_bench [clients] [reads_per_client] [batch] [objects] [repeats]
//! ```
//!
//! Three topologies over the same pipelined-read workload, each on
//! fresh in-process databases:
//!
//! - **direct** — clients on a single `OdeServer` (the PR 2 ceiling);
//! - **router_1shard** — the same single server behind an `OdeRouter`,
//!   pricing the extra hop by itself;
//! - **router_4shard** — four shard servers behind the router, the
//!   scale-out case.
//!
//! The working set (`objects`, default 8192) deliberately exceeds one
//! server's snapshot-cache capacity (4096 entries): a single server
//! keeps missing, while four shards hold a quarter of the set each and
//! stay hot — cache capacity, decode work, and commit-epoch checks all
//! scale with the shard count. Each topology is measured `repeats`
//! times on the same warm instance and the fastest phase is reported:
//! on a small machine the scheduler noise across ~sub-second phases
//! dwarfs the topology differences, and the repeat maximum is the
//! stable estimator of what each topology can sustain (the phases are
//! read-only, so hit rates are identical across repeats). The report
//! (JSON on stdout, shape checked into BENCH_net.json) ends with
//! `router4_over_direct`, the tier's aggregate speedup over the
//! single-server ceiling.

use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use ode::{Database, DatabaseOptions, Oid, TypeTag};
use ode_net::{
    ClientConfig, OdeClient, OdeRouter, OdeServer, Request, Response, RouterConfig, ServerConfig,
};

const TAG: TypeTag = TypeTag(0x726f75746572625f); // "routerb_"

struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(label: &str) -> Scratch {
        let path =
            std::env::temp_dir().join(format!("ode-router-bench-{}-{label}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }
}

struct PhaseResult {
    elapsed_secs: f64,
    ops_per_sec: f64,
    snapshot_hits: u64,
    snapshot_misses: u64,
}

/// Seed `objects` objects through `addr` and return their ids — minted
/// by whatever is listening there, so router phases get
/// shard-qualified ids and direct phases get raw ones.
fn seed(addr: SocketAddr, objects: usize) -> Vec<Oid> {
    let mut seeder = OdeClient::connect(addr, ClientConfig::default()).expect("connect seeder");
    let body = vec![0xABu8; 128];
    let oids: Vec<Oid> = (0..objects)
        .map(|_| seeder.pnew_raw(TAG, body.clone()).expect("seed").0)
        .collect();
    for &oid in &oids {
        seeder.deref_raw(oid, TAG).expect("warm");
    }
    oids
}

/// Every thread performs `reads` pipelined Derefs over `oids`,
/// round-robin from a per-thread offset.
fn run_phase(
    addr: SocketAddr,
    clients: usize,
    reads: usize,
    batch: usize,
    oids: &[Oid],
) -> PhaseResult {
    let mut stats_client = OdeClient::connect(addr, ClientConfig::default()).expect("connect");
    let before = stats_client.stats().expect("stats");
    let barrier = Arc::new(Barrier::new(clients + 1));
    let start = Instant::now();
    thread::scope(|scope| {
        for t in 0..clients {
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut c = OdeClient::connect(addr, ClientConfig::default()).expect("connect");
                barrier.wait();
                let mut i = t * (oids.len() / clients.max(1)); // spread offsets
                let mut done = 0usize;
                while done < reads {
                    let n = batch.min(reads - done);
                    let mut pipe = c.pipeline();
                    for _ in 0..n {
                        let oid = oids[i % oids.len()];
                        i += 1;
                        pipe.push(&Request::Deref { oid, tag: TAG }).expect("push");
                    }
                    for r in pipe.run().expect("pipeline") {
                        assert!(matches!(r, Response::Body { .. }));
                    }
                    done += n;
                }
            });
        }
        barrier.wait();
    });
    let elapsed = start.elapsed().as_secs_f64();
    let after = stats_client.stats().expect("stats");
    PhaseResult {
        elapsed_secs: elapsed,
        ops_per_sec: (clients * reads) as f64 / elapsed,
        snapshot_hits: after.snapshot_hits - before.snapshot_hits,
        snapshot_misses: after.snapshot_misses - before.snapshot_misses,
    }
}

/// One shard server on a fresh database.
fn start_shard(scratch: &Scratch, workers: usize) -> (Arc<Database>, OdeServer) {
    let db = Arc::new(Database::create(&scratch.0, DatabaseOptions::no_sync()).expect("create db"));
    let config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", config).expect("bind shard");
    (db, server)
}

/// The fastest of `repeats` phases — all identical, so this selects
/// the run least disturbed by the scheduler.
fn best_phase(
    addr: SocketAddr,
    clients: usize,
    reads: usize,
    batch: usize,
    oids: &[Oid],
    repeats: usize,
) -> PhaseResult {
    (0..repeats.max(1))
        .map(|_| run_phase(addr, clients, reads, batch, oids))
        .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec))
        .expect("at least one phase")
}

/// Run one topology end to end: build it, seed it, measure it, tear it
/// down. `shards == 0` means no router — clients straight on a server.
fn run_topology(
    label: &str,
    shards: usize,
    clients: usize,
    reads: usize,
    batch: usize,
    objects: usize,
    repeats: usize,
) -> PhaseResult {
    // Every client connection gets a live worker on whatever it dials.
    let workers = clients + 2;
    let scratches: Vec<Scratch> = (0..shards.max(1))
        .map(|i| Scratch::new(&format!("{label}-{i}")))
        .collect();
    let nodes: Vec<(Arc<Database>, OdeServer)> =
        scratches.iter().map(|s| start_shard(s, workers)).collect();

    let result = if shards == 0 {
        let addr = nodes[0].1.local_addr();
        let oids = seed(addr, objects);
        best_phase(addr, clients, reads, batch, &oids, repeats)
    } else {
        let backends: Vec<SocketAddr> = nodes.iter().map(|(_, s)| s.local_addr()).collect();
        let config = RouterConfig {
            workers,
            ..RouterConfig::default()
        };
        let router = OdeRouter::bind("127.0.0.1:0", backends, config).expect("bind router");
        let addr = router.local_addr();
        let oids = seed(addr, objects);
        let result = best_phase(addr, clients, reads, batch, &oids, repeats);
        router.shutdown();
        result
    };
    for (_, server) in nodes {
        server.shutdown();
    }
    result
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let clients = args.first().copied().unwrap_or(8);
    let reads = args.get(1).copied().unwrap_or(20_000);
    let batch = args.get(2).copied().unwrap_or(128);
    let objects = args.get(3).copied().unwrap_or(16_384);
    let repeats = args.get(4).copied().unwrap_or(5);

    let direct = run_topology("direct", 0, clients, reads, batch, objects, repeats);
    let one = run_topology("r1", 1, clients, reads, batch, objects, repeats);
    let four = run_topology("r4", 4, clients, reads, batch, objects, repeats);
    let speedup = four.ops_per_sec / direct.ops_per_sec;

    println!("{{");
    println!("  \"benchmark\": \"router_sharded_reads\",");
    println!("  \"clients\": {clients},");
    println!("  \"reads_per_client\": {reads},");
    println!("  \"batch\": {batch},");
    println!("  \"objects\": {objects},");
    println!("  \"repeats\": {repeats},");
    for (name, phase, comma) in [
        ("direct", &direct, ","),
        ("router_1shard", &one, ","),
        ("router_4shard", &four, ","),
    ] {
        println!("  \"{name}\": {{");
        println!("    \"ops_per_sec\": {:.0},", phase.ops_per_sec);
        println!("    \"elapsed_secs\": {:.3},", phase.elapsed_secs);
        println!("    \"snapshot_hits\": {},", phase.snapshot_hits);
        println!("    \"snapshot_misses\": {}", phase.snapshot_misses);
        println!("  }}{comma}");
    }
    println!("  \"router4_over_direct\": {speedup:.2}");
    println!("}}");
}
