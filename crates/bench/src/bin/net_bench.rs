//! `net_bench` — loopback throughput of `ode-net`, sequential vs
//! pipelined reads.
//!
//! ```text
//! net_bench [clients] [reads_per_client] [batch] [objects]
//! ```
//!
//! One in-process server on 127.0.0.1, `clients` client threads, each
//! performing `reads_per_client` Deref reads over a shared pool of
//! `objects` seeded objects. Two phases over the same workload:
//!
//! - **sequential** — one request, one round trip, `call()` at a time
//!   (the PR 1 client model);
//! - **pipelined** — the same reads pushed in `batch`-sized
//!   [`Pipeline`](ode_net::Pipeline) batches, so a whole batch costs
//!   roughly one round trip.
//!
//! The report (JSON on stdout, the shape checked into BENCH_net.json)
//! includes the server's snapshot-cache hit/miss counters per phase:
//! a read-only workload settles into one epoch, so nearly every read
//! after the first touch of each object is a cache hit.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use ode::{Database, DatabaseOptions, Oid, TypeTag};
use ode_net::{ClientConfig, OdeClient, OdeServer, Request, Response, ServerConfig};

const TAG: TypeTag = TypeTag(0x6e65745f62656e63); // "net_benc"

struct Scratch(std::path::PathBuf);

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }
}

struct PhaseResult {
    elapsed_secs: f64,
    ops_per_sec: f64,
    snapshot_hits: u64,
    snapshot_misses: u64,
}

/// Run one phase: every thread performs `reads` Derefs over `oids`,
/// round-robin from a per-thread offset. Returns aggregate throughput
/// and the snapshot-cache counters accumulated *during* the phase.
fn run_phase(
    addr: std::net::SocketAddr,
    clients: usize,
    reads: usize,
    batch: usize,
    oids: &[Oid],
    pipelined: bool,
) -> PhaseResult {
    let mut stats_client = OdeClient::connect(addr, ClientConfig::default()).expect("connect");
    let before = stats_client.stats().expect("stats");
    let barrier = Arc::new(Barrier::new(clients + 1));
    let start = Instant::now();
    thread::scope(|scope| {
        for t in 0..clients {
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut c = OdeClient::connect(addr, ClientConfig::default()).expect("connect");
                barrier.wait();
                let mut i = t; // offset per thread so the pool interleaves
                if pipelined {
                    let mut done = 0usize;
                    while done < reads {
                        let n = batch.min(reads - done);
                        let mut pipe = c.pipeline();
                        for _ in 0..n {
                            let oid = oids[i % oids.len()];
                            i += 1;
                            pipe.push(&Request::Deref { oid, tag: TAG }).expect("push");
                        }
                        for r in pipe.run().expect("pipeline") {
                            assert!(matches!(r, Response::Body { .. }));
                        }
                        done += n;
                    }
                } else {
                    for _ in 0..reads {
                        let oid = oids[i % oids.len()];
                        i += 1;
                        c.deref_raw(oid, TAG).expect("deref");
                    }
                }
            });
        }
        barrier.wait();
    });
    let elapsed = start.elapsed().as_secs_f64();
    let after = stats_client.stats().expect("stats");
    let total_ops = (clients * reads) as f64;
    PhaseResult {
        elapsed_secs: elapsed,
        ops_per_sec: total_ops / elapsed,
        snapshot_hits: after.snapshot_hits - before.snapshot_hits,
        snapshot_misses: after.snapshot_misses - before.snapshot_misses,
    }
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let clients = args.first().copied().unwrap_or(8);
    let reads = args.get(1).copied().unwrap_or(20_000);
    let batch = args.get(2).copied().unwrap_or(32);
    let objects = args.get(3).copied().unwrap_or(64);

    let path = std::env::temp_dir().join(format!("ode-net-bench-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let scratch = Scratch(path);
    let db = Arc::new(Database::create(&scratch.0, DatabaseOptions::no_sync()).expect("create db"));
    // Workers bound the number of concurrently served connections; the
    // benchmark needs every client live at once (plus the seeder and
    // the per-phase stats connection), whatever the host's CPU count.
    let config = ServerConfig {
        workers: clients + 2,
        ..ServerConfig::default()
    };
    let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let mut seeder = OdeClient::connect(addr, ClientConfig::default()).expect("connect");
    let body = vec![0xABu8; 128];
    let oids: Vec<Oid> = (0..objects)
        .map(|_| seeder.pnew_raw(TAG, body.clone()).expect("seed").0)
        .collect();

    // Warm-up: touch every object once so both phases start from a
    // fully resolved store (the first phase would otherwise pay the
    // cold-path cost alone).
    for &oid in &oids {
        seeder.deref_raw(oid, TAG).expect("warm");
    }

    let sequential = run_phase(addr, clients, reads, batch, &oids, false);
    let pipelined = run_phase(addr, clients, reads, batch, &oids, true);
    let speedup = pipelined.ops_per_sec / sequential.ops_per_sec;
    server.shutdown();

    println!("{{");
    println!("  \"benchmark\": \"net_loopback_reads\",");
    println!("  \"clients\": {clients},");
    println!("  \"reads_per_client\": {reads},");
    println!("  \"batch\": {batch},");
    println!("  \"objects\": {objects},");
    println!("  \"sequential\": {{");
    println!("    \"ops_per_sec\": {:.0},", sequential.ops_per_sec);
    println!("    \"elapsed_secs\": {:.3},", sequential.elapsed_secs);
    println!("    \"snapshot_hits\": {},", sequential.snapshot_hits);
    println!("    \"snapshot_misses\": {}", sequential.snapshot_misses);
    println!("  }},");
    println!("  \"pipelined\": {{");
    println!("    \"ops_per_sec\": {:.0},", pipelined.ops_per_sec);
    println!("    \"elapsed_secs\": {:.3},", pipelined.elapsed_secs);
    println!("    \"snapshot_hits\": {},", pipelined.snapshot_hits);
    println!("    \"snapshot_misses\": {}", pipelined.snapshot_misses);
    println!("  }},");
    println!("  \"pipelined_over_sequential\": {speedup:.2}");
    println!("}}");
}
