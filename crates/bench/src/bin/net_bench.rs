//! `net_bench` — loopback throughput of `ode-net`: sequential vs
//! pipelined reads, then connection scaling.
//!
//! ```text
//! net_bench [clients] [reads_per_client] [batch] [objects] [max_scaling_conns]
//! ```
//!
//! One in-process server on 127.0.0.1, `clients` client threads, each
//! performing `reads_per_client` Deref reads over a shared pool of
//! `objects` seeded objects. Three phases:
//!
//! - **sequential** — one request, one round trip, `call()` at a time
//!   (the PR 1 client model);
//! - **pipelined** — the same reads pushed in `batch`-sized
//!   [`Pipeline`](ode_net::Pipeline) batches, so a whole batch costs
//!   roughly one round trip;
//! - **connection_scaling** — pipelined reads spread over 64, 1 000,
//!   and 10 000 (capped at `max_scaling_conns`) concurrent
//!   connections. The driving client is a re-exec'd subprocess
//!   (`--scaling-client`, hidden) running its own epoll loop, so each
//!   process holds only one end of every socket pair and neither side
//!   spawns a thread per connection. Each point records the server
//!   process's thread count and RSS with every connection open — the
//!   claim under test is that both stay flat.
//!
//! The report (JSON on stdout, the shape checked into BENCH_net.json)
//! includes the server's snapshot-cache hit/miss counters per phase:
//! a read-only workload settles into one epoch, so nearly every read
//! after the first touch of each object is a cache hit.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Command, Stdio};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use ode::{Database, DatabaseOptions, Oid, TypeTag};
use ode_net::protocol::{write_frame, FrameBuffer, MAGIC};
use ode_net::{ClientConfig, OdeClient, OdeServer, Request, Response, ServerConfig};
use polling::{Event, Poller};

const TAG: TypeTag = TypeTag(0x6e65745f62656e63); // "net_benc"

struct Scratch(std::path::PathBuf);

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut wal = self.0.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }
}

struct PhaseResult {
    elapsed_secs: f64,
    ops_per_sec: f64,
    snapshot_hits: u64,
    snapshot_misses: u64,
}

/// Run one phase: every thread performs `reads` Derefs over `oids`,
/// round-robin from a per-thread offset. Returns aggregate throughput
/// and the snapshot-cache counters accumulated *during* the phase.
fn run_phase(
    addr: std::net::SocketAddr,
    clients: usize,
    reads: usize,
    batch: usize,
    oids: &[Oid],
    pipelined: bool,
) -> PhaseResult {
    let mut stats_client = OdeClient::connect(addr, ClientConfig::default()).expect("connect");
    let before = stats_client.stats().expect("stats");
    let barrier = Arc::new(Barrier::new(clients + 1));
    let start = Instant::now();
    thread::scope(|scope| {
        for t in 0..clients {
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut c = OdeClient::connect(addr, ClientConfig::default()).expect("connect");
                barrier.wait();
                let mut i = t; // offset per thread so the pool interleaves
                if pipelined {
                    let mut done = 0usize;
                    while done < reads {
                        let n = batch.min(reads - done);
                        let mut pipe = c.pipeline();
                        for _ in 0..n {
                            let oid = oids[i % oids.len()];
                            i += 1;
                            pipe.push(&Request::Deref { oid, tag: TAG }).expect("push");
                        }
                        for r in pipe.run().expect("pipeline") {
                            assert!(matches!(r, Response::Body { .. }));
                        }
                        done += n;
                    }
                } else {
                    for _ in 0..reads {
                        let oid = oids[i % oids.len()];
                        i += 1;
                        c.deref_raw(oid, TAG).expect("deref");
                    }
                }
            });
        }
        barrier.wait();
    });
    let elapsed = start.elapsed().as_secs_f64();
    let after = stats_client.stats().expect("stats");
    let total_ops = (clients * reads) as f64;
    PhaseResult {
        elapsed_secs: elapsed,
        ops_per_sec: total_ops / elapsed,
        snapshot_hits: after.snapshot_hits - before.snapshot_hits,
        snapshot_misses: after.snapshot_misses - before.snapshot_misses,
    }
}

/// A numeric field from `/proc/self/status` (`Threads:` is a count,
/// `VmRSS:` arrives in kB).
fn self_status(field: &str) -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix(field))
        .unwrap_or_else(|| panic!("{field} line in /proc/self/status"))
        .trim()
        .trim_end_matches(" kB")
        .parse()
        .expect("numeric /proc field")
}

/// One connection driven by the scaling client's event loop:
/// stop-and-wait windows of pipelined Derefs, so at most `window`
/// responses are ever in flight per connection and the burst writes
/// (a few hundred bytes) never fill the socket's send buffer.
struct ScalingConn {
    stream: TcpStream,
    fbuf: FrameBuffer,
    /// Responses still expected from the current window.
    awaiting: usize,
    /// Operations left to issue after the current window completes.
    remaining: usize,
}

/// The hidden `--scaling-client` mode: open `conns` connections to
/// `addr`, then drive `ops_per_conn` Derefs through each in `window`-
/// sized bursts, multiplexing every response stream over one epoll
/// loop in this single thread. Prints `CONNECTED` once every session
/// is handshaken (the parent samples its own threads/RSS on that
/// signal) and `OPS <n> ELAPSED <secs>` when the work is done.
///
/// Sockets stay blocking: under level-triggered readiness one `read`
/// per event can't park, and bursts are sent only when the previous
/// window is fully drained, so writes can't jam either.
fn scaling_client(args: &[String]) {
    let addr: SocketAddr = args[0].parse().expect("addr");
    let conns: usize = args[1].parse().expect("conns");
    let ops_per_conn: usize = args[2].parse().expect("ops_per_conn");
    let window: usize = args[3].parse().expect("window");
    let oid = Oid(args[4].parse().expect("oid"));
    polling::raise_nofile_limit().expect("raise RLIMIT_NOFILE");

    let poller = Poller::new().expect("poller");
    let mut sessions: Vec<ScalingConn> = (0..conns)
        .map(|i| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).ok();
            stream.write_all(&MAGIC).expect("magic");
            let mut echo = [0u8; 4];
            stream.read_exact(&mut echo).expect("echo");
            assert_eq!(echo, MAGIC);
            poller
                .add(&stream, Event::readable(i))
                .expect("register conn");
            ScalingConn {
                stream,
                fbuf: FrameBuffer::new(),
                awaiting: 0,
                remaining: ops_per_conn,
            }
        })
        .collect();
    println!("CONNECTED");

    // One window burst, reused: every request is the same Deref, only
    // the sequence ids differ — and ids may repeat across windows.
    let mut burst = Vec::new();
    for seq in 0..window as u64 {
        let payload = Request::Deref { oid, tag: TAG }.encode(seq);
        write_frame(&mut burst, &payload).expect("frame");
    }
    let send_window = |s: &mut ScalingConn| {
        let n = s.remaining.min(window);
        let take: usize = (0..n).map(|i| frame_len_of(&burst, i)).sum();
        s.stream.write_all(&burst[..take]).expect("send window");
        s.awaiting = n;
        s.remaining -= n;
    };

    let started = Instant::now();
    for s in sessions.iter_mut() {
        send_window(s);
    }
    let mut done = 0usize;
    let total = conns;
    let mut events = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    while done < total {
        poller.wait(&mut events, None).expect("wait");
        for ev in &events {
            let s = &mut sessions[ev.key];
            if s.awaiting == 0 && s.remaining == 0 {
                continue;
            }
            let n = match s.stream.read(&mut scratch) {
                Ok(0) => panic!("server closed a scaling connection"),
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("scaling read: {e}"),
            };
            s.fbuf.extend(&scratch[..n]);
            while let Some(payload) = s.fbuf.next_frame().expect("response frame") {
                let (_, resp) = Response::decode(payload).expect("response");
                assert!(matches!(resp, Response::Body { .. }), "got {resp:?}");
                s.awaiting -= 1;
            }
            if s.awaiting == 0 {
                if s.remaining > 0 {
                    send_window(s);
                } else {
                    done += 1;
                }
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    println!("OPS {} ELAPSED {elapsed}", conns * ops_per_conn);
}

/// Length of the `i`th frame in a concatenated burst (varint length
/// prefix + payload).
fn frame_len_of(burst: &[u8], mut skip: usize) -> usize {
    let mut at = 0usize;
    loop {
        let mut len = 0u64;
        let mut shift = 0;
        let start = at;
        loop {
            let b = burst[at];
            at += 1;
            len |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        at += len as usize;
        if skip == 0 {
            return at - start;
        }
        skip -= 1;
    }
}

struct ScalePoint {
    connections: usize,
    total_ops: usize,
    ops_per_sec: f64,
    server_threads: u64,
    server_rss_mb: f64,
}

/// Run one connection-scaling point: spawn the re-exec'd scaling
/// client against `addr`, sample this (server) process's thread count
/// and RSS while every connection is open and idle, then collect the
/// throughput once the client reports in.
fn run_scaling_point(addr: SocketAddr, conns: usize, oid: Oid) -> ScalePoint {
    // ~128k ops total, at least 8 per connection, window 8.
    let ops_per_conn = (131_072 / conns).max(8);
    let window = ops_per_conn.min(8);
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .arg("--scaling-client")
        .arg(addr.to_string())
        .arg(conns.to_string())
        .arg(ops_per_conn.to_string())
        .arg(window.to_string())
        .arg(oid.0.to_string())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn scaling client");
    let mut lines = BufReader::new(child.stdout.take().expect("child stdout")).lines();
    let ready = lines.next().expect("CONNECTED line").expect("read child");
    assert_eq!(ready, "CONNECTED", "unexpected scaling-client output");
    // Every connection is open right now: this is the load the claim
    // is about — threads and memory must not scale with it.
    let server_threads = self_status("Threads:");
    let server_rss_mb = self_status("VmRSS:") as f64 / 1024.0;
    let report = lines.next().expect("OPS line").expect("read child");
    let status = child.wait().expect("child exit");
    assert!(status.success(), "scaling client failed");
    let mut fields = report.split_whitespace();
    assert_eq!(fields.next(), Some("OPS"));
    let total_ops: usize = fields.next().expect("ops").parse().expect("ops");
    assert_eq!(fields.next(), Some("ELAPSED"));
    let elapsed: f64 = fields.next().expect("elapsed").parse().expect("elapsed");
    ScalePoint {
        connections: conns,
        total_ops,
        ops_per_sec: total_ops as f64 / elapsed,
        server_threads,
        server_rss_mb,
    }
}

fn main() {
    let raw_args: Vec<String> = std::env::args().skip(1).collect();
    if raw_args.first().map(String::as_str) == Some("--scaling-client") {
        scaling_client(&raw_args[1..]);
        return;
    }
    let args: Vec<usize> = raw_args
        .iter()
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let clients = args.first().copied().unwrap_or(8);
    let reads = args.get(1).copied().unwrap_or(20_000);
    let batch = args.get(2).copied().unwrap_or(32);
    let objects = args.get(3).copied().unwrap_or(64);
    let max_conns = args.get(4).copied().unwrap_or(10_000);

    let path = std::env::temp_dir().join(format!("ode-net-bench-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let scratch = Scratch(path);
    let db = Arc::new(Database::create(&scratch.0, DatabaseOptions::no_sync()).expect("create db"));
    // Workers bound the number of concurrently served connections; the
    // benchmark needs every client live at once (plus the seeder and
    // the per-phase stats connection), whatever the host's CPU count.
    let config = ServerConfig {
        workers: clients + 2,
        ..ServerConfig::default()
    };
    let server = OdeServer::bind(Arc::clone(&db), "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let mut seeder = OdeClient::connect(addr, ClientConfig::default()).expect("connect");
    let body = vec![0xABu8; 128];
    let oids: Vec<Oid> = (0..objects)
        .map(|_| seeder.pnew_raw(TAG, body.clone()).expect("seed").0)
        .collect();

    // Warm-up: touch every object once so both phases start from a
    // fully resolved store (the first phase would otherwise pay the
    // cold-path cost alone).
    for &oid in &oids {
        seeder.deref_raw(oid, TAG).expect("warm");
    }

    let sequential = run_phase(addr, clients, reads, batch, &oids, false);
    let pipelined = run_phase(addr, clients, reads, batch, &oids, true);
    let speedup = pipelined.ops_per_sec / sequential.ops_per_sec;

    // Connection scaling: the same server, held at 64 / 1k / 10k open
    // connections (capped by the CLI) by a subprocess client, so the
    // two processes split the fd budget and neither needs a thread per
    // connection.
    polling::raise_nofile_limit().expect("raise RLIMIT_NOFILE");
    let mut scale_conns: Vec<usize> = [64usize, 1_000, 10_000]
        .iter()
        .map(|&c| c.min(max_conns.max(1)))
        .collect();
    scale_conns.dedup();
    let scaling: Vec<ScalePoint> = scale_conns
        .iter()
        .map(|&conns| run_scaling_point(addr, conns, oids[0]))
        .collect();
    server.shutdown();

    println!("{{");
    println!("  \"benchmark\": \"net_loopback_reads\",");
    println!("  \"clients\": {clients},");
    println!("  \"reads_per_client\": {reads},");
    println!("  \"batch\": {batch},");
    println!("  \"objects\": {objects},");
    println!("  \"sequential\": {{");
    println!("    \"ops_per_sec\": {:.0},", sequential.ops_per_sec);
    println!("    \"elapsed_secs\": {:.3},", sequential.elapsed_secs);
    println!("    \"snapshot_hits\": {},", sequential.snapshot_hits);
    println!("    \"snapshot_misses\": {}", sequential.snapshot_misses);
    println!("  }},");
    println!("  \"pipelined\": {{");
    println!("    \"ops_per_sec\": {:.0},", pipelined.ops_per_sec);
    println!("    \"elapsed_secs\": {:.3},", pipelined.elapsed_secs);
    println!("    \"snapshot_hits\": {},", pipelined.snapshot_hits);
    println!("    \"snapshot_misses\": {}", pipelined.snapshot_misses);
    println!("  }},");
    println!("  \"pipelined_over_sequential\": {speedup:.2},");
    println!("  \"connection_scaling\": [");
    for (i, p) in scaling.iter().enumerate() {
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        println!(
            "    {{ \"connections\": {}, \"total_ops\": {}, \"ops_per_sec\": {:.0}, \
             \"server_threads\": {}, \"server_rss_mb\": {:.1} }}{comma}",
            p.connections, p.total_ops, p.ops_per_sec, p.server_threads, p.server_rss_mb
        );
    }
    println!("  ]");
    println!("}}");
}
