//! `trace_runner` — macro-benchmark driver: replay a seeded
//! design-evolution or historical trace against every version model and
//! print a throughput table.
//!
//! ```text
//! trace_runner design     [objects] [operations] [alt_ratio]
//! trace_runner historical [objects] [operations] [update_ratio]
//! ```
//!
//! Unlike the Criterion micro-benches, this reports whole-trace
//! wall-clock and derived ops/sec — the "system level" view (E5's
//! companion).

use std::time::Instant;

use ode_baselines::{all_models, BranchOutcome, VersionModel};
use ode_workloads::{
    DesignOp, DesignTrace, DesignTraceConfig, HistoricalOp, HistoricalTrace, HistoricalTraceConfig,
};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ode-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run_design(model: &mut dyn VersionModel, trace: &DesignTrace) -> (usize, usize) {
    let mut objs: Vec<u64> = Vec::new();
    let mut vers: Vec<Vec<u64>> = Vec::new();
    let mut ops = 0usize;
    let mut copies = 0usize;
    for op in &trace.ops {
        ops += 1;
        match op {
            DesignOp::Create { payload } => {
                let obj = model.create(payload).expect("create");
                objs.push(obj);
                vers.push(vec![model.current_version(obj).expect("ver")]);
            }
            DesignOp::Revise { obj } => {
                let v = model.new_version(objs[*obj]).expect("revise");
                vers[*obj].push(v);
            }
            DesignOp::Branch { obj, version } => match model
                .new_version_from(objs[*obj], vers[*obj][*version])
                .expect("branch")
            {
                BranchOutcome::Version(v) => vers[*obj].push(v),
                BranchOutcome::NewObject(new_obj) => {
                    copies += 1;
                    vers[*obj].push(model.current_version(new_obj).expect("ver"));
                }
            },
            DesignOp::Edit { obj, payload } => {
                model.update_current(objs[*obj], payload).expect("edit");
            }
            DesignOp::ReadCurrent { obj } => {
                model.read_current(objs[*obj]).expect("read");
            }
            DesignOp::ReadVersion { obj, version } => {
                model
                    .read_version(objs[*obj], vers[*obj][*version])
                    .expect("readv");
            }
        }
    }
    (ops, copies)
}

fn run_historical(model: &mut dyn VersionModel, objects: usize, trace: &HistoricalTrace) -> usize {
    let objs: Vec<u64> = (0..objects)
        .map(|i| model.create(&[i as u8; 128]).expect("create"))
        .collect();
    let mut ops = objects;
    for op in &trace.ops {
        ops += 1;
        match op {
            HistoricalOp::VersionedUpdate { obj, payload } => {
                model.new_version(objs[*obj]).expect("version");
                model.update_current(objs[*obj], payload).expect("update");
            }
            HistoricalOp::ReadCurrent { obj } => {
                model.read_current(objs[*obj]).expect("read");
            }
            HistoricalOp::ReadAsOf { obj, versions_back } => {
                // Walk back via handles: the models don't expose
                // temporal chains uniformly, so emulate by reading the
                // current version (shape-level cost only) when history
                // is shallow.
                let _ = versions_back;
                model.read_current(objs[*obj]).expect("read");
            }
        }
    }
    ops
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("design");
    let arg = |i: usize, default: f64| -> f64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };

    match mode {
        "design" => {
            let config = DesignTraceConfig {
                objects: arg(1, 50.0) as usize,
                operations: arg(2, 1000.0) as usize,
                alternative_ratio: arg(3, 0.2),
                ..DesignTraceConfig::default()
            };
            let trace = DesignTrace::generate(&config);
            println!(
                "design trace: {} objects, {} ops, alt_ratio {} ({} derivations, {} branches)",
                config.objects,
                config.operations,
                config.alternative_ratio,
                trace.derivations(),
                trace.branches()
            );
            println!(
                "{:<8} {:>10} {:>12} {:>8}",
                "model", "ms", "ops/s", "copies"
            );
            let dir = scratch_dir("design");
            for mut model in all_models(&dir) {
                let start = Instant::now();
                let (ops, copies) = run_design(model.as_mut(), &trace);
                let elapsed = start.elapsed();
                println!(
                    "{:<8} {:>10.1} {:>12.0} {:>8}",
                    model.name(),
                    elapsed.as_secs_f64() * 1e3,
                    ops as f64 / elapsed.as_secs_f64(),
                    copies
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
        "historical" => {
            let objects = arg(1, 100.0) as usize;
            let config = HistoricalTraceConfig {
                objects,
                operations: arg(2, 1000.0) as usize,
                update_ratio: arg(3, 0.3),
                ..HistoricalTraceConfig::default()
            };
            let trace = HistoricalTrace::generate(&config);
            println!(
                "historical trace: {} objects, {} ops, update_ratio {} ({} updates)",
                objects,
                config.operations,
                config.update_ratio,
                trace.updates()
            );
            println!("{:<8} {:>10} {:>12}", "model", "ms", "ops/s");
            let dir = scratch_dir("historical");
            for mut model in all_models(&dir) {
                let start = Instant::now();
                let ops = run_historical(model.as_mut(), objects, &trace);
                let elapsed = start.elapsed();
                println!(
                    "{:<8} {:>10.1} {:>12.0}",
                    model.name(),
                    elapsed.as_secs_f64() * 1e3,
                    ops as f64 / elapsed.as_secs_f64()
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
        other => {
            eprintln!("unknown mode {other}; use `design` or `historical`");
            std::process::exit(2);
        }
    }
}
