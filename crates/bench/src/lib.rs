//! Shared helpers for the benchmark harness (one Criterion target per
//! experiment in DESIGN.md §8) and hosts for the workspace-level
//! examples and integration tests.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ode::{Database, DatabaseOptions};
use ode_codec::{impl_persist_struct, impl_type_name};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory that is wiped on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh scratch directory.
    pub fn new(tag: &str) -> TempDir {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("ode-bench-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Open a benchmark database (fsync off) in `dir`.
pub fn bench_db(dir: &TempDir, name: &str) -> Database {
    Database::create(dir.file(name), DatabaseOptions::no_sync()).expect("create bench db")
}

/// The object type the micro-benches store: a named blob whose size the
/// experiment controls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blob {
    /// Identifier.
    pub id: u64,
    /// Payload of experiment-controlled size.
    pub data: Vec<u8>,
}
impl_persist_struct!(Blob { id, data });
impl_type_name!(Blob = "bench/Blob");

impl Blob {
    /// Deterministic blob of `size` bytes.
    pub fn of_size(id: u64, size: usize) -> Blob {
        Blob {
            id,
            data: (0..size)
                .map(|i| (id.wrapping_add(i as u64) % 251) as u8)
                .collect(),
        }
    }
}
