//! Ablations over the implementation's own design choices (DESIGN.md §8
//! tail): B+-tree fanout, buffer-pool size, and delta block size.

use bench::{Blob, TempDir};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode::{Database, DatabaseOptions};
use ode_delta::{apply, diff_with_block};
use ode_storage::btree::BTree;
use ode_storage::{Store, StoreOptions};
use std::time::Duration;

fn bench_btree_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_btree_fanout");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for cap in [8usize, 32, 128, 254] {
        group.bench_function(BenchmarkId::new("insert-10k", cap), |b| {
            b.iter_with_large_drop(|| {
                let dir = TempDir::new("ab-bt");
                let store = Store::create(
                    dir.file("db"),
                    StoreOptions {
                        sync_on_commit: false,
                        ..StoreOptions::default()
                    },
                )
                .unwrap();
                {
                    let mut tx = store.begin();
                    let mut tree = BTree::create(&mut tx).unwrap().with_caps(cap, cap);
                    for k in 0..10_000u64 {
                        tree.insert(&mut tx, k.wrapping_mul(0x9E37_79B9), k)
                            .unwrap();
                    }
                    tx.commit().unwrap();
                }
                (store, dir)
            })
        });
    }
    group.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_buffer_pool");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for pool_pages in [16usize, 128, 1024] {
        let dir = TempDir::new("ab-pool");
        let options = DatabaseOptions {
            storage: StoreOptions {
                sync_on_commit: false,
                buffer_pages: pool_pages,
                ..StoreOptions::default()
            },
            chain: None,
        };
        let db = Database::create(dir.file("db"), options).unwrap();
        let ptrs: Vec<_> = {
            let mut txn = db.begin();
            let ptrs: Vec<_> = (0..500)
                .map(|i| txn.pnew(&Blob::of_size(i, 2048)).unwrap())
                .collect();
            txn.commit().unwrap();
            ptrs
        };
        db.checkpoint().unwrap();
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("scattered-reads", pool_pages), |b| {
            b.iter(|| {
                // Stride through the population to defeat small pools.
                i = (i + 97) % ptrs.len();
                let mut snap = db.snapshot();
                snap.deref(&ptrs[i]).unwrap()
            })
        });
        let stats = db.buffer_stats();
        eprintln!(
            "ablation_buffer_pool: pages={pool_pages} hits={} misses={} evictions={}",
            stats.hits, stats.misses, stats.evictions
        );
    }
    group.finish();
}

fn bench_delta_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_delta_block");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    let size = 16 * 1024;
    let base: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    let mut target = base.clone();
    for k in 0..160 {
        let idx = (k * 101) % size;
        target[idx] ^= 0x5A;
    }
    eprintln!("\nablation_delta_block: delta size by block size (16 KiB object, 160 edits)");
    for block in [8usize, 32, 128, 512] {
        let d = diff_with_block(&base, &target, block);
        eprintln!(
            "  block={block:<5} encoded={:<8} literals={}",
            d.encoded_size(),
            d.literal_bytes()
        );
        group.bench_function(BenchmarkId::new("diff", block), |b| {
            b.iter(|| diff_with_block(&base, &target, block))
        });
        group.bench_function(BenchmarkId::new("apply", block), |b| {
            b.iter(|| apply(&base, &d).unwrap())
        });
    }
    group.finish();
}

fn bench_wal_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_wal_mode");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    eprintln!("\nablation_wal_mode: WAL bytes per small-update commit");
    for (label, deltas) in [("delta-records", true), ("full-images", false)] {
        let dir = TempDir::new("ab-wal");
        let options = DatabaseOptions {
            storage: StoreOptions {
                sync_on_commit: false,
                wal_deltas: deltas,
                ..StoreOptions::default()
            },
            chain: None,
        };
        let db = Database::create(dir.file("db"), options).unwrap();
        let ptr = {
            let mut txn = db.begin();
            let p = txn.pnew(&Blob::of_size(1, 1024)).unwrap();
            txn.commit().unwrap();
            p
        };
        // Measure WAL growth across a burst of small updates.
        let before = db.wal_len();
        for _ in 0..32 {
            let mut txn = db.begin();
            txn.update(&ptr, |b| b.id = b.id.wrapping_add(1)).unwrap();
            txn.commit().unwrap();
        }
        eprintln!(
            "  {label:<14} {} bytes / commit",
            (db.wal_len() - before) / 32
        );
        group.bench_function(BenchmarkId::new("small-update-commit", label), |b| {
            b.iter(|| {
                let mut txn = db.begin();
                txn.update(&ptr, |blob| blob.id = blob.id.wrapping_add(1))
                    .unwrap();
                txn.commit().unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_btree_fanout,
    bench_buffer_pool,
    bench_delta_block,
    bench_wal_mode
);
criterion_main!(benches);
