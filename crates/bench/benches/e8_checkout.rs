//! E8 — Checkout/checkin as a policy costs only its primitive parts.
//!
//! Claim (§7): ORION's public/private architecture needs no kernel
//! support — a checkout is a read + pnew, a checkin is a newversion +
//! put.  Series: checkout, edit, checkin, and the full round trip, at
//! object sizes 256 B and 16 KiB.

use bench::{bench_db, Blob, TempDir};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_policies::checkout::Workspace;
use std::time::Duration;

fn bench_checkout(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_checkout");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    for size in [256usize, 16 * 1024] {
        let dir = TempDir::new("e8");
        let public = bench_db(&dir, "public.db");
        let part = {
            let mut txn = public.begin();
            let p = txn.pnew(&Blob::of_size(1, size)).unwrap();
            txn.commit().unwrap();
            p
        };
        let ws = Workspace::create(&public, dir.file("private.db")).unwrap();

        group.bench_function(BenchmarkId::new("checkout", size), |b| {
            b.iter(|| ws.checkout(part).unwrap())
        });

        let working = ws.checkout(part).unwrap();
        group.bench_function(BenchmarkId::new("edit-private", size), |b| {
            b.iter(|| {
                ws.edit(working, |blob: &mut Blob| {
                    blob.data[0] = blob.data[0].wrapping_add(1)
                })
                .unwrap()
            })
        });

        group.bench_function(BenchmarkId::new("checkin", size), |b| {
            b.iter(|| ws.checkin(working).unwrap())
        });

        group.bench_function(BenchmarkId::new("full-round-trip", size), |b| {
            b.iter(|| {
                let w = ws.checkout(part).unwrap();
                ws.edit(w, |blob: &mut Blob| blob.id += 1).unwrap();
                ws.checkin(w).unwrap();
                ws.discard(w).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkout);
criterion_main!(benches);
