//! E7 — Delta storage of derived-from chains (§2's SCCS/RCS remark).
//!
//! Ode stores versions whole; deltas trade materialization time for
//! space.  Series: (a) append cost per scheme, (b) materializing the
//! *latest* version (Ode's hot path) and the *oldest* version, at chain
//! lengths 4–64; space totals are printed as a table.

use bench::TempDir;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_delta::{full_copy_size, ForwardChain, ReverseChain};
use std::time::Duration;

/// A CAD-like evolution: 8 KiB object, each version edits ~1%.
fn evolution(n: usize) -> Vec<Vec<u8>> {
    let size = 8 * 1024;
    let mut state: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    let mut out = vec![state.clone()];
    for step in 1..n {
        for k in 0..80 {
            let idx = (step * 97 + k * 53) % size;
            state[idx] = state[idx].wrapping_add(1);
        }
        out.push(state.clone());
    }
    out
}

fn bench_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_delta");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    eprintln!("\ne7_delta: space (bytes) by scheme and chain length");
    for len in [4usize, 16, 64] {
        let versions = evolution(len);

        // Space table.
        let mut fwd = ForwardChain::new(versions[0].clone());
        let mut rev = ReverseChain::new(versions[0].clone());
        for v in &versions[1..] {
            fwd.push(v).unwrap();
            rev.push(v);
        }
        eprintln!(
            "  len={len:<4} full-copy={:<9} forward-delta={:<9} reverse-delta={:<9}",
            full_copy_size(&versions),
            fwd.encoded_size(),
            rev.encoded_size()
        );

        // Append cost.
        group.bench_function(BenchmarkId::new("append-forward", len), |b| {
            b.iter_with_large_drop(|| {
                let mut c = ForwardChain::new(versions[0].clone());
                for v in &versions[1..] {
                    c.push(v).unwrap();
                }
                c
            })
        });
        group.bench_function(BenchmarkId::new("append-reverse", len), |b| {
            b.iter_with_large_drop(|| {
                let mut c = ReverseChain::new(versions[0].clone());
                for v in &versions[1..] {
                    c.push(v);
                }
                c
            })
        });

        // Materialization: latest (Ode's common case) and oldest.
        group.bench_function(BenchmarkId::new("latest-forward", len), |b| {
            b.iter(|| fwd.latest().unwrap())
        });
        group.bench_function(BenchmarkId::new("latest-reverse", len), |b| {
            b.iter(|| rev.latest().to_vec())
        });
        group.bench_function(BenchmarkId::new("oldest-forward", len), |b| {
            b.iter(|| fwd.materialize(0).unwrap())
        });
        group.bench_function(BenchmarkId::new("oldest-reverse", len), |b| {
            b.iter(|| rev.materialize(0).unwrap())
        });

        let _dir = TempDir::new("e7"); // keep scratch layout uniform
    }
    group.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
