//! E2 — Generic vs. specific reference cost.
//!
//! Claim (§3): resolving an object id to the latest version is a single
//! extra table hop, independent of how many versions the object has —
//! there is no generic-header chain to walk.  Series: `deref`
//! (ObjPtr, late binding) vs `deref_v` (VersionPtr, early binding)
//! across history lengths 1, 16, 256 and 1024.

use bench::{bench_db, Blob, TempDir};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_references(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_references");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    for history in [1usize, 16, 256, 1024] {
        let dir = TempDir::new("e2");
        let db = bench_db(&dir, "db");
        let (ptr, pinned) = {
            let mut txn = db.begin();
            let ptr = txn.pnew(&Blob::of_size(1, 256)).unwrap();
            for _ in 1..history {
                txn.newversion(&ptr).unwrap();
            }
            let pinned = txn.current_version(&ptr).unwrap();
            txn.commit().unwrap();
            (ptr, pinned)
        };

        group.bench_function(BenchmarkId::new("generic-objptr", history), |b| {
            b.iter(|| {
                let mut snap = db.snapshot();
                snap.deref(&ptr).unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("specific-versionptr", history), |b| {
            b.iter(|| {
                let mut snap = db.snapshot();
                snap.deref_v(&pinned).unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("pin-current-version", history), |b| {
            b.iter(|| {
                let mut snap = db.snapshot();
                snap.current_version(&ptr).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_references);
criterion_main!(benches);
