//! E9 — Substrate durability: recovery time is linear in WAL size.
//!
//! After a crash (no checkpoint), reopening replays every committed
//! page image.  Series: `Database::open` after K committed
//! transactions, K ∈ {10, 100, 500}; WAL sizes are printed alongside.

use bench::{Blob, TempDir};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ode::{Database, DatabaseOptions};
use std::time::Duration;

/// Build a database with `txns` committed transactions and "crash" it
/// (leak the handle so no shutdown checkpoint runs). Returns the db
/// file path.
fn crashed_db(dir: &TempDir, txns: usize) -> std::path::PathBuf {
    let path = dir.file(&format!("crash-{txns}-{}.db", rand_suffix()));
    let db = Database::create(&path, DatabaseOptions::no_sync()).unwrap();
    // Raise the auto-checkpoint threshold is unnecessary: default is
    // 16 MiB, far above what these transactions write.
    for i in 0..txns {
        let mut txn = db.begin();
        txn.pnew(&Blob::of_size(i as u64, 512)).unwrap();
        txn.commit().unwrap();
    }
    std::mem::forget(db);
    path
}

fn rand_suffix() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    N.fetch_add(1, Ordering::Relaxed)
}

fn wal_size(path: &std::path::Path) -> u64 {
    let mut wal = path.to_path_buf().into_os_string();
    wal.push(".wal");
    std::fs::metadata(std::path::PathBuf::from(wal))
        .map(|m| m.len())
        .unwrap_or(0)
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_recovery");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    eprintln!("\ne9_recovery: WAL bytes replayed per configuration");
    for txns in [10usize, 100, 500] {
        let dir = TempDir::new("e9");
        let probe = crashed_db(&dir, txns);
        eprintln!("  txns={txns:<6} wal_bytes={}", wal_size(&probe));

        group.bench_function(BenchmarkId::new("open-after-crash", txns), |b| {
            b.iter_batched(
                || crashed_db(&dir, txns),
                |path| {
                    let db = Database::open(&path, DatabaseOptions::no_sync()).unwrap();
                    // Recovery done; verify one object decodes.
                    let mut snap = db.snapshot();
                    assert_eq!(snap.objects::<Blob>().unwrap().len(), txns);
                    drop(snap);
                    db
                },
                BatchSize::PerIteration,
            )
        });

        // Baseline: open after a clean shutdown (checkpointed, no WAL).
        group.bench_function(BenchmarkId::new("open-clean", txns), |b| {
            b.iter_batched(
                || {
                    let path = crashed_db(&dir, txns);
                    // Recover + checkpoint once so the WAL is empty.
                    let db = Database::open(&path, DatabaseOptions::no_sync()).unwrap();
                    db.checkpoint().unwrap();
                    drop(db);
                    path
                },
                |path| Database::open(&path, DatabaseOptions::no_sync()).unwrap(),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
