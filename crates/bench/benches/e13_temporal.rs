//! E13 — temporal ("as-of") queries on historical databases.
//!
//! §2 motivates automatic temporal ordering with accounting/legal/
//! financial systems "that must access the past states of the
//! database".  `version_as_of` walks the temporal chain backwards from
//! the latest version, so its cost is the *distance into the past*, not
//! the total history length.  Series: as-of lookups at fixed distances
//! from the present, across history lengths.

use std::time::Duration;

use bench::{bench_db, Blob, TempDir};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_temporal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_temporal");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    for history in [64usize, 1024, 8192] {
        let dir = TempDir::new("e13");
        let db = bench_db(&dir, "db");
        let (ptr, stamps) = {
            let mut txn = db.begin();
            let ptr = txn.pnew(&Blob::of_size(0, 128)).unwrap();
            let mut stamps = vec![txn.now_stamp().unwrap()];
            for _ in 1..history {
                txn.newversion(&ptr).unwrap();
                stamps.push(txn.now_stamp().unwrap());
            }
            txn.commit().unwrap();
            (ptr, stamps)
        };

        // Distance 1 (yesterday), mid-history, and the very beginning.
        for (label, idx) in [
            ("recent", history - 2),
            ("mid", history / 2),
            ("oldest", 0usize),
        ] {
            let stamp = stamps[idx];
            group.bench_function(BenchmarkId::new(format!("asof-{label}"), history), |b| {
                b.iter(|| {
                    let mut snap = db.snapshot();
                    snap.version_as_of(&ptr, stamp).unwrap().unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_temporal);
criterion_main!(benches);
