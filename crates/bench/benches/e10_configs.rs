//! E10 — Configurations: static vs. dynamic binding (§5).
//!
//! A representation built from dynamic bindings follows component
//! evolution automatically (one extra latest-lookup per resolve); a
//! frozen/static one pins versions (direct version fetch).  Series:
//! resolve cost for both binding kinds as components evolve, and the
//! freeze cost as a function of component count.

use bench::{bench_db, Blob, TempDir};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_policies::config::ConfigHandle;
use std::time::Duration;

fn bench_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_configs");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    // Resolve cost: static vs dynamic, with evolved components.
    {
        let dir = TempDir::new("e10-resolve");
        let db = bench_db(&dir, "db");
        let mut txn = db.begin();
        let part = txn.pnew(&Blob::of_size(1, 512)).unwrap();
        let v0 = txn.current_version(&part).unwrap();
        for _ in 0..64 {
            txn.newversion(&part).unwrap();
        }
        let cfg = ConfigHandle::create(&mut txn, "rep").unwrap();
        cfg.bind_static(&mut txn, "pinned", v0).unwrap();
        cfg.bind_dynamic(&mut txn, "live", part).unwrap();
        txn.commit().unwrap();

        group.bench_function(BenchmarkId::new("resolve", "static"), |b| {
            b.iter(|| {
                let mut snap = db.snapshot();
                cfg.resolve_in::<Blob>(&mut snap, "pinned").unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("resolve", "dynamic"), |b| {
            b.iter(|| {
                let mut snap = db.snapshot();
                cfg.resolve_in::<Blob>(&mut snap, "live").unwrap()
            })
        });
    }

    // Freeze cost by component count.
    for components in [4usize, 32, 128] {
        let dir = TempDir::new("e10-freeze");
        let db = bench_db(&dir, "db");
        let cfg = {
            let mut txn = db.begin();
            let cfg = ConfigHandle::create(&mut txn, "rep").unwrap();
            for i in 0..components {
                let part = txn.pnew(&Blob::of_size(i as u64, 128)).unwrap();
                cfg.bind_dynamic(&mut txn, &format!("part-{i}"), part)
                    .unwrap();
            }
            txn.commit().unwrap();
            cfg
        };
        group.bench_function(BenchmarkId::new("freeze", components), |b| {
            b.iter(|| {
                let mut txn = db.begin();
                cfg.freeze(&mut txn).unwrap();
                txn.commit().unwrap();
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_configs);
criterion_main!(benches);
