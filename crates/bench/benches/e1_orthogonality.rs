//! E1 — Version orthogonality is pay-as-you-go.
//!
//! Claim (§2/§3): in Ode, an object that never uses versions costs no
//! more than in a system without versioning, whereas ORION-style
//! designs route *every* reference through a generic object header
//! (one extra record fetch), and IRIS additionally charges a copying
//! transformation the first time an old object is versioned.
//!
//! Series: create / read / update of single-version objects under the
//! Ode model vs. the Orion model (versionable and unversioned
//! variants), plus the one-off IRIS transformation cost.

use bench::TempDir;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_baselines::{OdeModel, OrionModel, VersionModel};
use std::time::Duration;

const BODY: &[u8] = &[7u8; 256];

fn with_objects(model: &mut dyn VersionModel, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| model.create(BODY).expect("create"))
        .collect()
}

fn bench_orthogonality(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_orthogonality");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    // -- create -------------------------------------------------------------
    let dir = TempDir::new("e1-create");
    let mut ode = OdeModel::create(&dir.file("ode.db")).unwrap();
    let mut orion = OrionModel::create(&dir.file("orion.db")).unwrap();
    group.bench_function(BenchmarkId::new("create", "ode"), |b| {
        b.iter(|| ode.create(BODY).unwrap())
    });
    group.bench_function(BenchmarkId::new("create", "orion-versionable"), |b| {
        b.iter(|| orion.create(BODY).unwrap())
    });
    group.bench_function(BenchmarkId::new("create", "orion-unversioned"), |b| {
        b.iter(|| orion.create_unversioned(BODY).unwrap())
    });
    drop((ode, orion, dir));

    // -- read (the steady-state cost the claim is about) --------------------
    let dir = TempDir::new("e1-read");
    let mut ode = OdeModel::create(&dir.file("ode.db")).unwrap();
    let mut orion = OrionModel::create(&dir.file("orion.db")).unwrap();
    let ode_objs = with_objects(&mut ode, 256);
    let orion_objs = with_objects(&mut orion, 256);
    let orion_plain: Vec<u64> = (0..256)
        .map(|_| orion.create_unversioned(BODY).unwrap())
        .collect();
    let mut i = 0usize;
    group.bench_function(BenchmarkId::new("read", "ode"), |b| {
        b.iter(|| {
            i = (i + 1) % ode_objs.len();
            ode.read_current(ode_objs[i]).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("read", "orion-header-indirect"), |b| {
        b.iter(|| {
            i = (i + 1) % orion_objs.len();
            orion.read_current(orion_objs[i]).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("read", "orion-unversioned"), |b| {
        b.iter(|| {
            i = (i + 1) % orion_plain.len();
            orion.read_current(orion_plain[i]).unwrap()
        })
    });

    // -- update -------------------------------------------------------------
    group.bench_function(BenchmarkId::new("update", "ode"), |b| {
        b.iter(|| {
            i = (i + 1) % ode_objs.len();
            ode.update_current(ode_objs[i], BODY).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("update", "orion-header-indirect"), |b| {
        b.iter(|| {
            i = (i + 1) % orion_objs.len();
            orion.update_current(orion_objs[i], BODY).unwrap()
        })
    });

    // -- the IRIS transformation (what orthogonality avoids) ----------------
    group.bench_function(BenchmarkId::new("first-versioning", "ode-free"), |b| {
        b.iter(|| {
            // Ode: versioning an old object is just newversion.
            let obj = ode.create(BODY).unwrap();
            ode.new_version(obj).unwrap()
        })
    });
    group.bench_function(
        BenchmarkId::new("first-versioning", "iris-transformation"),
        |b| {
            b.iter(|| {
                let obj = orion.create_unversioned(BODY).unwrap();
                orion.make_versionable(obj).unwrap();
                orion.new_version(obj).unwrap()
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_orthogonality);
criterion_main!(benches);
