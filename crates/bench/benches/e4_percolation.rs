//! E4 — "Small changes should have small impact": percolation cost.
//!
//! Claim (§2): the paper excludes version percolation from the kernel
//! because one `newversion` could trigger "the automatic creation of a
//! large number of versions of other objects".  We measure exactly
//! that: versioning one leaf of a composite design with percolation OFF
//! (Ode's default) vs. percolation ON (the policy), across composite
//! fan-outs.  The OFF series must stay flat; the ON series grows with
//! the ancestor count.

use bench::{bench_db, Blob, TempDir};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode::{Database, ObjPtr};
use ode_policies::percolate::RegistryHandle;
use std::time::Duration;

/// Build a linear composite chain: leaf ← c1 ← c2 ← … ← c_fanout.
fn build_composite(db: &Database, fanout: usize) -> (ObjPtr<Blob>, RegistryHandle) {
    let mut txn = db.begin();
    let leaf = txn.pnew(&Blob::of_size(0, 128)).unwrap();
    let reg = RegistryHandle::create(&mut txn).unwrap();
    let mut child = leaf;
    for i in 0..fanout {
        let parent = txn.pnew(&Blob::of_size(i as u64 + 1, 128)).unwrap();
        reg.add_edge(&mut txn, parent, child).unwrap();
        child = parent;
    }
    txn.commit().unwrap();
    (leaf, reg)
}

fn bench_percolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_percolation");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    for fanout in [1usize, 16, 64, 256] {
        let dir = TempDir::new("e4");
        let db = bench_db(&dir, "db");
        let (leaf, reg) = build_composite(&db, fanout);

        // Ode default: version the leaf only; ancestors untouched.
        group.bench_function(BenchmarkId::new("off-ode-default", fanout), |b| {
            b.iter(|| {
                let mut txn = db.begin();
                txn.newversion(&leaf).unwrap();
                txn.commit().unwrap();
            })
        });

        // Percolation policy: version the leaf, then every ancestor.
        group.bench_function(BenchmarkId::new("on-percolate", fanout), |b| {
            b.iter(|| {
                let mut txn = db.begin();
                txn.newversion(&leaf).unwrap();
                let created = reg.percolate(&mut txn, leaf).unwrap();
                assert_eq!(created.len(), fanout);
                txn.commit().unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_percolation);
criterion_main!(benches);
