//! E5 — Version models under branching design workloads.
//!
//! Claim (§2, §7): linear version models (GemStone/POSTGRES) "are
//! inadequate for design databases" — alternatives force whole-object
//! copies, whose cost grows with the alternative ratio, while tree
//! models pay a constant per-derivation price.  We replay identical
//! design-evolution traces (alternative ratio 0, 0.2, 0.5) through all
//! four models and report whole-trace time plus the number of extra
//! objects the linear model had to mint.

use std::collections::HashMap;

use bench::TempDir;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_baselines::{all_models, BranchOutcome, VersionModel};
use ode_workloads::{DesignOp, DesignTrace, DesignTraceConfig};
use std::time::Duration;

/// Replay a trace; returns the number of extra objects created by
/// forced copies (tree models: 0).
fn replay(model: &mut dyn VersionModel, trace: &DesignTrace) -> usize {
    // Trace-local object index → backend handle; per object, the list
    // of backend version handles in creation order.
    let mut objs: Vec<u64> = Vec::new();
    let mut vers: Vec<Vec<u64>> = Vec::new();
    let mut copies = 0usize;
    for op in &trace.ops {
        match op {
            DesignOp::Create { payload } => {
                let obj = model.create(payload).expect("create");
                objs.push(obj);
                vers.push(vec![model.current_version(obj).expect("ver")]);
            }
            DesignOp::Revise { obj } => {
                let v = model.new_version(objs[*obj]).expect("revise");
                vers[*obj].push(v);
            }
            DesignOp::Branch { obj, version } => {
                match model
                    .new_version_from(objs[*obj], vers[*obj][*version])
                    .expect("branch")
                {
                    BranchOutcome::Version(v) => vers[*obj].push(v),
                    BranchOutcome::NewObject(new_obj) => {
                        // The linear model minted a copy; track it so
                        // later version indices still resolve.
                        copies += 1;
                        let v = model.current_version(new_obj).expect("ver");
                        vers[*obj].push(v);
                    }
                }
            }
            DesignOp::Edit { obj, payload } => {
                model.update_current(objs[*obj], payload).expect("edit");
            }
            DesignOp::ReadCurrent { obj } => {
                model.read_current(objs[*obj]).expect("read");
            }
            DesignOp::ReadVersion { obj, version } => {
                // Version handles may live in a copied object for the
                // linear model; read_version takes the handle directly.
                model
                    .read_version(objs[*obj], vers[*obj][*version])
                    .expect("readv");
            }
        }
    }
    copies
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_models");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    let mut copy_report: HashMap<(String, String), usize> = HashMap::new();

    for alt_ratio in [0.0f64, 0.2, 0.5] {
        let trace = DesignTrace::generate(&DesignTraceConfig {
            objects: 40,
            operations: 400,
            alternative_ratio: alt_ratio,
            derive_ratio: 0.4,
            read_ratio: 0.4,
            seed: 7,
        });
        let label = format!("alt={alt_ratio}");

        for model_name in ["ode", "linear", "orion", "hbe", "delta"] {
            group.bench_function(BenchmarkId::new(model_name, &label), |b| {
                b.iter_with_large_drop(|| {
                    let dir = TempDir::new("e5");
                    let mut models = all_models(dir.path());
                    let model = models
                        .iter_mut()
                        .find(|m| m.name() == model_name)
                        .expect("model exists");
                    let copies = replay(model.as_mut(), &trace);
                    copy_report.insert((model_name.to_string(), label.clone()), copies);
                    (models, dir)
                })
            });
        }
    }
    group.finish();

    // The "who had to copy" table (shape evidence for EXPERIMENTS.md).
    let mut rows: Vec<_> = copy_report.into_iter().collect();
    rows.sort();
    eprintln!("\ne5_models: forced whole-object copies per trace");
    for ((model, label), copies) in rows {
        eprintln!("  {model:<8} {label:<10} copies={copies}");
    }
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
