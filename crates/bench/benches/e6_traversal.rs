//! E6 — Traversal primitives are cheap pointer chases.
//!
//! Claim (§4.5): `Dprevious`/`Tprevious` walk one stored link per step;
//! whole-chain walks are linear in depth with a small constant.
//! Series: per-step cost of each operator, plus full-chain walks at
//! depths 100 / 1 000 / 10 000.

use bench::{bench_db, Blob, TempDir};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_traversal");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    for depth in [100usize, 1000, 10_000] {
        let dir = TempDir::new("e6");
        let db = bench_db(&dir, "db");
        let (ptr, tip) = {
            let mut txn = db.begin();
            let ptr = txn.pnew(&Blob::of_size(0, 64)).unwrap();
            let mut tip = txn.current_version(&ptr).unwrap();
            for _ in 1..depth {
                tip = txn.newversion_from(&tip).unwrap();
            }
            txn.commit().unwrap();
            (ptr, tip)
        };

        group.bench_function(BenchmarkId::new("dprevious-step", depth), |b| {
            b.iter(|| {
                let mut snap = db.snapshot();
                snap.dprevious(&tip).unwrap()
            })
        });

        group.bench_function(BenchmarkId::new("dprevious-full-walk", depth), |b| {
            b.iter(|| {
                let mut snap = db.snapshot();
                let mut cur = tip;
                let mut steps = 0usize;
                while let Some(prev) = snap.dprevious(&cur).unwrap() {
                    cur = prev;
                    steps += 1;
                }
                assert_eq!(steps, depth - 1);
            })
        });

        group.bench_function(BenchmarkId::new("tprevious-full-walk", depth), |b| {
            b.iter(|| {
                let mut snap = db.snapshot();
                let mut cur = tip;
                let mut steps = 0usize;
                while let Some(prev) = snap.tprevious(&cur).unwrap() {
                    cur = prev;
                    steps += 1;
                }
                assert_eq!(steps, depth - 1);
            })
        });

        group.bench_function(BenchmarkId::new("derivation-path", depth), |b| {
            b.iter(|| {
                let mut snap = db.snapshot();
                let path = snap.derivation_path(&tip).unwrap();
                assert_eq!(path.len(), depth);
            })
        });

        let _ = ptr;
    }
    group.finish();
}

criterion_group!(benches, bench_traversal);
criterion_main!(benches);
