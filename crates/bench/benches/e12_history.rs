//! E12 — Version-history queries vs. history length (§4.4/§4.5).
//!
//! `version_history` walks the temporal chain (linear in length);
//! `derivation_leaves` additionally inspects each version's children
//! list; `version_count` is O(1) (stored on the object record).
//! Series: histories of 10 – 10 000 versions.

use bench::{bench_db, Blob, TempDir};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_history(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_history");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    for len in [10usize, 100, 1000, 10_000] {
        let dir = TempDir::new("e12");
        let db = bench_db(&dir, "db");
        let ptr = {
            let mut txn = db.begin();
            let ptr = txn.pnew(&Blob::of_size(0, 64)).unwrap();
            for i in 1..len {
                if i % 5 == 0 {
                    // Sprinkle alternatives so leaves > 1.
                    let history = txn.version_history(&ptr).unwrap();
                    let base = history[history.len() / 2];
                    txn.newversion_from(&base).unwrap();
                } else {
                    txn.newversion(&ptr).unwrap();
                }
            }
            txn.commit().unwrap();
            ptr
        };

        group.bench_function(BenchmarkId::new("version-history-scan", len), |b| {
            b.iter(|| {
                let mut snap = db.snapshot();
                let h = snap.version_history(&ptr).unwrap();
                assert_eq!(h.len(), len);
            })
        });

        group.bench_function(BenchmarkId::new("derivation-leaves", len), |b| {
            b.iter(|| {
                let mut snap = db.snapshot();
                snap.derivation_leaves(&ptr).unwrap()
            })
        });

        group.bench_function(BenchmarkId::new("version-count-O1", len), |b| {
            b.iter(|| {
                let mut snap = db.snapshot();
                assert_eq!(snap.version_count(&ptr).unwrap(), len as u64);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_history);
criterion_main!(benches);
