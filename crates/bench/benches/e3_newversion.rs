//! E3 — `newversion` cost scales with object size, not history length.
//!
//! Claim (§4.2): deriving a version copies the base state and splices a
//! constant number of graph links; nothing touches the rest of the
//! history.  Contrast series: the ENCORE (HBE) model rewrites its
//! Version-Set record on every derivation, so *its* cost grows with
//! history length.
//!
//! Series: newversion across object sizes 64 B – 64 KiB at fixed
//! history, and across histories 1 – 1024 at fixed size, for Ode and
//! HBE.

use bench::TempDir;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_baselines::{HbeModel, OdeModel, VersionModel};
use std::time::Duration;

fn payload(size: usize) -> Vec<u8> {
    (0..size).map(|i| (i % 251) as u8).collect()
}

fn bench_newversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_newversion");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    // Sweep object size at history length 1.
    for size in [64usize, 1024, 16 * 1024, 64 * 1024] {
        let dir = TempDir::new("e3-size");
        let mut ode = OdeModel::create(&dir.file("ode.db")).unwrap();
        let obj = ode.create(&payload(size)).unwrap();
        group.bench_function(BenchmarkId::new("ode-by-size", size), |b| {
            b.iter(|| ode.new_version(obj).unwrap())
        });
    }

    // Sweep pre-existing history length at fixed 1 KiB size.
    for history in [1usize, 64, 256, 1024] {
        let dir = TempDir::new("e3-hist");
        let mut ode = OdeModel::create(&dir.file("ode.db")).unwrap();
        let obj = ode.create(&payload(1024)).unwrap();
        for _ in 1..history {
            ode.new_version(obj).unwrap();
        }
        group.bench_function(BenchmarkId::new("ode-by-history", history), |b| {
            b.iter(|| ode.new_version(obj).unwrap())
        });

        let mut hbe = HbeModel::create(&dir.file("hbe.db")).unwrap();
        let hobj = hbe.create(&payload(1024)).unwrap();
        for _ in 1..history {
            hbe.new_version(hobj).unwrap();
        }
        group.bench_function(BenchmarkId::new("hbe-by-history", history), |b| {
            b.iter(|| hbe.new_version(hobj).unwrap())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_newversion);
criterion_main!(benches);
