//! E11 — Trigger (change-notification) overhead is opt-in.
//!
//! Claim (§2): Ode ships triggers instead of a built-in notification
//! facility, so programs that don't use notification pay nothing.
//! Series: update throughput with 0 / 1 / 16 / 64 registered triggers
//! on the updated object.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bench::{bench_db, Blob, TempDir};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_triggers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_triggers");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    for triggers in [0usize, 1, 16, 64] {
        let dir = TempDir::new("e11");
        let db = bench_db(&dir, "db");
        let part = {
            let mut txn = db.begin();
            let p = txn.pnew(&Blob::of_size(1, 256)).unwrap();
            txn.commit().unwrap();
            p
        };
        let fired = Arc::new(AtomicU64::new(0));
        for _ in 0..triggers {
            let f = Arc::clone(&fired);
            db.on_object(part, move |_| {
                f.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(db.trigger_count(part), triggers);

        group.bench_function(BenchmarkId::new("update-commit", triggers), |b| {
            b.iter(|| {
                let mut txn = db.begin();
                txn.update(&part, |blob| blob.id = blob.id.wrapping_add(1))
                    .unwrap();
                txn.commit().unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_triggers);
criterion_main!(benches);
