//! Quickstart: the paper's core operations in ~60 lines.
//!
//! Run with: `cargo run -p bench --example quickstart`

use ode_codec::{impl_persist_struct, impl_type_name};

#[derive(Debug, Clone, PartialEq)]
struct Part {
    name: String,
    weight: u32,
}
impl_persist_struct!(Part { name, weight });
impl_type_name!(Part = "quickstart/Part");

fn main() -> ode::Result<()> {
    let mut db = ode::testutil::tempdb();

    let mut txn = db.begin();

    // pnew: a persistent object; its first version exists immediately.
    let p = txn.pnew(&Part {
        name: "alu".into(),
        weight: 7,
    })?;
    println!("created {p} with version {}", txn.current_version(&p)?);

    // Pin the current version (generic → specific reference), then
    // derive a new version and edit it.
    let v0 = txn.current_version(&p)?;
    let v1 = txn.newversion(&p)?;
    txn.update(&p, |part| part.weight = 9)?;

    // Generic reference (object id): late binding — sees the latest.
    let latest = txn.deref(&p)?;
    println!(
        "through ObjPtr      : weight = {} (bound to {})",
        latest.weight,
        latest.version()
    );

    // Specific reference (version id): early binding — pinned.
    let old = txn.deref_v(&v0)?;
    println!(
        "through VersionPtr  : weight = {} (version {v0})",
        old.weight
    );

    // The relationships are maintained automatically.
    println!("Dprevious(v1)       : {:?}", txn.dprevious(&v1)?);
    println!("Tprevious(v1)       : {:?}", txn.tprevious(&v1)?);
    println!("history             : {:?}", txn.version_history(&p)?);

    // An alternative: derive from v0 while v1 exists.
    let v2 = txn.newversion_from(&v0)?;
    println!("alternatives of v0  : {:?}", txn.dnext(&v0)?);
    println!("derivation leaves   : {:?}", txn.derivation_leaves(&p)?);

    // pdelete on a version removes just that version.
    txn.pdelete_version(v2)?;
    println!("after pdelete v2    : {:?}", txn.version_history(&p)?);

    txn.commit()?;

    // Objects persist across invocations: reopen and look again.
    db.reopen();
    let mut snap = db.snapshot();
    println!(
        "after reopen        : weight = {} in {} versions",
        snap.deref(&p)?.weight,
        snap.version_count(&p)?
    );

    Ok(())
}
