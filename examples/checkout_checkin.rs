//! ORION-style checkout/checkin (§7), built purely from Ode primitives:
//! a designer checks a part out of the public database into a private
//! workspace, iterates there, and checks the result back in as a new
//! public version.
//!
//! Run with: `cargo run -p bench --example checkout_checkin`

use ode_codec::{impl_persist_struct, impl_type_name};
use ode_policies::checkout::Workspace;
use ode_policies::environment::{EnvHandle, VersionState};

#[derive(Debug, Clone, PartialEq)]
struct Layout {
    name: String,
    polygons: u32,
    drc_clean: bool,
}
impl_persist_struct!(Layout {
    name,
    polygons,
    drc_clean
});
impl_type_name!(Layout = "checkout/Layout");

fn main() -> ode::Result<()> {
    let public = ode::testutil::tempdb();
    let layout = {
        let mut txn = public.begin();
        let p = txn.pnew(&Layout {
            name: "alu-core".into(),
            polygons: 12_000,
            drc_clean: true,
        })?;
        txn.commit()?;
        p
    };

    // A released-version environment guards the public history.
    let env = {
        let mut txn = public.begin();
        let env = EnvHandle::create(&mut txn, "released")?;
        let v0 = txn.current_version(&layout)?;
        env.track(&mut txn, v0)?;
        env.transition(&mut txn, v0, VersionState::Valid)?;
        env.transition(&mut txn, v0, VersionState::Frozen)?;
        txn.commit()?;
        env
    };

    // Designer workspace: checkout → private edits → checkin. The
    // private database gets its own scratch path.
    let private_path = ode::testutil::fresh_path();
    let ws = Workspace::create(&public, &private_path)?;
    let working = ws.checkout(layout)?;
    println!("checked out {working} into the private database");

    for round in 0..3 {
        ws.edit(working, |l: &mut Layout| {
            l.polygons += 500;
            l.drc_clean = round == 2; // only the last iteration is clean
        })?;
    }
    let new_public = ws.checkin(working)?;
    println!("checked in as public version {new_public}");

    // Track + validate the new public version in the environment.
    {
        let mut txn = public.begin();
        env.track(&mut txn, new_public)?;
        let ok = txn.deref_v(&new_public)?.drc_clean;
        let target = if ok {
            VersionState::Valid
        } else {
            VersionState::Invalid
        };
        env.transition(&mut txn, new_public, target)?;
        txn.commit()?;
    }

    // Report the public history and environment partitions.
    let mut txn = public.begin();
    println!("\npublic history of {layout}:");
    for v in txn.version_history(&layout)? {
        let state = txn.deref_v(&v)?;
        let env_state = env.state_of(&mut txn, v)?;
        println!(
            "  {v}: polygons={} drc_clean={} env={env_state:?}",
            state.polygons, state.drc_clean
        );
    }
    println!(
        "frozen partition: {:?}",
        env.partition(&mut txn, VersionState::Frozen)?
    );
    println!(
        "valid partition : {:?}",
        env.partition(&mut txn, VersionState::Valid)?
    );
    txn.commit()?;

    drop(ws);
    let _ = std::fs::remove_file(&private_path);
    let mut wal = private_path.into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    Ok(())
}
