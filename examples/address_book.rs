//! The paper's §4.3 address-book example: generic references keep
//! seeing people's *current* addresses while the version history keeps
//! every past address reachable — a small historical database.
//!
//! Run with: `cargo run -p bench --example address_book`

use ode::ObjPtr;
use ode_codec::{impl_persist_struct, impl_type_name};

#[derive(Debug, Clone, PartialEq)]
struct Person {
    name: String,
    address: String,
}
impl_persist_struct!(Person { name, address });
impl_type_name!(Person = "address-book/Person");

/// The book stores *generic* references (object ids): that is the whole
/// point — "an address-book object that keeps track of current
/// addresses requires references to the latest versions of person
/// objects".
#[derive(Debug, Clone, PartialEq)]
struct AddressBook {
    title: String,
    people: Vec<ObjPtr<Person>>,
}
impl_persist_struct!(AddressBook { title, people });
impl_type_name!(AddressBook = "address-book/AddressBook");

fn main() -> ode::Result<()> {
    let db = ode::testutil::tempdb();

    let mut txn = db.begin();
    let alice = txn.pnew(&Person {
        name: "alice".into(),
        address: "1 Elm St".into(),
    })?;
    let bob = txn.pnew(&Person {
        name: "bob".into(),
        address: "2 Oak Ave".into(),
    })?;
    let book = txn.pnew(&AddressBook {
        title: "team".into(),
        people: vec![alice, bob],
    })?;

    // People move. Each move is a new version, so the old address is
    // history, not garbage.
    txn.newversion(&alice)?;
    txn.update(&alice, |p| p.address = "9 Birch Rd".into())?;
    txn.newversion(&alice)?;
    txn.update(&alice, |p| p.address = "4 Cedar Ln".into())?;
    txn.newversion(&bob)?;
    txn.update(&bob, |p| p.address = "7 Pine Ct".into())?;

    // Current addresses through the book's generic references.
    println!("current addresses:");
    let people = txn.deref(&book)?.people.clone();
    for ptr in &people {
        let person = txn.deref(ptr)?;
        println!("  {:<6} {}", person.name, person.address);
    }

    // Full address history per person, via the temporal chain.
    println!("\naddress history:");
    for ptr in &people {
        let history = txn.version_history(ptr)?;
        let name = txn.deref(ptr)?.name.clone();
        for (i, v) in history.iter().enumerate() {
            let at = txn.deref_v(v)?;
            println!("  {name:<6} v{i}: {}", at.address);
        }
    }

    // An extent query: everyone in the database, whether or not a book
    // references them.
    println!(
        "\nextent of Person: {} objects",
        txn.objects::<Person>()?.len()
    );
    txn.commit()?;

    Ok(())
}
