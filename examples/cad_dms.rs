//! The paper's §5 scenario end to end: an ALU design with schematic /
//! fault / timing representations evolving through versions.
//!
//! Run with: `cargo run -p bench --example cad_dms`

use ode_dms::{bootstrap, AluDesign, Cell};

fn main() -> ode::Result<()> {
    let mut db = ode::testutil::tempdb();

    // 1. Initial design state (§5): three data objects, three
    //    representation configurations.
    let design = bootstrap(&db, "alu-32")?;
    let mut txn = db.begin();
    let chip = design.chip(&mut txn)?;
    println!(
        "initial state: {} cells, {} vectors, {} timing commands",
        design
            .schematic_of(&mut txn, chip.schematic_rep)?
            .cells
            .len(),
        design.vectors_of(&mut txn, chip.fault_rep)?.vectors.len(),
        txn.deref(&chip.timing_cmds)?.commands.len(),
    );

    // 2. Release the timing representation at this state (freeze its
    //    configuration — every binding becomes a pinned version).
    design.release(&mut txn, chip.timing_rep)?;
    println!("released timing representation (configuration frozen)");

    // 3. The design evolves: revise the main line twice, then branch
    //    an alternative off the original version, and extend the test
    //    vectors.
    let v0 = txn.current_version(&chip.schematic)?;
    design.revise_schematic(&mut txn, |s| {
        s.cells.push(Cell {
            kind: "INV".into(),
            x: 30,
            y: 0,
        });
    })?;
    design.revise_schematic(&mut txn, |s| {
        s.cells.push(Cell {
            kind: "BUF".into(),
            x: 30,
            y: 8,
        });
    })?;
    println!(
        "after 2 revisions  : live schematic rep sees {} cells, frozen timing rep {}",
        design
            .schematic_of(&mut txn, chip.schematic_rep)?
            .cells
            .len(),
        design.schematic_of(&mut txn, chip.timing_rep)?.cells.len(),
    );

    let alt = design.branch_schematic(&mut txn, v0, |s| {
        s.cells[0].kind = "NOR2".into();
    })?;
    design.revise_vectors(&mut txn, vec![vec![0xAA], vec![0x55]])?;

    // 4. An object id binds to the latest *created* version — which is
    //    now the alternative. The derivation leaves distinguish the two
    //    design lines.
    println!(
        "after branching    : live schematic rep sees {} cells (the alternative is newest)",
        design
            .schematic_of(&mut txn, chip.schematic_rep)?
            .cells
            .len()
    );
    for leaf in txn.derivation_leaves(&chip.schematic)? {
        let state = txn.deref_v(&leaf)?;
        println!(
            "  leaf {leaf}: {} cells, first cell {}",
            state.cells.len(),
            state.cells[0].kind
        );
    }
    println!(
        "frozen timing rep  : {} cells (pinned at release)",
        design.schematic_of(&mut txn, chip.timing_rep)?.cells.len()
    );
    println!(
        "fault rep vectors  : {} (follows latest)",
        design.vectors_of(&mut txn, chip.fault_rep)?.vectors.len()
    );

    // 5. The version graph of the schematic.
    println!(
        "schematic versions : {} ({} derivation leaves)",
        txn.version_count(&chip.schematic)?,
        txn.derivation_leaves(&chip.schematic)?.len(),
    );
    println!("alternative {alt} derives from {:?}", txn.dprevious(&alt)?);
    txn.check_object(&chip.schematic)?;
    txn.commit()?;

    // 6. Reopen: the whole design state persists.
    db.reopen();
    let design = AluDesign::attach(design.ptr);
    let mut txn = db.begin();
    let chip = design.chip(&mut txn)?;
    println!(
        "after reopen       : {} schematic versions, frozen timing still sees {} cells",
        txn.version_count(&chip.schematic)?,
        design.schematic_of(&mut txn, chip.timing_rep)?.cells.len(),
    );
    txn.commit()?;

    Ok(())
}
