//! Historical-database usage (§2's accounting motivation): every change
//! versions the object, as-of queries recover any past state, and a
//! retention policy prunes history while respecting frozen milestones.
//!
//! Run with: `cargo run -p bench --example time_travel`

use ode_codec::{impl_persist_struct, impl_type_name};
use ode_policies::environment::{EnvHandle, VersionState};
use ode_policies::retention::RetentionPolicy;

#[derive(Debug, Clone, PartialEq)]
struct Ledger {
    account: String,
    balance: i64,
}
impl_persist_struct!(Ledger { account, balance });
impl_type_name!(Ledger = "time-travel/Ledger");

fn main() -> ode::Result<()> {
    let db = ode::testutil::tempdb();

    let mut txn = db.begin();
    let ledger = txn.pnew(&Ledger {
        account: "acme".into(),
        balance: 0,
    })?;

    // A year of monthly postings; capture a stamp after each quarter.
    let mut quarter_stamps = Vec::new();
    for month in 1..=12i64 {
        txn.newversion(&ledger)?;
        txn.update(&ledger, |l| l.balance += month * 100)?;
        if month % 3 == 0 {
            quarter_stamps.push((month, txn.now_stamp()?));
        }
    }

    println!("current balance : {}", txn.deref(&ledger)?.balance);
    for (month, stamp) in &quarter_stamps {
        let v = txn.version_as_of(&ledger, *stamp)?.expect("stamped state");
        println!(
            "as of month {month:>2}  : balance {}  (version {v})",
            txn.deref_v(&v)?.balance
        );
    }

    // Freeze the year-end close so it can never be pruned or edited.
    let year_end = txn.current_version(&ledger)?;
    let env = EnvHandle::create(&mut txn, "closings")?;
    env.track(&mut txn, year_end)?;
    env.transition(&mut txn, year_end, VersionState::Valid)?;
    env.transition(&mut txn, year_end, VersionState::Frozen)?;

    // Prune: keep the last 4 versions plus anything frozen.
    let pruned = RetentionPolicy {
        keep_last: 4,
        keep_branch_points: true,
    }
    .apply(&mut txn, &ledger, Some(&env))?;
    println!(
        "retention pruned {} versions; {} remain",
        pruned.len(),
        txn.version_count(&ledger)?
    );

    // Old quarter states are gone, recent ones still resolve.
    let (q1, q1_stamp) = quarter_stamps[0];
    let resolved = txn.version_as_of(&ledger, q1_stamp)?;
    println!(
        "as of month {q1:>2}  : {}",
        match resolved {
            // After pruning, the as-of query binds to the oldest
            // surviving version instead.
            Some(v) => format!("now resolves to surviving version {v}"),
            None => "no surviving version that old".into(),
        }
    );
    let (q4, q4_stamp) = quarter_stamps[3];
    let v = txn
        .version_as_of(&ledger, q4_stamp)?
        .expect("year end kept");
    println!(
        "as of month {q4:>2}  : balance {} (frozen close)",
        txn.deref_v(&v)?.balance
    );
    txn.commit()?;

    Ok(())
}
