//! Soak: a large generated design-evolution trace replayed through the
//! public API, interleaved with crashes, reopens, checkpoints, and
//! `fsck`-grade invariant sweeps. Exercises every layer at once.

use std::collections::HashMap;

use ode::{Database, DatabaseOptions, ObjPtr, VersionPtr};
use ode_codec::{impl_persist_struct, impl_type_name};
use ode_workloads::{DesignOp, DesignTrace, DesignTraceConfig};

#[derive(Debug, Clone, PartialEq)]
struct Artifact {
    payload: Vec<u8>,
}
impl_persist_struct!(Artifact { payload });
impl_type_name!(Artifact = "soak/Artifact");

fn wal_of(path: &std::path::Path) -> std::path::PathBuf {
    let mut wal = path.to_path_buf().into_os_string();
    wal.push(".wal");
    std::path::PathBuf::from(wal)
}

#[test]
fn design_trace_soak_with_crashes() {
    let mut path = std::env::temp_dir();
    path.push(format!("ode-soak-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_of(&path));

    let trace = DesignTrace::generate(&DesignTraceConfig {
        objects: 30,
        operations: 600,
        alternative_ratio: 0.25,
        derive_ratio: 0.35,
        read_ratio: 0.4,
        seed: 0xBEEF,
    });

    let mut db = Database::create(&path, DatabaseOptions::default()).unwrap();
    // Trace-local object index → pointer; per object, versions in
    // creation order with the expected payload of each.
    let mut objs: Vec<ObjPtr<Artifact>> = Vec::new();
    let mut vers: Vec<Vec<VersionPtr<Artifact>>> = Vec::new();
    let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();

    let mut txn = db.begin();
    let mut ops_in_txn = 0usize;
    let mut committed_ops = 0usize;

    for (step, op) in trace.ops.iter().enumerate() {
        match op {
            DesignOp::Create { payload } => {
                let p = txn
                    .pnew(&Artifact {
                        payload: payload.clone(),
                    })
                    .unwrap();
                let v0 = txn.current_version(&p).unwrap();
                objs.push(p);
                vers.push(vec![v0]);
                expected.insert(v0.vid().0, payload.clone());
            }
            DesignOp::Revise { obj } => {
                let v = txn.newversion(&objs[*obj]).unwrap();
                let tip_payload = expected[&vers[*obj].last().unwrap().vid().0].clone();
                vers[*obj].push(v);
                expected.insert(v.vid().0, tip_payload);
            }
            DesignOp::Branch { obj, version } => {
                let base = vers[*obj][*version];
                let v = txn.newversion_from(&base).unwrap();
                let base_payload = expected[&base.vid().0].clone();
                vers[*obj].push(v);
                expected.insert(v.vid().0, base_payload);
            }
            DesignOp::Edit { obj, payload } => {
                let tip = txn
                    .update(&objs[*obj], |a| a.payload = payload.clone())
                    .unwrap();
                expected.insert(tip.vid().0, payload.clone());
            }
            DesignOp::ReadCurrent { obj } => {
                let state = txn.deref(&objs[*obj]).unwrap();
                let tip = vers[*obj].last().unwrap();
                assert_eq!(state.payload, expected[&tip.vid().0], "step {step}");
            }
            DesignOp::ReadVersion { obj, version } => {
                let vp = vers[*obj][*version];
                let state = txn.deref_v(&vp).unwrap();
                assert_eq!(state.payload, expected[&vp.vid().0], "step {step}");
            }
        }
        ops_in_txn += 1;

        // Commit in batches; periodically crash and recover.
        if ops_in_txn >= 25 {
            txn.commit().unwrap();
            committed_ops += ops_in_txn;
            ops_in_txn = 0;
            match (committed_ops / 25) % 4 {
                0 => {
                    // Simulated crash: no shutdown checkpoint.
                    std::mem::forget(db);
                    db = Database::open(&path, DatabaseOptions::default()).unwrap();
                }
                1 => db.checkpoint().unwrap(),
                _ => {}
            }
            txn = db.begin();
        }
    }
    txn.commit().unwrap();

    // Final sweep: every object's graph is intact and every surviving
    // version carries exactly the payload the model predicts.
    let mut snap = db.snapshot();
    assert_eq!(snap.objects::<Artifact>().unwrap().len(), objs.len());
    for (i, p) in objs.iter().enumerate() {
        snap.check_object(p).unwrap();
        let history = snap.version_history(p).unwrap();
        assert_eq!(history, vers[i], "object {i} history");
        for vp in &history {
            assert_eq!(
                snap.deref_v(vp).unwrap().payload,
                expected[&vp.vid().0],
                "object {i} version {vp}"
            );
        }
    }
    drop(snap);
    drop(db);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_of(&path));
}
