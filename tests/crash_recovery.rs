//! Crash-recovery at the full-stack level: committed versioning work
//! survives simulated crashes (no shutdown checkpoint, torn WAL tails),
//! and uncommitted work vanishes completely.

use ode::{Database, DatabaseOptions};
use ode_codec::{impl_persist_struct, impl_type_name};

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    rev: u32,
    text: String,
}
impl_persist_struct!(Doc { rev, text });
impl_type_name!(Doc = "crash/Doc");

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ode-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut wal = path.clone().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    path
}

fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut wal = path.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

fn wal_of(path: &std::path::Path) -> std::path::PathBuf {
    let mut wal = path.to_path_buf().into_os_string();
    wal.push(".wal");
    std::path::PathBuf::from(wal)
}

/// "Crash" a database: leak it so neither Drop-checkpoint nor WAL reset
/// runs.
fn crash(db: Database) {
    std::mem::forget(db);
}

#[test]
fn committed_version_graph_survives_crash() {
    let path = temp_path("graph");
    let (p, v0, v1, v2);
    {
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        let mut txn = db.begin();
        p = txn
            .pnew(&Doc {
                rev: 0,
                text: "root".into(),
            })
            .unwrap();
        v0 = txn.current_version(&p).unwrap();
        v1 = txn.newversion(&p).unwrap();
        txn.update(&p, |d| d.rev = 1).unwrap();
        v2 = txn.newversion_from(&v0).unwrap();
        txn.update_version(&v2, |d| d.text = "variant".into())
            .unwrap();
        txn.commit().unwrap();
        crash(db);
    }
    let db = Database::open(&path, DatabaseOptions::default()).unwrap();
    let mut snap = db.snapshot();
    assert_eq!(snap.version_history(&p).unwrap(), vec![v0, v1, v2]);
    assert_eq!(snap.deref_v(&v1).unwrap().rev, 1);
    assert_eq!(snap.deref_v(&v2).unwrap().text, "variant");
    assert_eq!(snap.dnext(&v0).unwrap(), vec![v1, v2]);
    snap.check_object(&p).unwrap();
    drop(snap);
    drop(db);
    cleanup(&path);
}

#[test]
fn uncommitted_transaction_vanishes_on_crash() {
    let path = temp_path("uncommitted");
    let p;
    {
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        {
            let mut txn = db.begin();
            p = txn
                .pnew(&Doc {
                    rev: 0,
                    text: "keep".into(),
                })
                .unwrap();
            txn.commit().unwrap();
        }
        {
            // This transaction crashes mid-flight (never committed).
            let mut txn = db.begin();
            txn.newversion(&p).unwrap();
            txn.update(&p, |d| d.text = "lost".into()).unwrap();
            txn.pnew(&Doc {
                rev: 9,
                text: "ghost".into(),
            })
            .unwrap();
            std::mem::forget(txn); // don't even run abort rollback
            crash(db);
        }
    }
    let db = Database::open(&path, DatabaseOptions::default()).unwrap();
    let mut snap = db.snapshot();
    assert_eq!(snap.objects::<Doc>().unwrap(), vec![p]);
    assert_eq!(snap.version_count(&p).unwrap(), 1);
    assert_eq!(snap.deref(&p).unwrap().text, "keep");
    drop(snap);
    drop(db);
    cleanup(&path);
}

#[test]
fn torn_wal_tail_truncated_to_last_commit() {
    let path = temp_path("torn");
    let p;
    {
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        let mut txn = db.begin();
        p = txn
            .pnew(&Doc {
                rev: 0,
                text: "solid".into(),
            })
            .unwrap();
        txn.commit().unwrap();
        crash(db);
    }
    // Corrupt the WAL tail byte-wise (a torn final write).
    {
        use std::io::Write;
        let wal = wal_of(&path);
        let len = std::fs::metadata(&wal).unwrap().len();
        // Chop a few bytes, then append garbage.
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(len.saturating_sub(2)).unwrap();
        drop(f);
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[0xDE, 0xAD]).unwrap();
    }
    // The damaged record belonged to the committed txn, so that txn's
    // commit frame is gone: recovery keeps only whole committed txns.
    let db = Database::open(&path, DatabaseOptions::default()).unwrap();
    let mut snap = db.snapshot();
    // Either the object survived (damage hit padding) or the store is
    // consistently empty — never a half-applied state. Both are valid;
    // what matters is that open succeeded and reads are coherent.
    let objects = snap.objects::<Doc>().unwrap();
    for obj in &objects {
        snap.deref(obj).unwrap();
        snap.check_object(obj).unwrap();
    }
    drop(snap);
    drop(db);
    let _ = p;
    cleanup(&path);
}

#[test]
fn repeated_crash_recover_cycles_accumulate_state() {
    let path = temp_path("cycles");
    {
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        crash(db);
    }
    let mut expected = 0u64;
    for round in 0..5 {
        let db = Database::open(&path, DatabaseOptions::default()).unwrap();
        {
            let mut snap = db.snapshot();
            assert_eq!(snap.objects::<Doc>().unwrap().len() as u64, expected);
        }
        let mut txn = db.begin();
        for i in 0..3 {
            txn.pnew(&Doc {
                rev: round,
                text: format!("r{round}-{i}"),
            })
            .unwrap();
        }
        txn.commit().unwrap();
        expected += 3;
        crash(db);
    }
    let db = Database::open(&path, DatabaseOptions::default()).unwrap();
    let mut snap = db.snapshot();
    assert_eq!(snap.objects::<Doc>().unwrap().len() as u64, expected);
    drop(snap);
    drop(db);
    cleanup(&path);
}

#[test]
fn checkpoint_then_crash_needs_no_wal() {
    let path = temp_path("ckpt");
    let p;
    {
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        let mut txn = db.begin();
        p = txn
            .pnew(&Doc {
                rev: 1,
                text: "flushed".into(),
            })
            .unwrap();
        txn.commit().unwrap();
        db.checkpoint().unwrap();
        crash(db);
    }
    // The WAL is empty after checkpoint; blow it away entirely to prove
    // the database file alone carries the state.
    std::fs::remove_file(wal_of(&path)).unwrap();
    let db = Database::open(&path, DatabaseOptions::default()).unwrap();
    let mut snap = db.snapshot();
    assert_eq!(snap.deref(&p).unwrap().text, "flushed");
    drop(snap);
    drop(db);
    cleanup(&path);
}
