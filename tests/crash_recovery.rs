//! Crash-recovery at the full-stack level: committed versioning work
//! survives simulated crashes (no shutdown checkpoint, torn WAL tails),
//! and uncommitted work vanishes completely.

use ode::{Database, DatabaseOptions};
use ode_codec::{impl_persist_struct, impl_type_name};

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    rev: u32,
    text: String,
}
impl_persist_struct!(Doc { rev, text });
impl_type_name!(Doc = "crash/Doc");

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ode-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut wal = path.clone().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    path
}

fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut wal = path.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

fn wal_of(path: &std::path::Path) -> std::path::PathBuf {
    let mut wal = path.to_path_buf().into_os_string();
    wal.push(".wal");
    std::path::PathBuf::from(wal)
}

/// "Crash" a database: leak it so neither Drop-checkpoint nor WAL reset
/// runs.
fn crash(db: Database) {
    std::mem::forget(db);
}

#[test]
fn committed_version_graph_survives_crash() {
    let path = temp_path("graph");
    let (p, v0, v1, v2);
    {
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        let mut txn = db.begin();
        p = txn
            .pnew(&Doc {
                rev: 0,
                text: "root".into(),
            })
            .unwrap();
        v0 = txn.current_version(&p).unwrap();
        v1 = txn.newversion(&p).unwrap();
        txn.update(&p, |d| d.rev = 1).unwrap();
        v2 = txn.newversion_from(&v0).unwrap();
        txn.update_version(&v2, |d| d.text = "variant".into())
            .unwrap();
        txn.commit().unwrap();
        crash(db);
    }
    let db = Database::open(&path, DatabaseOptions::default()).unwrap();
    let mut snap = db.snapshot();
    assert_eq!(snap.version_history(&p).unwrap(), vec![v0, v1, v2]);
    assert_eq!(snap.deref_v(&v1).unwrap().rev, 1);
    assert_eq!(snap.deref_v(&v2).unwrap().text, "variant");
    assert_eq!(snap.dnext(&v0).unwrap(), vec![v1, v2]);
    snap.check_object(&p).unwrap();
    drop(snap);
    drop(db);
    cleanup(&path);
}

#[test]
fn uncommitted_transaction_vanishes_on_crash() {
    let path = temp_path("uncommitted");
    let p;
    {
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        {
            let mut txn = db.begin();
            p = txn
                .pnew(&Doc {
                    rev: 0,
                    text: "keep".into(),
                })
                .unwrap();
            txn.commit().unwrap();
        }
        {
            // This transaction crashes mid-flight (never committed).
            let mut txn = db.begin();
            txn.newversion(&p).unwrap();
            txn.update(&p, |d| d.text = "lost".into()).unwrap();
            txn.pnew(&Doc {
                rev: 9,
                text: "ghost".into(),
            })
            .unwrap();
            std::mem::forget(txn); // don't even run abort rollback
            crash(db);
        }
    }
    let db = Database::open(&path, DatabaseOptions::default()).unwrap();
    let mut snap = db.snapshot();
    assert_eq!(snap.objects::<Doc>().unwrap(), vec![p]);
    assert_eq!(snap.version_count(&p).unwrap(), 1);
    assert_eq!(snap.deref(&p).unwrap().text, "keep");
    drop(snap);
    drop(db);
    cleanup(&path);
}

#[test]
fn torn_wal_tail_truncated_to_last_commit() {
    let path = temp_path("torn");
    let p;
    {
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        let mut txn = db.begin();
        p = txn
            .pnew(&Doc {
                rev: 0,
                text: "solid".into(),
            })
            .unwrap();
        txn.commit().unwrap();
        crash(db);
    }
    // Corrupt the WAL tail byte-wise (a torn final write).
    {
        use std::io::Write;
        let wal = wal_of(&path);
        let len = std::fs::metadata(&wal).unwrap().len();
        // Chop a few bytes, then append garbage.
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(len.saturating_sub(2)).unwrap();
        drop(f);
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[0xDE, 0xAD]).unwrap();
    }
    // The damaged record belonged to the committed txn, so that txn's
    // commit frame is gone: recovery keeps only whole committed txns.
    let db = Database::open(&path, DatabaseOptions::default()).unwrap();
    let mut snap = db.snapshot();
    // Either the object survived (damage hit padding) or the store is
    // consistently empty — never a half-applied state. Both are valid;
    // what matters is that open succeeded and reads are coherent.
    let objects = snap.objects::<Doc>().unwrap();
    for obj in &objects {
        snap.deref(obj).unwrap();
        snap.check_object(obj).unwrap();
    }
    drop(snap);
    drop(db);
    let _ = p;
    cleanup(&path);
}

#[test]
fn repeated_crash_recover_cycles_accumulate_state() {
    let path = temp_path("cycles");
    {
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        crash(db);
    }
    let mut expected = 0u64;
    for round in 0..5 {
        let db = Database::open(&path, DatabaseOptions::default()).unwrap();
        {
            let mut snap = db.snapshot();
            assert_eq!(snap.objects::<Doc>().unwrap().len() as u64, expected);
        }
        let mut txn = db.begin();
        for i in 0..3 {
            txn.pnew(&Doc {
                rev: round,
                text: format!("r{round}-{i}"),
            })
            .unwrap();
        }
        txn.commit().unwrap();
        expected += 3;
        crash(db);
    }
    let db = Database::open(&path, DatabaseOptions::default()).unwrap();
    let mut snap = db.snapshot();
    assert_eq!(snap.objects::<Doc>().unwrap().len() as u64, expected);
    drop(snap);
    drop(db);
    cleanup(&path);
}

#[test]
fn checkpoint_then_crash_needs_no_wal() {
    let path = temp_path("ckpt");
    let p;
    {
        let db = Database::create(&path, DatabaseOptions::default()).unwrap();
        let mut txn = db.begin();
        p = txn
            .pnew(&Doc {
                rev: 1,
                text: "flushed".into(),
            })
            .unwrap();
        txn.commit().unwrap();
        db.checkpoint().unwrap();
        crash(db);
    }
    // The WAL is empty after checkpoint; blow it away entirely to prove
    // the database file alone carries the state.
    std::fs::remove_file(wal_of(&path)).unwrap();
    let db = Database::open(&path, DatabaseOptions::default()).unwrap();
    let mut snap = db.snapshot();
    assert_eq!(snap.deref(&p).unwrap().text, "flushed");
    drop(snap);
    drop(db);
    cleanup(&path);
}

// ---------------------------------------------------------------------------
// SIGKILL mid-group-commit: the acknowledged cohort — exactly — recovers
// ---------------------------------------------------------------------------

/// Re-exec helper, not a test of its own: when the group-commit crash
/// test spawns this test binary with `ODE_CRASH_GROUP_CHILD` set, this
/// runs concurrent committers against a group-commit database and
/// durably logs every *acknowledged* marker until the parent SIGKILLs
/// the process. Without the env var it is a no-op.
#[test]
fn child_group_commit_writer() {
    let Ok(db_path) = std::env::var("ODE_CRASH_GROUP_CHILD") else {
        return;
    };
    let ack_dir = std::env::var("ODE_CRASH_GROUP_ACK_DIR").expect("ack dir env var");

    // Durability on (the default), group commit on with a real window so
    // fsyncs are amortized across the four writers below — the code path
    // under test.
    let mut options = DatabaseOptions::default();
    options.storage.group_commit = true;
    options.storage.group_commit_window = std::time::Duration::from_millis(2);
    let db = Database::create(&db_path, options).expect("create db");

    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let db = &db;
            let ack_path = format!("{ack_dir}/acks-{w}");
            scope.spawn(move || {
                use std::io::Write;
                let mut acks = std::fs::File::create(&ack_path).expect("create ack log");
                for i in 0.. {
                    let marker = w * 1_000_000 + i;
                    let mut txn = db.begin();
                    txn.pnew(&Doc {
                        rev: marker as u32,
                        text: format!("w{w}-{i}"),
                    })
                    .expect("pnew");
                    txn.commit().expect("commit");
                    // The commit was acknowledged (group fsync covered
                    // it). Only now does the marker enter the durable
                    // ack log — so every logged marker MUST survive the
                    // kill.
                    acks.write_all(format!("{marker}\n").as_bytes())
                        .expect("log ack");
                    acks.sync_data().expect("sync ack log");
                }
            });
        }
    });
}

#[test]
fn sigkill_mid_group_commit_recovers_every_acknowledged_txn() {
    use std::time::{Duration, Instant};

    let path = temp_path("groupkill");
    let ack_dir = {
        let mut d = std::env::temp_dir();
        d.push(format!("ode-crash-groupkill-acks-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("create ack dir");
        d
    };

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .args(["child_group_commit_writer", "--exact", "--nocapture"])
        .env("ODE_CRASH_GROUP_CHILD", &path)
        .env("ODE_CRASH_GROUP_ACK_DIR", &ack_dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child writer");

    // Let the writers race until a healthy number of commits have been
    // acknowledged, then SIGKILL mid-flight: some cohort is very likely
    // half-formed (appended, not yet fsynced) at that instant.
    let deadline = Instant::now() + Duration::from_secs(60);
    let collect_acked = |dir: &std::path::Path| -> Vec<u64> {
        let mut acked = Vec::new();
        for w in 0..4 {
            if let Ok(text) = std::fs::read_to_string(dir.join(format!("acks-{w}"))) {
                acked.extend(text.lines().filter_map(|l| l.parse::<u64>().ok()));
            }
        }
        acked
    };
    loop {
        if collect_acked(&ack_dir).len() >= 40 {
            break;
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("child writer exited early: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "child never reached 40 acknowledged commits"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");

    // A marker whose final newline was mid-write when the kill landed is
    // not a completed ack; a trailing partial line parses to garbage or
    // not at all, and `lines()` + parse filtering drops it safely. Every
    // *complete* logged marker was acknowledged before the kill.
    let acked = collect_acked(&ack_dir);
    assert!(acked.len() >= 40, "lost the ack log itself?");

    // Recover the way a restarted process would and read back every
    // object: the acknowledged set must be a subset of what recovered.
    let db = Database::open(&path, DatabaseOptions::default()).expect("recover after SIGKILL");
    let mut snap = db.snapshot();
    let recovered: std::collections::HashSet<u32> = snap
        .objects::<Doc>()
        .expect("list objects")
        .iter()
        .map(|p| snap.deref(p).expect("deref recovered object").rev)
        .collect();
    drop(snap);
    let missing: Vec<u64> = acked
        .iter()
        .copied()
        .filter(|m| !recovered.contains(&(*m as u32)))
        .collect();
    assert!(
        missing.is_empty(),
        "{} acknowledged commits lost after SIGKILL: {missing:?}",
        missing.len()
    );

    drop(db);
    let _ = std::fs::remove_dir_all(&ack_dir);
    cleanup(&path);
}

// ---------------------------------------------------------------------------
// SIGKILL mid-checkin on a chain-storage database
// ---------------------------------------------------------------------------

/// The body each checked-in revision carries: a long shared prefix with
/// a marker suffix, so consecutive revisions are near-identical and the
/// chain really stores deltas. Used by the child to write and by the
/// parent to verify recovered bodies byte-for-byte.
fn chain_text(marker: u64) -> String {
    format!("{}::checkin-{marker}", "the quick brown fox ".repeat(40))
}

/// Re-exec helper for the delta-chain variant: four writers each own
/// one object in a chain-storage database and loop pure check-ins
/// (`newversion` + `put_version`), appending a delta to the object's
/// chain per commit, until the parent SIGKILLs the process.
/// Acknowledged markers are durably logged after each commit. No-op
/// without the env var.
#[test]
fn child_chained_checkin_writer() {
    let Ok(db_path) = std::env::var("ODE_CRASH_CHAIN_CHILD") else {
        return;
    };
    let ack_dir = std::env::var("ODE_CRASH_CHAIN_ACK_DIR").expect("ack dir env var");

    let mut options = DatabaseOptions::default().with_chain(ode::ChainConfig::with_interval(4));
    options.storage.group_commit = true;
    options.storage.group_commit_window = std::time::Duration::from_millis(2);
    let db = Database::create(&db_path, options).expect("create db");

    // One object per writer, committed up front, so every commit in the
    // race below is a pure check-in appending to that object's chain.
    let ptrs: Vec<_> = {
        let mut txn = db.begin();
        let ptrs = (0..4u64)
            .map(|w| {
                let marker = w * 1_000_000;
                txn.pnew(&Doc {
                    rev: marker as u32,
                    text: chain_text(marker),
                })
                .expect("pnew")
            })
            .collect();
        txn.commit().expect("commit seed");
        ptrs
    };

    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let db = &db;
            let ptr = &ptrs[w as usize];
            let ack_path = format!("{ack_dir}/acks-{w}");
            scope.spawn(move || {
                use std::io::Write;
                let mut acks = std::fs::File::create(&ack_path).expect("create ack log");
                for i in 1.. {
                    let marker = w * 1_000_000 + i;
                    let mut txn = db.begin();
                    let v = txn.newversion(ptr).expect("newversion");
                    txn.put_version(
                        &v,
                        &Doc {
                            rev: marker as u32,
                            text: chain_text(marker),
                        },
                    )
                    .expect("put_version");
                    txn.commit().expect("commit");
                    acks.write_all(format!("{marker}\n").as_bytes())
                        .expect("log ack");
                    acks.sync_data().expect("sync ack log");
                }
            });
        }
    });
}

/// SIGKILL lands while four writers are mid-checkin on a chain-storage
/// database. Recovery (opened *without* the chain config, proving old
/// and new readers decode the same records) must surface every
/// acknowledged revision with a byte-identical body, and the recovered
/// chains must still validate and still hold deltas — a half-written
/// chain record never survives.
#[test]
fn sigkill_mid_checkin_chained_store_recovers_acknowledged_versions() {
    use std::time::{Duration, Instant};

    let path = temp_path("chainkill");
    let ack_dir = {
        let mut d = std::env::temp_dir();
        d.push(format!("ode-crash-chainkill-acks-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("create ack dir");
        d
    };

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .args(["child_chained_checkin_writer", "--exact", "--nocapture"])
        .env("ODE_CRASH_CHAIN_CHILD", &path)
        .env("ODE_CRASH_CHAIN_ACK_DIR", &ack_dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child writer");

    let deadline = Instant::now() + Duration::from_secs(60);
    let collect_acked = |dir: &std::path::Path| -> Vec<u64> {
        let mut acked = Vec::new();
        for w in 0..4 {
            if let Ok(text) = std::fs::read_to_string(dir.join(format!("acks-{w}"))) {
                acked.extend(text.lines().filter_map(|l| l.parse::<u64>().ok()));
            }
        }
        acked
    };
    loop {
        if collect_acked(&ack_dir).len() >= 40 {
            break;
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("child writer exited early: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "child never reached 40 acknowledged check-ins"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");

    let acked = collect_acked(&ack_dir);
    assert!(acked.len() >= 40, "lost the ack log itself?");

    // Recover with plain options: chain records must decode without the
    // writer's config.
    let db = Database::open(&path, DatabaseOptions::default()).expect("recover after SIGKILL");
    let mut snap = db.snapshot();
    let mut recovered = std::collections::HashMap::new();
    let mut chains_seen = 0usize;
    for p in snap.objects::<Doc>().expect("list objects") {
        snap.check_object(&p).expect("recovered object validates");
        for v in snap.version_history(&p).expect("history") {
            let doc = snap.deref_v(&v).expect("deref recovered version");
            recovered.insert(doc.rev, doc.text.clone());
        }
        // An object with committed check-ins must have kept its chain
        // through recovery — with real deltas, not just anchors.
        if let Some(stats) = snap.chain_stats_raw(p.oid()).expect("chain stats") {
            assert!(stats.versions >= 2);
            assert!(stats.deltas > 0, "recovered chain holds no deltas");
            chains_seen += 1;
        }
    }
    assert!(chains_seen > 0, "no delta chain survived recovery");
    drop(snap);

    // Acked ⊆ recovered, byte-identical: every acknowledged check-in
    // materializes exactly the body that was written.
    for marker in &acked {
        match recovered.get(&(*marker as u32)) {
            Some(text) => assert_eq!(
                *text,
                chain_text(*marker),
                "marker {marker} recovered with a different body"
            ),
            None => panic!("acknowledged check-in {marker} lost after SIGKILL"),
        }
    }

    drop(db);
    let _ = std::fs::remove_dir_all(&ack_dir);
    cleanup(&path);
}

// ---------------------------------------------------------------------------
// SIGKILL mid-merge-checkin: two-parent versions survive recovery
// ---------------------------------------------------------------------------

/// Body carried by the merge-crash writers: a long shared filler plus
/// two fixed-width marker fields. Each iteration forks the latest
/// version twice — one fork rewrites the `L` field, the other the `R`
/// field — and merges the forks, so the committed merge version has
/// `left == right` and exactly two parents.
fn merge_text(left: u64, right: u64) -> String {
    format!(
        "{}::L-{left:010}::R-{right:010}",
        "the quick brown fox ".repeat(40)
    )
}

/// Re-exec helper for the merge variant: four writers each own one
/// object in a chain-storage database and loop fork/fork/merge
/// check-ins until the parent SIGKILLs the process. A marker is durably
/// logged only after the commit that made its merge version durable.
/// No-op without the env var.
#[test]
fn child_merge_checkin_writer() {
    let Ok(db_path) = std::env::var("ODE_CRASH_MERGE_CHILD") else {
        return;
    };
    let ack_dir = std::env::var("ODE_CRASH_MERGE_ACK_DIR").expect("ack dir env var");

    let mut options = DatabaseOptions::default().with_chain(ode::ChainConfig::with_interval(4));
    options.storage.group_commit = true;
    options.storage.group_commit_window = std::time::Duration::from_millis(2);
    let db = Database::create(&db_path, options).expect("create db");

    let ptrs: Vec<_> = {
        let mut txn = db.begin();
        let ptrs = (0..4u64)
            .map(|w| {
                let marker = w * 1_000_000;
                txn.pnew(&Doc {
                    rev: w as u32,
                    text: merge_text(marker, marker),
                })
                .expect("pnew")
            })
            .collect();
        txn.commit().expect("commit seed");
        ptrs
    };

    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let db = &db;
            let ptr = &ptrs[w as usize];
            let ack_path = format!("{ack_dir}/acks-{w}");
            scope.spawn(move || {
                use std::io::Write;
                let mut acks = std::fs::File::create(&ack_path).expect("create ack log");
                for i in 1.. {
                    let marker = w * 1_000_000 + i;
                    let prev = marker - 1;
                    let mut txn = db.begin();
                    let base = txn.current_version(ptr).expect("current_version");
                    let a = txn
                        .derive_from_with(&base, |d| d.text = merge_text(marker, prev))
                        .expect("fork a");
                    let b = txn
                        .derive_from_with(&base, |d| d.text = merge_text(prev, marker))
                        .expect("fork b");
                    let report = txn.merge(&a, &b, ode::MergePolicy::Fail).expect("merge");
                    assert!(
                        report.conflicts.is_empty(),
                        "disjoint field edits conflicted: {:?}",
                        report.conflicts
                    );
                    report.version.expect("clean merge checks in");
                    txn.commit().expect("commit");
                    acks.write_all(format!("{marker}\n").as_bytes())
                        .expect("log ack");
                    acks.sync_data().expect("sync ack log");
                }
            });
        }
    });
}

/// SIGKILL lands while four writers are mid-merge on a chain-storage
/// database. Recovery — opened **without** the chain config — must
/// surface every acknowledged merge version with a byte-identical
/// merged body, both parents on record, and walkable ancestry.
#[test]
fn sigkill_mid_merge_checkin_recovers_two_parent_versions() {
    use std::time::{Duration, Instant};

    let path = temp_path("mergekill");
    let ack_dir = {
        let mut d = std::env::temp_dir();
        d.push(format!("ode-crash-mergekill-acks-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("create ack dir");
        d
    };

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .args(["child_merge_checkin_writer", "--exact", "--nocapture"])
        .env("ODE_CRASH_MERGE_CHILD", &path)
        .env("ODE_CRASH_MERGE_ACK_DIR", &ack_dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child writer");

    let deadline = Instant::now() + Duration::from_secs(60);
    let collect_acked = |dir: &std::path::Path| -> Vec<u64> {
        let mut acked = Vec::new();
        for w in 0..4 {
            if let Ok(text) = std::fs::read_to_string(dir.join(format!("acks-{w}"))) {
                acked.extend(text.lines().filter_map(|l| l.parse::<u64>().ok()));
            }
        }
        acked
    };
    loop {
        if collect_acked(&ack_dir).len() >= 40 {
            break;
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("child writer exited early: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "child never reached 40 acknowledged merges"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");

    let acked = collect_acked(&ack_dir);
    assert!(acked.len() >= 40, "lost the ack log itself?");

    // Recover with plain options: merge metadata and chain records must
    // decode without the writer's config.
    let db = Database::open(&path, DatabaseOptions::default()).expect("recover after SIGKILL");
    let mut snap = db.snapshot();
    // text → (vid, parent count) for every recovered version.
    let mut recovered = std::collections::HashMap::new();
    for p in snap.objects::<Doc>().expect("list objects") {
        snap.check_object(&p).expect("recovered object validates");
        for v in snap.version_history(&p).expect("history") {
            let doc = snap.deref_v(&v).expect("deref recovered version");
            let parents = snap.parents_raw(v.vid()).expect("parents");
            recovered.insert(doc.text.clone(), (v, parents.len()));
        }
    }

    // Every acknowledged merge recovered byte-identically, as a
    // two-parent version whose ancestry walks back to the seed root.
    for marker in &acked {
        let (v, parent_count) = recovered
            .get(&merge_text(*marker, *marker))
            .unwrap_or_else(|| panic!("acknowledged merge {marker} lost after SIGKILL"));
        assert_eq!(
            *parent_count, 2,
            "recovered merge {marker} lost a parent edge"
        );
        let ancestors: Vec<_> = snap.ancestors(v).expect("ancestors").collect();
        assert!(
            !ancestors.is_empty(),
            "merge {marker} has no walkable ancestry"
        );
    }
    drop(snap);

    drop(db);
    let _ = std::fs::remove_dir_all(&ack_dir);
    cleanup(&path);
}

// ---------------------------------------------------------------------------
// SIGKILL with optimistic multi-writers racing through group commit
// ---------------------------------------------------------------------------

/// Re-exec helper for the optimistic variant: four writers drive
/// `Database::transact` loops — every `pnew` touches the shared header
/// and catalog pages, so the writers conflict and retry constantly
/// while their winners flow through group commit. Acknowledged markers
/// are durably logged only after `transact` returns. No-op without the
/// env var.
#[test]
fn child_multi_writer() {
    let Ok(db_path) = std::env::var("ODE_CRASH_MULTI_CHILD") else {
        return;
    };
    let ack_dir = std::env::var("ODE_CRASH_MULTI_ACK_DIR").expect("ack dir env var");

    let mut options = DatabaseOptions::default();
    options.storage.group_commit = true;
    options.storage.group_commit_window = std::time::Duration::from_millis(2);
    let db = Database::create(&db_path, options).expect("create db");

    // Conflicts are expected by design here; the policy must be generous
    // enough that a writer never gives up mid-run.
    let policy = ode::RetryPolicy {
        max_attempts: 100_000,
        backoff: std::time::Duration::from_micros(50),
        max_backoff: std::time::Duration::from_millis(1),
    };
    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let db = &db;
            let ack_path = format!("{ack_dir}/acks-{w}");
            scope.spawn(move || {
                use std::io::Write;
                let mut acks = std::fs::File::create(&ack_path).expect("create ack log");
                for i in 0.. {
                    let marker = w * 1_000_000 + i;
                    // Each retry re-executes the closure in a fresh
                    // optimistic transaction, so a marker can commit at
                    // most once no matter how many attempts it takes.
                    db.transact(policy, |txn| {
                        txn.pnew(&Doc {
                            rev: marker as u32,
                            text: format!("w{w}-{i}"),
                        })
                        .map(|_| ())
                    })
                    .expect("transact");
                    acks.write_all(format!("{marker}\n").as_bytes())
                        .expect("log ack");
                    acks.sync_data().expect("sync ack log");
                }
            });
        }
    });
}

/// Four *optimistic* writers race each other (validation, retries) and
/// the group-commit leader (shared fsync cohorts) until a SIGKILL lands
/// mid-flight. Recovery must surface every acknowledged marker exactly
/// once — a conflict-aborted or unacknowledged attempt must never
/// resurrect as a duplicate object.
#[test]
fn sigkill_multi_writer_recovers_every_acknowledged_txn() {
    use std::time::{Duration, Instant};

    let path = temp_path("multikill");
    let ack_dir = {
        let mut d = std::env::temp_dir();
        d.push(format!("ode-crash-multikill-acks-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("create ack dir");
        d
    };

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .args(["child_multi_writer", "--exact", "--nocapture"])
        .env("ODE_CRASH_MULTI_CHILD", &path)
        .env("ODE_CRASH_MULTI_ACK_DIR", &ack_dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child writer");

    let deadline = Instant::now() + Duration::from_secs(60);
    let collect_acked = |dir: &std::path::Path| -> Vec<u64> {
        let mut acked = Vec::new();
        for w in 0..4 {
            if let Ok(text) = std::fs::read_to_string(dir.join(format!("acks-{w}"))) {
                acked.extend(text.lines().filter_map(|l| l.parse::<u64>().ok()));
            }
        }
        acked
    };
    loop {
        if collect_acked(&ack_dir).len() >= 40 {
            break;
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("child writer exited early: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "child never reached 40 acknowledged commits"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");

    let acked = collect_acked(&ack_dir);
    assert!(acked.len() >= 40, "lost the ack log itself?");

    let db = Database::open(&path, DatabaseOptions::default()).expect("recover after SIGKILL");
    let mut snap = db.snapshot();
    let mut recovered: Vec<u32> = snap
        .objects::<Doc>()
        .expect("list objects")
        .iter()
        .map(|p| snap.deref(p).expect("deref recovered object").rev)
        .collect();
    drop(snap);

    // Acked ⊆ recovered: every acknowledged commit survived the kill.
    let recovered_set: std::collections::HashSet<u32> = recovered.iter().copied().collect();
    let missing: Vec<u64> = acked
        .iter()
        .copied()
        .filter(|m| !recovered_set.contains(&(*m as u32)))
        .collect();
    assert!(
        missing.is_empty(),
        "{} acknowledged commits lost after SIGKILL: {missing:?}",
        missing.len()
    );
    // No marker committed twice: retries re-execute, they never replay a
    // stale write set, so each marker appears at most once.
    recovered.sort_unstable();
    let before = recovered.len();
    recovered.dedup();
    assert_eq!(
        before,
        recovered.len(),
        "a retried transaction committed the same marker twice"
    );

    drop(db);
    let _ = std::fs::remove_dir_all(&ack_dir);
    cleanup(&path);
}
