//! Cross-crate integration: core + policies + dms + delta working
//! against one database, exercising the full stack from the public API
//! down to pages on disk.

use ode::{Database, DatabaseOptions, ObjPtr};
use ode_codec::{impl_persist_struct, impl_type_name};
use ode_delta::{ForwardChain, ReverseChain};
use ode_dms::{bootstrap, AluDesign, Cell};
use ode_policies::config::ConfigHandle;
use ode_policies::context::ContextHandle;
use ode_policies::environment::{EnvHandle, VersionState};
use ode_policies::notify::Notifier;

#[derive(Debug, Clone, PartialEq)]
struct Doc {
    text: String,
}
impl_persist_struct!(Doc { text });
impl_type_name!(Doc = "integration/Doc");

struct TempDb {
    path: std::path::PathBuf,
}

impl TempDb {
    fn new(name: &str) -> TempDb {
        let mut path = std::env::temp_dir();
        path.push(format!("ode-int-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = path.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        TempDb { path }
    }
    fn create(&self) -> Database {
        Database::create(&self.path, DatabaseOptions::default()).unwrap()
    }
    fn open(&self) -> Database {
        Database::open(&self.path, DatabaseOptions::default()).unwrap()
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        let mut wal = self.path.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }
}

/// A full design session: DMS design + environment + notifier + context,
/// all in one database, surviving reopen.
#[test]
fn full_design_session() {
    let tmp = TempDb::new("session");
    let (design_ptr, env, ctx) = {
        let db = tmp.create();
        let mut notifier = Notifier::new();
        notifier.watch_type::<ode_dms::SchematicData>(&db);

        let design = bootstrap(&db, "alu").unwrap();
        let mut txn = db.begin();
        let chip = design.chip(&mut txn).unwrap();

        // Track the initial schematic version and freeze it.
        let v0 = txn.current_version(&chip.schematic).unwrap();
        let env = EnvHandle::create(&mut txn, "milestones").unwrap();
        env.track(&mut txn, v0).unwrap();
        env.transition(&mut txn, v0, VersionState::Valid).unwrap();
        env.transition(&mut txn, v0, VersionState::Frozen).unwrap();

        // A context pinning the schematic to v0 for legacy tools.
        let ctx = ContextHandle::create(&mut txn, "legacy").unwrap();
        ctx.set_default(&mut txn, chip.schematic, v0).unwrap();

        // Evolve the design.
        design
            .revise_schematic(&mut txn, |s| {
                s.cells.push(Cell {
                    kind: "INV".into(),
                    x: 1,
                    y: 1,
                })
            })
            .unwrap();
        txn.commit().unwrap();

        // The notifier saw the schematic evolution (newversion+update).
        assert!(notifier.pending() >= 2);

        // Frozen version refuses guarded edits.
        let mut txn = db.begin();
        assert!(!env
            .update_guarded(&mut txn, v0, |s| s.cells.clear())
            .unwrap());
        // Context still resolves the pinned state.
        assert_eq!(
            ctx.resolve(&mut txn, chip.schematic).unwrap().cells.len(),
            4
        );
        // Live reference sees the evolution.
        assert_eq!(txn.deref(&chip.schematic).unwrap().cells.len(), 5);
        txn.commit().unwrap();
        (design.ptr, env.ptr(), ctx.ptr())
    };

    // Reopen: everything — design, environment, context — persists.
    let db = tmp.open();
    let design = AluDesign::attach(design_ptr);
    let env = EnvHandle::attach(env);
    let ctx = ContextHandle::attach(ctx);
    let mut txn = db.begin();
    let chip = design.chip(&mut txn).unwrap();
    let v0 = txn.version_history(&chip.schematic).unwrap()[0];
    assert_eq!(
        env.state_of(&mut txn, v0).unwrap(),
        Some(VersionState::Frozen)
    );
    assert_eq!(
        ctx.resolve(&mut txn, chip.schematic).unwrap().cells.len(),
        4
    );
    assert_eq!(txn.deref(&chip.schematic).unwrap().cells.len(), 5);
    txn.check_object(&chip.schematic).unwrap();
    txn.commit().unwrap();
}

/// Delta chains as a storage policy for Ode histories: reconstruct the
/// same states the version store holds, entirely from deltas.
#[test]
fn delta_chains_mirror_version_history() {
    let tmp = TempDb::new("delta");
    let db = tmp.create();
    let mut txn = db.begin();
    let doc = txn
        .pnew(&Doc {
            text: "the quick brown fox jumps over the lazy dog".repeat(20),
        })
        .unwrap();

    // Evolve with small edits, mirroring each state into delta chains.
    let initial = ode_codec::to_bytes(&txn.deref(&doc).unwrap().into_inner());
    let mut fwd = ForwardChain::new(initial.clone());
    let mut rev = ReverseChain::new(initial);
    for i in 0..10 {
        txn.newversion(&doc).unwrap();
        txn.update(&doc, |d| d.text.push_str(&format!(" edit-{i}")))
            .unwrap();
        let bytes = ode_codec::to_bytes(&txn.deref(&doc).unwrap().into_inner());
        fwd.push(&bytes).unwrap();
        rev.push(&bytes);
    }

    // Every version in the store equals the chain's reconstruction.
    let history = txn.version_history(&doc).unwrap();
    assert_eq!(history.len(), 11);
    for (i, vp) in history.iter().enumerate() {
        let stored = ode_codec::to_bytes(&txn.deref_v(vp).unwrap().into_inner());
        assert_eq!(fwd.materialize(i).unwrap(), stored, "forward v{i}");
        assert_eq!(rev.materialize(i).unwrap(), stored, "reverse v{i}");
    }
    // And the chains are much smaller than full copies.
    let full: usize = history
        .iter()
        .map(|vp| ode_codec::to_bytes(&txn.deref_v(vp).unwrap().into_inner()).len())
        .sum();
    assert!(rev.encoded_size() < full / 2);
    txn.commit().unwrap();
}

/// Inter-object references stored in the database: a configuration
/// holding pointers into an evolving design, rebuilt across reopen.
#[test]
fn stored_pointers_survive_and_rebind() {
    let tmp = TempDb::new("pointers");
    let (cfg, part): (ConfigHandle, ObjPtr<Doc>) = {
        let db = tmp.create();
        let mut txn = db.begin();
        let part = txn.pnew(&Doc { text: "v0".into() }).unwrap();
        let cfg = ConfigHandle::create(&mut txn, "refs").unwrap();
        cfg.bind_dynamic(&mut txn, "doc", part).unwrap();
        txn.commit().unwrap();
        (cfg, part)
    };
    {
        let db = tmp.open();
        let mut txn = db.begin();
        txn.newversion(&part).unwrap();
        txn.put(&part, &Doc { text: "v1".into() }).unwrap();
        // The stored dynamic binding follows the new latest.
        assert_eq!(cfg.resolve::<Doc>(&mut txn, "doc").unwrap().text, "v1");
        txn.commit().unwrap();
    }
}

/// Sustained mixed workload across many transactions with periodic
/// checkpoints, then a full-extent verification pass.
#[test]
fn sustained_workload_with_checkpoints() {
    let tmp = TempDb::new("sustained");
    let db = tmp.create();
    let mut ptrs = Vec::new();
    for batch in 0..10 {
        let mut txn = db.begin();
        for i in 0..20 {
            let p = txn
                .pnew(&Doc {
                    text: format!("doc-{batch}-{i}"),
                })
                .unwrap();
            ptrs.push(p);
        }
        // Version and edit a stride of the existing population.
        for p in ptrs.iter().step_by(7) {
            txn.newversion(p).unwrap();
            txn.update(p, |d| d.text.push('!')).unwrap();
        }
        txn.commit().unwrap();
        if batch % 3 == 0 {
            db.checkpoint().unwrap();
        }
    }
    let mut snap = db.snapshot();
    let all = snap.objects::<Doc>().unwrap();
    assert_eq!(all.len(), 200);
    for p in &all {
        let _state = snap.deref(p).unwrap();
        snap.check_object(p).unwrap();
    }
}
