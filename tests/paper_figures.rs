//! Executable reproductions of the paper's figures and §4 examples.
//!
//! The paper's figures are version-graph diagrams (circles = versions,
//! solid arrows = derived-from, dotted arrows = temporal order, `p` =
//! the object pointer binding to the latest version).  Each test builds
//! the figure's scenario with the exact operation sequence the text
//! gives and asserts the resulting graph shape.

use ode::{Database, DatabaseOptions, Error};
use ode_codec::{impl_persist_struct, impl_type_name};

#[derive(Debug, Clone, PartialEq)]
struct Design {
    payload: u32,
}
impl_persist_struct!(Design { payload });
impl_type_name!(Design = "figures/Design");

struct TempDb {
    path: std::path::PathBuf,
}

impl TempDb {
    fn new(name: &str) -> TempDb {
        let mut path = std::env::temp_dir();
        path.push(format!("ode-fig-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = path.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        TempDb { path }
    }
    fn create(&self) -> Database {
        Database::create(&self.path, DatabaseOptions::default()).unwrap()
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        let mut wal = self.path.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }
}

/// Figure (§4.2, first): `p = pnew(...)` then `newversion(p)`.
///
/// ```text
/// p ──► v1 ···· v0      v1 is a *revision* of v0; p binds to v1.
///        └──────►┘      (solid: derived-from, dotted: temporal)
/// ```
#[test]
fn fig_revision() {
    let tmp = TempDb::new("revision");
    let db = tmp.create();
    let mut txn = db.begin();

    let p = txn.pnew(&Design { payload: 0 }).unwrap();
    let v0 = txn.current_version(&p).unwrap();
    let v1 = txn.newversion(&p).unwrap();

    // p now refers to v1 (the object id binds to the latest version).
    assert_eq!(txn.current_version(&p).unwrap(), v1);
    // Solid arrow: v1 derived from v0.
    assert_eq!(txn.dprevious(&v1).unwrap(), Some(v0));
    // Dotted arrow: v0 temporally precedes v1.
    assert_eq!(txn.tprevious(&v1).unwrap(), Some(v0));
    assert_eq!(txn.tnext(&v0).unwrap(), Some(v1));
    // "when creating a version, no changes were required in the type
    // definition of this object" — nothing was declared versionable.
    txn.check_object(&p).unwrap();
    txn.commit().unwrap();
}

/// Figure (§4.2, second): `newversion(vp0)` where vp0 holds v0's id.
///
/// ```text
/// p ──► v2
///        \
/// v1      ► v0         v1 and v2 are *variants/alternatives*,
///  └───────►┘          both derived from v0.
/// ```
#[test]
fn fig_alternatives() {
    let tmp = TempDb::new("alternatives");
    let db = tmp.create();
    let mut txn = db.begin();

    let p = txn.pnew(&Design { payload: 0 }).unwrap();
    let v0 = txn.current_version(&p).unwrap();
    let v1 = txn.newversion(&p).unwrap();
    // vp0 contains the id of version v0; derive from it.
    let v2 = txn.newversion_from(&v0).unwrap();

    // Both variants hang off v0.
    assert_eq!(txn.dprevious(&v1).unwrap(), Some(v0));
    assert_eq!(txn.dprevious(&v2).unwrap(), Some(v0));
    assert_eq!(txn.dnext(&v0).unwrap(), vec![v1, v2]);
    // p refers to v2: the latest *created*, not the deepest derived.
    assert_eq!(txn.current_version(&p).unwrap(), v2);
    // Temporal (dotted) order is creation order v0, v1, v2.
    assert_eq!(txn.version_history(&p).unwrap(), vec![v0, v1, v2]);
    txn.check_object(&p).unwrap();
    txn.commit().unwrap();
}

/// Figure (§4.2, third): `newversion(vp1)` — "note that v3, v1, and v0
/// constitute a version history."
#[test]
fn fig_version_history() {
    let tmp = TempDb::new("history");
    let db = tmp.create();
    let mut txn = db.begin();

    let p = txn.pnew(&Design { payload: 0 }).unwrap();
    let v0 = txn.current_version(&p).unwrap();
    let v1 = txn.newversion(&p).unwrap();
    let v2 = txn.newversion_from(&v0).unwrap();
    let v3 = txn.newversion_from(&v1).unwrap();

    // The derivation path of v3 is exactly v3, v1, v0.
    assert_eq!(txn.derivation_path(&v3).unwrap(), vec![v3, v1, v0]);
    // v2 and v3 are the alternative tips.
    assert_eq!(txn.derivation_leaves(&p).unwrap(), vec![v2, v3]);
    // p binds to v3 (latest created).
    assert_eq!(txn.current_version(&p).unwrap(), v3);
    txn.check_object(&p).unwrap();
    txn.commit().unwrap();
}

/// §4.2's state-copy semantics: the new version starts as a copy of its
/// base, and editing either side never disturbs the other.
#[test]
fn fig_versions_are_independent_states() {
    let tmp = TempDb::new("states");
    let db = tmp.create();
    let mut txn = db.begin();

    let p = txn.pnew(&Design { payload: 10 }).unwrap();
    let v0 = txn.current_version(&p).unwrap();
    let v1 = txn.newversion(&p).unwrap();
    assert_eq!(txn.deref_v(&v1).unwrap().payload, 10, "copy of base");

    txn.update(&p, |d| d.payload = 20).unwrap(); // edits v1 (latest)
    txn.update_version(&v0, |d| d.payload = 5).unwrap();
    assert_eq!(txn.deref_v(&v0).unwrap().payload, 5);
    assert_eq!(txn.deref_v(&v1).unwrap().payload, 20);
    txn.commit().unwrap();
}

/// §4.4: "Given an object id, operator pdelete deletes the object and
/// all its versions.  Given a version id, pdelete deletes the specified
/// version."
#[test]
fn fig_pdelete_object_vs_version() {
    let tmp = TempDb::new("pdelete");
    let db = tmp.create();
    let mut txn = db.begin();

    // Version-id pdelete.
    let p = txn.pnew(&Design { payload: 0 }).unwrap();
    let v0 = txn.current_version(&p).unwrap();
    let v1 = txn.newversion(&p).unwrap();
    let v2 = txn.newversion(&p).unwrap();
    txn.pdelete_version(v1).unwrap();
    assert!(txn.version_exists(&v0).unwrap());
    assert!(!txn.version_exists(&v1).unwrap());
    assert!(txn.version_exists(&v2).unwrap());
    assert_eq!(txn.version_history(&p).unwrap(), vec![v0, v2]);

    // Object-id pdelete.
    txn.pdelete(p).unwrap();
    assert!(!txn.exists(&p).unwrap());
    assert!(!txn.version_exists(&v0).unwrap());
    assert!(!txn.version_exists(&v2).unwrap());
    assert!(matches!(txn.deref(&p), Err(Error::UnknownObject(_))));
    txn.commit().unwrap();
}

/// §4.5's design-environment reading: "parallel versions derived from
/// the same ancestor are called alternatives, and each path from the
/// root of the derived-from tree to a leaf represents evolution of an
/// alternative design."
#[test]
fn fig_alternative_design_evolution() {
    let tmp = TempDb::new("evolution");
    let db = tmp.create();
    let mut txn = db.begin();

    let p = txn.pnew(&Design { payload: 0 }).unwrap();
    let v0 = txn.current_version(&p).unwrap();
    // Two alternatives, each evolving independently.
    let a1 = txn.newversion_from(&v0).unwrap();
    let b1 = txn.newversion_from(&v0).unwrap();
    let a2 = txn.newversion_from(&a1).unwrap();
    let b2 = txn.newversion_from(&b1).unwrap();
    let a3 = txn.newversion_from(&a2).unwrap();

    // Each leaf is the most up-to-date version of an alternative.
    assert_eq!(txn.derivation_leaves(&p).unwrap(), vec![b2, a3]);
    // Root-to-leaf paths are the evolutions.
    assert_eq!(txn.derivation_path(&a3).unwrap(), vec![a3, a2, a1, v0]);
    assert_eq!(txn.derivation_path(&b2).unwrap(), vec![b2, b1, v0]);
    txn.check_object(&p).unwrap();
    txn.commit().unwrap();
}
