//! Failover regression at the process level: a primary in a *separate
//! OS process* ships its WAL to a replica in this process and only
//! acknowledges a commit once the replica acked it (semi-sync). The
//! primary is then SIGKILLed mid-stream — no shutdown checkpoint, no
//! warning, exactly like a machine loss — and the replica is promoted.
//! Every acknowledged commit must be present on the promoted replica:
//! acked ⊆ surviving state.

use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ode::{Database, DatabaseOptions, ObjPtr, Oid};
use ode_codec::{impl_persist_struct, impl_type_name};
use ode_repl::{HubOptions, ReplicaNode, ReplicationHub};

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    seq: u64,
}
impl_persist_struct!(Entry { seq });
impl_type_name!(Entry = "failover/Entry");

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ode-failover-{name}-{}", std::process::id()));
    cleanup(&path);
    path
}

fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut wal = path.to_path_buf().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

/// The child half: a primary writing entries as fast as acks allow.
/// Runs only when re-executed with `ODE_FAILOVER_CHILD` set; prints
/// one line per *replicated* commit (`ACK <seq> <oid>`), so every
/// printed line is a promise the replica already holds that entry.
/// Never exits on its own — the parent SIGKILLs it mid-stream.
#[test]
fn child_replicated_writer() {
    let Ok(db_path) = std::env::var("ODE_FAILOVER_CHILD") else {
        return;
    };
    let db = Arc::new(
        Database::create(std::path::Path::new(&db_path), DatabaseOptions::no_sync())
            .expect("child create db"),
    );
    let hub = ReplicationHub::start(Arc::clone(&db), "127.0.0.1:0", HubOptions::default())
        .expect("child start hub");
    println!("ADDR {}", hub.local_addr());

    let deadline = Instant::now() + Duration::from_secs(30);
    while hub.replica_count() == 0 {
        assert!(Instant::now() < deadline, "no replica connected");
        std::thread::sleep(Duration::from_millis(5));
    }

    let stdout = std::io::stdout();
    for seq in 0..1_000_000u64 {
        let mut txn = db.begin();
        let ptr = txn.pnew(&Entry { seq }).expect("child pnew");
        txn.commit().expect("child commit");
        if hub.wait_replicated(db.snapshot_epoch(), Duration::from_secs(5)) {
            let mut out = stdout.lock();
            writeln!(out, "ACK {seq} {}", ptr.oid().0).expect("child write ack");
            out.flush().expect("child flush ack");
        }
    }
}

#[test]
fn acked_writes_survive_a_sigkilled_primary() {
    let ppath = temp_path("primary");
    let rpath = temp_path("replica");

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .args(["child_replicated_writer", "--exact", "--nocapture"])
        .env("ODE_FAILOVER_CHILD", &ppath)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child primary");
    let mut lines = BufReader::new(child.stdout.take().expect("child stdout")).lines();

    // The test harness prints its own banner (and a non-newline-
    // terminated "test ... " prefix) around the child's output; scan
    // for the address marker anywhere in a line.
    let addr = loop {
        let line = lines
            .next()
            .expect("child ended before printing its address")
            .expect("read child line");
        if let Some(idx) = line.find("ADDR ") {
            break line[idx + 5..].to_string();
        }
    };

    let replica = Arc::new(Database::create(&rpath, DatabaseOptions::no_sync()).unwrap());
    let node = ReplicaNode::start(Arc::clone(&replica), addr);

    // Collect acknowledged commits until there are enough to make the
    // kill land mid-stream, then SIGKILL the primary.
    let mut acked: Vec<(u64, u64)> = Vec::new();
    for line in lines.by_ref() {
        let line = line.expect("read child ack");
        if let Some(idx) = line.find("ACK ") {
            let mut parts = line[idx + 4..].split(' ');
            let seq: u64 = parts.next().unwrap().parse().unwrap();
            let oid: u64 = parts.next().unwrap().parse().unwrap();
            acked.push((seq, oid));
        }
        if acked.len() >= 50 {
            break;
        }
    }
    child.kill().expect("SIGKILL primary");
    child.wait().expect("reap primary");
    assert!(acked.len() >= 50, "child died before 50 acked commits");

    // Promote: the replica fences its log and becomes the primary.
    node.promote().expect("promote replica");
    assert_eq!(replica.storage_stats().failovers, 1);

    // Every acknowledged entry survived the failover intact.
    let mut snap = replica.snapshot();
    for (seq, oid) in &acked {
        let ptr: ObjPtr<Entry> = ObjPtr::from_oid(Oid(*oid));
        let entry = snap
            .deref(&ptr)
            .unwrap_or_else(|e| panic!("acked entry {seq} lost in failover: {e:?}"));
        assert_eq!(entry.seq, *seq, "acked entry {seq} corrupted");
    }
    drop(snap);

    // And the promoted node accepts new writes on the surviving state.
    let mut txn = replica.begin();
    let p = txn.pnew(&Entry { seq: u64::MAX }).unwrap();
    txn.commit().unwrap();
    let mut snap = replica.snapshot();
    assert_eq!(snap.deref(&p).unwrap().seq, u64::MAX);
    drop(snap);

    cleanup(&ppath);
    cleanup(&rpath);
}
